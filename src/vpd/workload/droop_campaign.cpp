#include "vpd/workload/droop_campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <thread>
#include <utility>

#include "vpd/common/error.hpp"
#include "vpd/fault/fault_model.hpp"
#include "vpd/sweep/thread_pool.hpp"
#include "vpd/workload/load_transient.hpp"
#include "vpd/workload/power_map.hpp"

namespace vpd {

namespace {

/// Bypass switch across the dropout's delta resistance: closed it shorts
/// the delta (nominal supply path), open it leaves the delta in series
/// (post-fault supply path). r_on must sit far below the micro-ohm-scale
/// effective PPDN resistances; r_off far above them but small enough to
/// keep the step matrices well conditioned.
constexpr double kBypassOn = 1e-9;
constexpr double kBypassOff = 1.0;

/// Picks the evaluation an exclusion-rule entry carries: the accepted one,
/// or the flagged beyond-rating extrapolation. Nullptr when the
/// combination failed outright.
const ArchitectureEvaluation* entry_evaluation(const ExplorationEntry& entry) {
  if (entry.evaluation.has_value()) return &*entry.evaluation;
  if (entry.extrapolated.has_value()) return &*entry.extrapolated;
  return nullptr;
}

/// Copies a reduced model's elements into a fresh netlist (the model's
/// netlist is shared per scenario family; the load source is scenario
/// specific).
Netlist copy_netlist(const Netlist& source) {
  Netlist nl;
  for (NodeId n = 1; n < source.node_count(); ++n)
    nl.add_node(source.node_name(n));
  for (const Element& e : source.elements()) {
    switch (e.kind) {
      case ElementKind::kResistor:
        nl.add_resistor(e.name, e.node_a, e.node_b, Resistance{e.value});
        break;
      case ElementKind::kCapacitor:
        nl.add_capacitor(e.name, e.node_a, e.node_b, Capacitance{e.value},
                         Voltage{e.initial});
        break;
      case ElementKind::kInductor:
        nl.add_inductor(e.name, e.node_a, e.node_b, Inductance{e.value},
                        Current{e.initial});
        break;
      case ElementKind::kVoltageSource:
        nl.add_vsource(e.name, e.node_a, e.node_b, e.source);
        break;
      case ElementKind::kCurrentSource:
        nl.add_isource(e.name, e.node_a, e.node_b, e.source);
        break;
      case ElementKind::kSwitch:
        nl.add_switch(e.name, e.node_a, e.node_b, Resistance{e.r_on},
                      Resistance{e.r_off}, e.initially_closed);
        break;
    }
  }
  return nl;
}

struct ScenarioSimulation {
  Netlist netlist;
  std::string pol_node;
  SwitchController controller;  // empty for the load scenarios
  double v_predicted{0.0};
};

/// Lowers a load scenario onto its tile's reduced model plus the
/// scenario's waveform.
ScenarioSimulation build_load_simulation(const PowerDeliverySpec& spec,
                                         const DroopCampaignConfig& config,
                                         const TransientScenario& sc,
                                         const ArchitectureEvaluation& eval) {
  const ReducedPdnModel model = build_reduced_pdn(spec, eval, config.model);
  const double i_die = spec.die_current().value;
  const Current base{sc.base_fraction * i_die};
  const Current step{sc.step_fraction * i_die};
  SourceFn load;
  double i_final = base.value + step.value;
  switch (sc.kind) {
    case TransientKind::kLoadStep:
      load = step_load(base, step, sc.t_event, sc.edge);
      break;
    case TransientKind::kLoadRamp:
      load = ramp_load(base, Current{base.value + step.value}, sc.t_event,
                       Seconds{sc.t_event.value + sc.edge.value});
      break;
    case TransientKind::kLoadBurst: {
      load = burst_load(base, Current{base.value + step.value},
                        sc.burst_frequency, sc.burst_duty, sc.edge);
      // Cycle-average load the burst settles around: the plateau carries
      // duty - edge/period of the step (each linear edge trades half its
      // span against the plateau on both flanks).
      const double period = 1.0 / sc.burst_frequency.value;
      i_final = base.value +
                step.value * (sc.burst_duty - sc.edge.value / period);
      break;
    }
    case TransientKind::kVrDropout:
      throw InvalidArgument("dropout scenarios use build_dropout_simulation");
  }

  ScenarioSimulation sim;
  sim.netlist = copy_netlist(model.netlist);
  sim.pol_node = model.pol_node;
  sim.netlist.add_isource("load", sim.netlist.node(model.pol_node), kGround,
                          std::move(load));
  sim.v_predicted = spec.die_voltage.value -
                    i_final * model.effective_resistance.value;
  return sim;
}

/// Lowers a VR-dropout scenario: the Thevenin supply resistance steps
/// from the nominal R_eff to the faulted re-solve's R_eff when the bypass
/// switch across the delta opens at t_event, while the dropped VR's share
/// of the load collapses to zero over `edge`. Settles exactly onto the
/// post-fault DC answer (modulo the r_off leak across the delta, an
/// O(delta^2 / r_off) correction).
ScenarioSimulation build_dropout_simulation(
    const PowerDeliverySpec& spec, const DroopCampaignConfig& config,
    const TransientScenario& sc, const ReducedPdnModel& nominal_model,
    const ArchitectureEvaluation& faulted_eval, std::size_t site_count) {
  const ReducedPdnModel post_model =
      build_reduced_pdn(spec, faulted_eval, config.model);
  const double r_pre = nominal_model.effective_resistance.value;
  const double r_post = post_model.effective_resistance.value;
  // Survivors feed longer lateral paths, so the faulted R_eff is never
  // below nominal; the clamp only guards FP noise on tiny deltas.
  const double delta =
      std::max(post_model.effective_resistance.value - r_pre, 1e-12);

  ScenarioSimulation sim;
  sim.pol_node = nominal_model.pol_node;
  Netlist& nl = sim.netlist;
  const NodeId vr = nl.add_node("vr");
  const NodeId drp = nl.add_node("drp");
  const NodeId mid = nl.add_node("mid");
  const NodeId pol = nl.add_node("pol");
  const NodeId esr = nl.add_node("esr");
  nl.add_vsource("Vvr", vr, kGround, spec.die_voltage);
  nl.add_resistor("Rpre", vr, drp, Resistance{r_pre});
  nl.add_resistor("Rdelta", drp, mid, Resistance{delta});
  nl.add_switch("Sbyp", drp, mid, Resistance{kBypassOn},
                Resistance{kBypassOff}, /*initially_closed=*/true);
  nl.add_inductor("Lloop", mid, pol, nominal_model.loop_inductance);
  nl.add_resistor("Resr", pol, esr, config.model.decap_esr);
  nl.add_capacitor("Cdecap", esr, kGround, nominal_model.decap,
                   spec.die_voltage);

  const double i_load = sc.base_fraction * spec.die_current().value;
  nl.add_isource("load", pol, kGround, Current{i_load});
  // The dropped VR's remnant: its (mean) share of the load keeps flowing
  // in while the VR collapses, ramping to zero over `edge`. Zero before
  // t_event — pre-fault the share is already inside the Thevenin supply —
  // so the DC operating point is not double-counted; the jump at t_event
  // exactly offsets the switch's impedance step, making the handoff to
  // the survivors finite-slew instead of instantaneous.
  const double i_site =
      i_load / static_cast<double>(std::max<std::size_t>(site_count, 1));
  const double te = sc.t_event.value;
  const double fall = sc.edge.value;
  nl.add_isource("Ivr", kGround, pol, [te, fall, i_site](double t) {
    if (t <= te || fall <= 0.0 || t >= te + fall) return 0.0;
    return i_site * (1.0 - (t - te) / fall);
  });
  sim.controller = [te](double t, SwitchStates& states) {
    states[0] = t < te;
  };

  // DC landing point with the bypass open: r_pre plus delta in parallel
  // with the open switch.
  const double r_dc =
      r_pre + (delta * kBypassOff) / (delta + kBypassOff);
  sim.v_predicted = spec.die_voltage.value - i_load * r_dc;
  (void)r_post;
  return sim;
}

/// Measures the POL trace against the scenario and the dynamic limits.
DroopMetrics measure(const Trace& v, const TransientScenario& sc,
                     double rail, double v_predicted,
                     const ResilienceSpec& rspec, double t_stop) {
  DroopMetrics m;
  m.rail = rail;
  m.v_predicted = v_predicted;
  m.samples = v.sample_count();
  const bool burst = sc.kind == TransientKind::kLoadBurst;
  const double t_meas = burst ? 0.0 : sc.t_event.value;
  m.v_min = v.min(t_meas, t_stop);
  m.undershoot_fraction = (rail - m.v_min) / rail;
  const double band = rspec.recovery_band * rail;
  if (burst) {
    const double period = 1.0 / sc.burst_frequency.value;
    m.v_settled = v.average(t_stop - period, t_stop);
    m.steady_cycle = first_steady_cycle(v, period, band);
    if (m.steady_cycle.has_value()) {
      m.settling_time =
          Seconds{static_cast<double>(*m.steady_cycle) * period};
    } else {
      m.settling_time = Seconds{t_stop};
    }
  } else {
    m.v_settled = v.back();
    double last_outside = t_meas;
    for (std::size_t i = 0; i < v.sample_count(); ++i) {
      const double t = v.times()[i];
      if (t < t_meas) continue;
      if (std::fabs(v.values()[i] - m.v_settled) > band) last_outside = t;
    }
    m.settling_time = Seconds{std::max(0.0, last_outside - t_meas)};
  }
  m.settled_droop_fraction = (rail - m.v_settled) / rail;
  return m;
}

/// Applies the dynamic-droop pass/fail rules; fills violations and margin.
void check_dynamic_limits(TransientScenarioOutcome& outcome,
                          const ResilienceSpec& rspec) {
  const TransientScenario& sc = outcome.scenario;
  const DroopMetrics& m = outcome.metrics;
  const std::size_t site = sc.kind == TransientKind::kVrDropout
                               ? sc.site
                               : static_cast<std::size_t>(-1);
  const auto note_margin = [&](double headroom) {
    outcome.margin = std::min(outcome.margin, headroom);
  };

  note_margin((rspec.transient_droop_tolerance - m.undershoot_fraction) /
              rspec.transient_droop_tolerance);
  if (m.undershoot_fraction > rspec.transient_droop_tolerance) {
    outcome.violations.push_back(SpecViolation{
        SpecViolation::Kind::kTransientDroop, site, m.undershoot_fraction,
        rspec.transient_droop_tolerance,
        detail::concat(to_string(sc.kind), " undershoots the POL rail by ",
                       m.undershoot_fraction * 100.0, "% (tolerance ",
                       rspec.transient_droop_tolerance * 100.0, "%)")});
  }

  if (sc.kind == TransientKind::kLoadBurst) {
    const double limit = static_cast<double>(rspec.steady_cycle_limit);
    if (!m.steady_cycle.has_value()) {
      note_margin(-1.0);
      outcome.violations.push_back(SpecViolation{
          SpecViolation::Kind::kNoSteadyState, site, limit + 1.0, limit,
          detail::concat("burst never reached a steady cycle within the "
                         "window (limit ",
                         rspec.steady_cycle_limit, " cycles)")});
    } else {
      const double cycle = static_cast<double>(*m.steady_cycle);
      note_margin((limit - cycle) / limit);
      if (cycle > limit) {
        outcome.violations.push_back(SpecViolation{
            SpecViolation::Kind::kNoSteadyState, site, cycle, limit,
            detail::concat("burst reaches a steady cycle only at cycle ",
                           *m.steady_cycle, " (limit ",
                           rspec.steady_cycle_limit, ")")});
      }
    }
  } else {
    note_margin((rspec.settling_time_limit - m.settling_time.value) /
                rspec.settling_time_limit);
    if (m.settling_time.value > rspec.settling_time_limit) {
      outcome.violations.push_back(SpecViolation{
          SpecViolation::Kind::kSettlingTime, site, m.settling_time.value,
          rspec.settling_time_limit,
          detail::concat(to_string(sc.kind), " settles in ",
                         m.settling_time.value * 1e6, " us (limit ",
                         rspec.settling_time_limit * 1e6, " us)")});
    }
  }
}

}  // namespace

void DroopCampaignConfig::validate() const {
  resilience.validate();
  VPD_REQUIRE(t_stop.value > 0.0 && dt.value > 0.0 &&
                  dt.value < t_stop.value,
              "need 0 < dt < t_stop");
  VPD_REQUIRE(tile_grid > 0, "tile_grid must be >= 1");
  VPD_REQUIRE(t_event.value >= 0.0 && t_event.value < t_stop.value,
              "t_event must fall inside the window");
  if (include_bursts) {
    VPD_REQUIRE(burst_frequency.value * t_stop.value >= 2.0,
                "burst scenarios need at least two cycles in the window");
  }
}

std::size_t DroopCampaignReport::pass_count() const {
  std::size_t passes = 0;
  for (const TransientScenarioOutcome& outcome : outcomes) {
    if (outcome.passes()) ++passes;
  }
  return passes;
}

double DroopCampaignReport::pass_fraction() const {
  if (outcomes.empty()) return 0.0;
  return static_cast<double>(pass_count()) /
         static_cast<double>(outcomes.size());
}

double DroopCampaignReport::worst_undershoot_fraction() const {
  double worst = 0.0;
  for (const TransientScenarioOutcome& outcome : outcomes) {
    if (outcome.evaluated) {
      worst = std::max(worst, outcome.metrics.undershoot_fraction);
    }
  }
  return worst;
}

Seconds DroopCampaignReport::worst_settling_time() const {
  double worst = 0.0;
  for (const TransientScenarioOutcome& outcome : outcomes) {
    if (outcome.evaluated) {
      worst = std::max(worst, outcome.metrics.settling_time.value);
    }
  }
  return Seconds{worst};
}

double DroopCampaignReport::worst_margin() const {
  double worst = 1.0;
  for (const TransientScenarioOutcome& outcome : outcomes) {
    if (outcome.evaluated) worst = std::min(worst, outcome.margin);
  }
  return worst;
}

obs::Snapshot DroopCampaignReport::snapshot() const {
  obs::Snapshot s;
  s.set_counter("transient.scenarios", scenario_count());
  s.set_counter("transient.passes", pass_count());
  s.set_counter("transient.steps", transient_steps);
  s.set_counter("transient.factor_hits", factors.hits);
  s.set_counter("transient.factor_misses", factors.misses);
  s.set_counter("solver.cg_solves", solver.cg_solves);
  s.set_counter("solver.cg_iterations", solver.cg_iterations);
  s.set_counter("solver.precond_factorizations",
                solver.precond_factorizations);
  s.set_counter("solver.precond_reuses", solver.precond_reuses);
  s.set_counter("solver.cg_block_panels", solver.cg_block_panels);
  s.set_counter("solver.cg_block_columns", solver.cg_block_columns);
  s.set_gauge("transient.pass_fraction", pass_fraction(), pass_fraction());
  s.set_gauge("transient.worst_undershoot_fraction",
              worst_undershoot_fraction(), worst_undershoot_fraction());
  s.set_gauge("transient.worst_settling_seconds",
              worst_settling_time().value, worst_settling_time().value);
  s.set_gauge("transient.worst_margin", worst_margin(), worst_margin());
  s.set_gauge("transient.wall_seconds", wall_seconds, wall_seconds);
  s.set_histogram("transient.scenario_seconds", scenario_seconds);
  return s;
}

DroopCampaignRunner::DroopCampaignRunner(PowerDeliverySpec spec,
                                         DroopCampaignConfig config)
    : spec_(spec), config_(std::move(config)) {
  spec_.validate();
  config_.validate();
}

std::vector<TransientScenario> DroopCampaignRunner::generate_scenarios(
    std::size_t site_count) const {
  VPD_REQUIRE(site_count > 0, "campaign needs at least one mesh-stage VR");
  std::vector<TransientScenario> scenarios;

  const auto tile_scenarios = [&](TransientKind kind, const char* family,
                                  Seconds edge) {
    const std::size_t grid = config_.tile_grid;
    for (std::size_t i = 0; i < grid; ++i) {
      for (std::size_t j = 0; j < grid; ++j) {
        TransientScenario sc;
        sc.kind = kind;
        sc.label = detail::concat(family, "[", i, ",", j, "]");
        sc.tile_x = static_cast<double>(i + 1) /
                    static_cast<double>(grid + 1);
        sc.tile_y = static_cast<double>(j + 1) /
                    static_cast<double>(grid + 1);
        sc.tile_sigma = config_.tile_sigma;
        sc.tile_background = config_.tile_background;
        sc.base_fraction = config_.base_fraction;
        sc.step_fraction = config_.step_fraction;
        sc.t_event = config_.t_event;
        sc.edge = edge;
        sc.burst_frequency = config_.burst_frequency;
        sc.burst_duty = config_.burst_duty;
        sc.validate();
        scenarios.push_back(std::move(sc));
      }
    }
  };
  if (config_.include_load_steps) {
    tile_scenarios(TransientKind::kLoadStep, "step", config_.edge);
  }
  if (config_.include_bursts) {
    tile_scenarios(TransientKind::kLoadBurst, "burst", config_.edge);
  }
  if (config_.include_ramps) {
    // Ramps probe the slow-di/dt corner (a step with the same edge is the
    // same waveform): 10x the step slew, capped so the ramp completes
    // inside the window.
    const double ramp_edge =
        std::min(10.0 * config_.edge.value,
                 config_.t_stop.value - config_.t_event.value);
    tile_scenarios(TransientKind::kLoadRamp, "ramp", Seconds{ramp_edge});
  }
  if (config_.include_vr_dropouts) {
    const std::size_t sites =
        config_.max_dropout_sites == 0
            ? site_count
            : std::min(site_count, config_.max_dropout_sites);
    for (std::size_t s = 0; s < sites; ++s) {
      TransientScenario sc;
      sc.kind = TransientKind::kVrDropout;
      sc.label = detail::concat("dropout[", s, "]");
      sc.site = s;
      // Dropouts hit at full load: the handoff to the survivors is the
      // worst case when every VR carries its full share.
      sc.base_fraction = 1.0;
      sc.t_event = config_.t_event;
      sc.edge = config_.edge;
      sc.validate();
      scenarios.push_back(std::move(sc));
    }
  }
  return scenarios;
}

DroopCampaignReport DroopCampaignRunner::run(
    ArchitectureKind architecture, TopologyKind topology,
    DeviceTechnology tech, const EvaluationOptions& base_options) const {
  VPD_REQUIRE(architecture != ArchitectureKind::kA0_PcbConversion,
              "droop campaigns need a distribution mesh; A0 has none");
  VPD_REQUIRE(base_options.faults.empty(),
              "base_options must carry an empty FaultInjection (the "
              "campaign owns the injections)");
  VPD_REQUIRE(!base_options.sink_map,
              "base_options must not carry a sink map (the campaign "
              "anchors its own hotspot maps)");

  const auto campaign_start = std::chrono::steady_clock::now();
  obs::Span campaign_span("droop.campaign", config_.trace);

  MeshSolveCache campaign_cache;
  SweepConfig sweep_config = config_.sweep;
  if (sweep_config.use_mesh_cache && sweep_config.cache == nullptr) {
    sweep_config.cache = &campaign_cache;
  }
  const SweepRunner runner(spec_, sweep_config);

  // Nominal probe: learns the deployment and the pre-fault reduced model.
  SweepPoint nominal_point;
  nominal_point.architecture = architecture;
  nominal_point.topology = topology;
  nominal_point.tech = tech;
  nominal_point.options = base_options;
  nominal_point.options.trace = campaign_span.context();
  nominal_point.label = sweep_point_label(architecture, topology, tech);
  const SweepReport nominal_report = runner.run({nominal_point});
  const ExplorationEntry& nominal_entry = nominal_report.outcomes[0].entry;
  const ArchitectureEvaluation* nominal = entry_evaluation(nominal_entry);
  if (nominal == nullptr) {
    throw InfeasibleDesign(detail::concat(
        "nominal evaluation failed for ", nominal_point.label, ": ",
        nominal_entry.exclusion_reason));
  }
  const ReducedPdnModel nominal_model =
      build_reduced_pdn(spec_, *nominal, config_.model);

  const bool two_stage = is_two_stage(architecture);
  const std::size_t site_count =
      two_stage ? nominal->vr_count_stage1 : nominal->vr_count_stage2;
  const std::vector<TransientScenario> scenarios =
      generate_scenarios(site_count);

  // --- DC operating points, one sweep point per scenario ----------------
  std::vector<SweepPoint> points;
  points.reserve(scenarios.size());
  for (const TransientScenario& sc : scenarios) {
    SweepPoint point = nominal_point;
    point.label = detail::concat(nominal_point.label, "/", sc.label);
    if (sc.kind == TransientKind::kVrDropout) {
      const FaultScenario fault{
          sc.label, {Fault{FaultKind::kVrDropout, sc.site, Length{},
                           Length{}}}};
      point.options.faults = to_injection(fault, FaultSeverity{});
    } else {
      const TransientScenario tile = sc;
      point.options.sink_map = [tile](const GridMesh& mesh, Current total) {
        return hotspot_power_map(mesh, total, tile.tile_x, tile.tile_y,
                                 tile.tile_sigma, tile.tile_background);
      };
    }
    points.push_back(std::move(point));
  }
  const SweepReport dc_report = runner.run(points);

  // --- Transient integrations on the worker pool ------------------------
  TransientFactorCache factor_cache;
  std::vector<TransientScenarioOutcome> outcomes(scenarios.size());
  std::vector<double> wall(scenarios.size(), 0.0);
  const double rail = spec_.die_voltage.value;
  const obs::TraceContext campaign_ctx = campaign_span.context();

  const auto evaluate_scenario = [&](std::size_t i) {
    const auto start = std::chrono::steady_clock::now();
    obs::Span span("droop.scenario", campaign_ctx);
    TransientScenarioOutcome& outcome = outcomes[i];
    outcome.scenario = scenarios[i];
    const ExplorationEntry& entry = dc_report.outcomes[i].entry;
    const ArchitectureEvaluation* eval = entry_evaluation(entry);
    if (eval == nullptr) {
      outcome.failure_reason = entry.exclusion_reason;
    } else {
      outcome.extrapolated = eval->used_extrapolation;
      try {
        const TransientScenario& sc = scenarios[i];
        const ScenarioSimulation sim =
            sc.kind == TransientKind::kVrDropout
                ? build_dropout_simulation(spec_, config_, sc,
                                           nominal_model, *eval, site_count)
                : build_load_simulation(spec_, config_, sc, *eval);
        TransientOptions opts;
        opts.t_stop = config_.t_stop;
        opts.dt = config_.dt;
        opts.method = config_.method;
        opts.controller = sim.controller;
        opts.initialize_from_dc = true;
        opts.factor_cache = &factor_cache;
        const TransientResult result = simulate(sim.netlist, opts);
        const Trace v = result.voltage(sim.pol_node);
        outcome.metrics = measure(v, sc, rail, sim.v_predicted,
                                  config_.resilience,
                                  config_.t_stop.value);
        outcome.evaluated = true;
        check_dynamic_limits(outcome, config_.resilience);
        span.set_arg("undershoot", outcome.metrics.undershoot_fraction);
        span.set_arg("samples",
                     static_cast<double>(outcome.metrics.samples));
      } catch (const std::exception& error) {
        outcome.failure_reason = error.what();
        outcome.evaluated = false;
        outcome.violations.clear();
      }
    }
    wall[i] = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  };

  std::size_t threads = sweep_config.threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  }
  if (threads == 1 || scenarios.size() <= 1) {
    for (std::size_t i = 0; i < scenarios.size(); ++i) evaluate_scenario(i);
  } else {
    ThreadPool pool(threads);
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      pool.submit([&evaluate_scenario, i] { evaluate_scenario(i); });
    }
    pool.wait_idle();
  }

  DroopCampaignReport report;
  report.architecture = architecture;
  report.topology = topology;
  report.tech = tech;
  report.nominal = *nominal;
  report.outcomes = std::move(outcomes);
  report.solver = nominal_report.solver + dc_report.solver;
  report.factors = factor_cache.stats();
  report.scenario_seconds =
      obs::HistogramData(obs::default_latency_bounds());
  for (std::size_t i = 0; i < wall.size(); ++i) {
    report.scenario_seconds.record(wall[i]);
  }
  for (const TransientScenarioOutcome& outcome : report.outcomes) {
    if (outcome.metrics.samples > 0) {
      report.transient_steps += outcome.metrics.samples - 1;
    }
  }
  report.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() -
                            campaign_start)
                            .count();
  return report;
}

}  // namespace vpd
