// A sized power FET: a technology instance committed to a voltage rating
// and a die area. On-resistance and parasitics follow from the technology's
// area-normalized parameters; factory helpers size devices for a target
// on-resistance or a target conduction loss at a given RMS current.
#pragma once

#include "vpd/common/units.hpp"
#include "vpd/devices/technology.hpp"

namespace vpd {

class PowerFet {
 public:
  /// Device of `area` die area rated for `rating`.
  PowerFet(TechnologyParams tech, Voltage rating, Area area);

  /// Sizes the device area to meet `target` on-resistance at `rating`.
  static PowerFet for_on_resistance(TechnologyParams tech, Voltage rating,
                                    Resistance target);

  /// Sizes the device so conduction loss equals `budget` at `rms_current`.
  static PowerFet for_conduction_budget(TechnologyParams tech, Voltage rating,
                                        Current rms_current, Power budget);

  const TechnologyParams& technology() const { return tech_; }
  Voltage rating() const { return rating_; }
  Area area() const { return area_; }

  Resistance on_resistance() const;
  Charge gate_charge() const;
  Capacitance output_capacitance() const;

  /// Conduction loss at a given RMS current.
  Power conduction_loss(Current rms_current) const;
  /// Gate-drive loss at switching frequency f: Qg * Vdrive * f.
  Power gate_loss(Frequency f) const;
  /// Output-capacitance loss: 1/2 * Coss * Vds^2 * f (hard switching).
  Power coss_loss(Voltage switched_voltage, Frequency f) const;
  /// V-I overlap loss for hard switching: Vds * I * t_transition * f
  /// (one turn-on plus one turn-off per cycle folded into t_transition).
  Power overlap_loss(Voltage switched_voltage, Current switched_current,
                     Frequency f) const;

 private:
  TechnologyParams tech_;
  Voltage rating_;
  Area area_;
};

}  // namespace vpd
