#include "vpd/devices/technology.hpp"

#include <cmath>

#include "vpd/common/error.hpp"

namespace vpd {

const char* to_string(DeviceTechnology tech) {
  switch (tech) {
    case DeviceTechnology::kSilicon: return "Si";
    case DeviceTechnology::kGalliumNitride: return "GaN";
  }
  return "unknown";
}

double TechnologyParams::specific_on_resistance_at(Voltage rating) const {
  VPD_REQUIRE(rating.value > 0.0, "rating must be positive, got ",
              rating.value);
  return specific_on_resistance *
         std::pow(rating.value / reference_rating.value, rating_exponent);
}

double TechnologyParams::figure_of_merit() const {
  // (Ron * A) * (Qg / A) = Ron * Qg, independent of device size.
  return specific_on_resistance * gate_charge_density;
}

TechnologyParams silicon_technology() {
  TechnologyParams p;
  p.technology = DeviceTechnology::kSilicon;
  p.name = "Si-100V";
  p.reference_rating = Voltage{100.0};
  // ~50 mOhm*mm^2 = 50e-9 Ohm*m^2 (trench/OptiMOS-class).
  p.specific_on_resistance = 50e-9;
  // ~8 nC/mm^2 = 8e-3 C/m^2.
  p.gate_charge_density = 8e-3;
  // ~1.5 nF/mm^2 = 1.5e-3 F/m^2.
  p.coss_density = 1.5e-3;
  p.rating_exponent = 2.3;  // near-Baliga scaling for vertical Si
  p.gate_drive = Voltage{10.0};
  p.transition_time_per_volt = 0.25e-9;  // ~25 ns swing at 100 V
  return p;
}

TechnologyParams gan_technology() {
  TechnologyParams p;
  p.technology = DeviceTechnology::kGalliumNitride;
  p.name = "GaN-100V";
  p.reference_rating = Voltage{100.0};
  // ~12 mOhm*mm^2 (lateral eGaN-class).
  p.specific_on_resistance = 12e-9;
  // ~3 nC/mm^2.
  p.gate_charge_density = 3e-3;
  // ~0.9 nF/mm^2.
  p.coss_density = 0.9e-3;
  p.rating_exponent = 1.9;  // flatter scaling for lateral GaN
  p.gate_drive = Voltage{5.0};
  p.transition_time_per_volt = 0.05e-9;  // ~5 ns swing at 100 V
  return p;
}

TechnologyParams technology(DeviceTechnology tech) {
  switch (tech) {
    case DeviceTechnology::kSilicon: return silicon_technology();
    case DeviceTechnology::kGalliumNitride: return gan_technology();
  }
  throw InvalidArgument("unknown device technology");
}

}  // namespace vpd
