// Power-transistor technology models. The paper contrasts Si and GaN power
// devices for integrated voltage regulators: GaN's higher electron mobility
// gives a ~10x better on-resistance x gate-charge figure of merit at the
// 48-100 V ratings relevant here, enabling higher switching frequency at
// equal loss (Section III of the paper).
//
// Parameters are area-normalized so devices can be sized to a target
// on-resistance and their parasitics (gate charge, output capacitance)
// follow. Values are representative of published 100 V-class parts
// (e.g. EPC eGaN FETs and OptiMOS Si MOSFETs) and scale with voltage
// rating by technology-specific exponents (Baliga-style).
#pragma once

#include <string>

#include "vpd/common/units.hpp"

namespace vpd {

enum class DeviceTechnology {
  kSilicon,
  kGalliumNitride,
};

const char* to_string(DeviceTechnology tech);

/// Area-normalized technology parameters at a reference voltage rating.
struct TechnologyParams {
  DeviceTechnology technology{DeviceTechnology::kSilicon};
  std::string name;

  /// Reference voltage rating for the normalized values below.
  Voltage reference_rating{Voltage{100.0}};
  /// Specific on-resistance at the reference rating [Ohm * m^2].
  /// (engineering shorthand: mOhm * mm^2 = 1e-9 Ohm*m^2)
  double specific_on_resistance{0.0};
  /// Gate charge per device area [C / m^2].
  double gate_charge_density{0.0};
  /// Output capacitance per device area [F / m^2].
  double coss_density{0.0};
  /// Exponent of specific Ron growth with voltage rating:
  /// Ron*A ~ (V / Vref)^exponent.
  double rating_exponent{2.0};
  /// Gate-drive voltage swing.
  Voltage gate_drive{Voltage{5.0}};
  /// Effective switching transition time per volt of drain swing at the
  /// reference gate drive [s/V]; sets V*I overlap loss.
  double transition_time_per_volt{0.0};

  /// Specific on-resistance at an arbitrary rating [Ohm * m^2].
  double specific_on_resistance_at(Voltage rating) const;

  /// On-resistance x gate charge figure of merit at the reference rating
  /// [Ohm * C]; lower is better.
  double figure_of_merit() const;
};

/// Representative 100 V silicon power MOSFET technology.
TechnologyParams silicon_technology();

/// Representative 100 V lateral GaN HEMT technology.
TechnologyParams gan_technology();

TechnologyParams technology(DeviceTechnology tech);

}  // namespace vpd
