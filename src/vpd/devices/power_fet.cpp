#include "vpd/devices/power_fet.hpp"

#include <cmath>

#include "vpd/common/error.hpp"

namespace vpd {

PowerFet::PowerFet(TechnologyParams tech, Voltage rating, Area area)
    : tech_(std::move(tech)), rating_(rating), area_(area) {
  VPD_REQUIRE(rating.value > 0.0, "rating must be positive, got ",
              rating.value);
  VPD_REQUIRE(area.value > 0.0, "area must be positive, got ", area.value);
}

PowerFet PowerFet::for_on_resistance(TechnologyParams tech, Voltage rating,
                                     Resistance target) {
  VPD_REQUIRE(target.value > 0.0, "target Rds_on must be positive, got ",
              target.value);
  const double ron_area = tech.specific_on_resistance_at(rating);
  const Area area{ron_area / target.value};
  return PowerFet(std::move(tech), rating, area);
}

PowerFet PowerFet::for_conduction_budget(TechnologyParams tech,
                                         Voltage rating, Current rms_current,
                                         Power budget) {
  VPD_REQUIRE(rms_current.value > 0.0, "rms current must be positive, got ",
              rms_current.value);
  VPD_REQUIRE(budget.value > 0.0, "budget must be positive, got ",
              budget.value);
  const Resistance target{budget.value /
                          (rms_current.value * rms_current.value)};
  return for_on_resistance(std::move(tech), rating, target);
}

Resistance PowerFet::on_resistance() const {
  return Resistance{tech_.specific_on_resistance_at(rating_) / area_.value};
}

Charge PowerFet::gate_charge() const {
  return Charge{tech_.gate_charge_density * area_.value};
}

Capacitance PowerFet::output_capacitance() const {
  return Capacitance{tech_.coss_density * area_.value};
}

Power PowerFet::conduction_loss(Current rms_current) const {
  return Power{rms_current.value * rms_current.value *
               on_resistance().value};
}

Power PowerFet::gate_loss(Frequency f) const {
  VPD_REQUIRE(f.value >= 0.0, "negative frequency");
  return Power{gate_charge().value * tech_.gate_drive.value * f.value};
}

Power PowerFet::coss_loss(Voltage switched_voltage, Frequency f) const {
  VPD_REQUIRE(f.value >= 0.0, "negative frequency");
  return Power{0.5 * output_capacitance().value * switched_voltage.value *
               switched_voltage.value * f.value};
}

Power PowerFet::overlap_loss(Voltage switched_voltage,
                             Current switched_current, Frequency f) const {
  VPD_REQUIRE(f.value >= 0.0, "negative frequency");
  const double t_transition =
      tech_.transition_time_per_volt * switched_voltage.value;
  return Power{switched_voltage.value * std::fabs(switched_current.value) *
               t_transition * f.value};
}

}  // namespace vpd
