#include "vpd/devices/switching_loss.hpp"

#include "vpd/common/error.hpp"
#include "vpd/common/interpolation.hpp"

namespace vpd {

SwitchingLossBreakdown cell_loss(const SwitchingCell& cell, Frequency f) {
  VPD_REQUIRE(f.value >= 0.0, "negative frequency");
  VPD_REQUIRE(cell.conduction_duty >= 0.0 && cell.conduction_duty <= 1.0,
              "conduction duty ", cell.conduction_duty, " outside [0,1]");
  SwitchingLossBreakdown b;
  b.conduction = cell.device.conduction_loss(cell.rms_current) *
                 cell.conduction_duty;
  b.gate = cell.device.gate_loss(f);

  double soft_factor = 1.0;
  switch (cell.mode) {
    case SwitchingMode::kHard: soft_factor = 1.0; break;
    case SwitchingMode::kPartialSoft: soft_factor = 0.5; break;
    case SwitchingMode::kFullSoft: soft_factor = 0.0; break;
  }
  b.overlap = cell.device.overlap_loss(cell.switched_voltage,
                                       cell.switched_current, f) *
              soft_factor;
  b.coss = cell.device.coss_loss(cell.switched_voltage, f) * soft_factor;
  return b;
}

Frequency optimal_frequency(const SwitchingCell& cell, Frequency f_lo,
                            Frequency f_hi,
                            double ripple_loss_coefficient) {
  VPD_REQUIRE(f_lo.value > 0.0 && f_hi.value > f_lo.value,
              "need 0 < f_lo < f_hi, got [", f_lo.value, ", ", f_hi.value,
              "]");
  VPD_REQUIRE(ripple_loss_coefficient >= 0.0,
              "negative ripple loss coefficient");
  const auto total = [&](double f) {
    const SwitchingLossBreakdown b = cell_loss(cell, Frequency{f});
    return b.total().value + ripple_loss_coefficient / (f * f);
  };
  return Frequency{minimize_golden(total, f_lo.value, f_hi.value,
                                   1.0 /* Hz resolution */)};
}

}  // namespace vpd
