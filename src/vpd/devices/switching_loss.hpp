// Aggregate switching-cell loss model: one high-side / low-side style
// switching position characterized by its device, switched voltage and
// current, frequency, and soft-switching factor. Converter topologies sum a
// handful of these plus passive losses to produce their efficiency curves.
#pragma once

#include "vpd/common/units.hpp"
#include "vpd/devices/power_fet.hpp"

namespace vpd {

/// How much of the hard-switching overlap + Coss loss a topology actually
/// pays at this switch position.
enum class SwitchingMode {
  kHard,          // full overlap + Coss loss
  kPartialSoft,   // zero-voltage transitions on one edge (half the loss)
  kFullSoft,      // resonant / ZVS both edges (overlap and Coss recovered)
};

struct SwitchingCell {
  PowerFet device;
  Voltage switched_voltage;   // drain swing when commutating
  Current rms_current;        // RMS conduction current
  Current switched_current;   // current at the switching instant
  double conduction_duty{1.0};  // fraction of the period the device conducts
  SwitchingMode mode{SwitchingMode::kHard};
};

struct SwitchingLossBreakdown {
  Power conduction{0.0};
  Power overlap{0.0};
  Power coss{0.0};
  Power gate{0.0};

  Power total() const { return conduction + overlap + coss + gate; }
};

/// Loss of one switching cell at frequency f. Conduction loss scales with
/// the conduction duty (RMS current is interpreted as the during-conduction
/// RMS).
SwitchingLossBreakdown cell_loss(const SwitchingCell& cell, Frequency f);

/// Frequency that minimizes total cell loss: balances frequency-linear
/// (gate + overlap + Coss) terms against nothing else here — included for
/// completeness when a ripple-driven conduction term is added by the
/// caller via `extra_conduction_vs_f` (loss that shrinks as 1/f^2, e.g.
/// inductor ripple). Returns the golden-section minimizer on [f_lo, f_hi].
Frequency optimal_frequency(const SwitchingCell& cell, Frequency f_lo,
                            Frequency f_hi,
                            double ripple_loss_coefficient /* W*Hz^2 */);

}  // namespace vpd
