// Umbrella header: the library's public surface in one include.
// Prefer the per-module headers in translation units that care about
// compile time; this is the convenience entry point for examples, tools,
// and exploratory code.
#pragma once

// Common substrate
#include "vpd/common/complex_linear.hpp"
#include "vpd/common/error.hpp"
#include "vpd/common/interpolation.hpp"
#include "vpd/common/matrix.hpp"
#include "vpd/common/rng.hpp"
#include "vpd/common/sparse.hpp"
#include "vpd/common/statistics.hpp"
#include "vpd/common/table.hpp"
#include "vpd/common/units.hpp"

// Circuit engine
#include "vpd/circuit/ac_solver.hpp"
#include "vpd/circuit/dc_solver.hpp"
#include "vpd/circuit/mna.hpp"
#include "vpd/circuit/netlist.hpp"
#include "vpd/circuit/pwm.hpp"
#include "vpd/circuit/spice_export.hpp"
#include "vpd/circuit/transient.hpp"
#include "vpd/circuit/waveform.hpp"

// Devices and passives
#include "vpd/devices/power_fet.hpp"
#include "vpd/devices/switching_loss.hpp"
#include "vpd/devices/technology.hpp"
#include "vpd/passives/capacitor.hpp"
#include "vpd/passives/inductor.hpp"
#include "vpd/passives/sizing.hpp"

// Converters
#include "vpd/converters/buck.hpp"
#include "vpd/converters/catalog.hpp"
#include "vpd/converters/control.hpp"
#include "vpd/converters/dickson.hpp"
#include "vpd/converters/dpmih.hpp"
#include "vpd/converters/dsch.hpp"
#include "vpd/converters/fcml.hpp"
#include "vpd/converters/hybrid.hpp"
#include "vpd/converters/loss_model.hpp"
#include "vpd/converters/netlist_builder.hpp"
#include "vpd/converters/series_cap_buck.hpp"
#include "vpd/converters/switched_capacitor.hpp"
#include "vpd/converters/transformer_stage.hpp"

// Packaging / PPDN
#include "vpd/package/interconnect.hpp"
#include "vpd/package/irdrop.hpp"
#include "vpd/package/layers.hpp"
#include "vpd/package/mesh.hpp"
#include "vpd/package/stacked_mesh.hpp"
#include "vpd/package/stackup.hpp"
#include "vpd/package/utilization.hpp"

// Architectures and core API
#include "vpd/arch/architecture.hpp"
#include "vpd/arch/evaluator.hpp"
#include "vpd/arch/fault_injection.hpp"
#include "vpd/arch/placement.hpp"
#include "vpd/arch/report.hpp"
#include "vpd/arch/transient_model.hpp"
#include "vpd/arch/vr_allocation.hpp"
#include "vpd/core/advisor.hpp"
#include "vpd/core/explorer.hpp"
#include "vpd/core/spec.hpp"
#include "vpd/core/trends.hpp"
#include "vpd/core/variation.hpp"

// Sweep engine and fault campaigns
#include "vpd/fault/campaign.hpp"
#include "vpd/fault/fault_model.hpp"
#include "vpd/fault/resilience.hpp"
#include "vpd/sweep/sweep.hpp"
#include "vpd/sweep/thread_pool.hpp"

// Design-space optimization
#include "vpd/opt/design_space.hpp"
#include "vpd/opt/optimizer.hpp"
#include "vpd/opt/pareto.hpp"

// JSON wire format and the evaluation service
#include "vpd/io/json.hpp"
#include "vpd/io/schema.hpp"
#include "vpd/serve/service.hpp"

// Thermal and workloads
#include "vpd/thermal/thermal.hpp"
#include "vpd/workload/load_transient.hpp"
#include "vpd/workload/power_map.hpp"
