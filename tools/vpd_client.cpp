// vpd-client — pipe stdin to a vpdd / vpd-router socket endpoint.
//
//   vpd-client unix:/run/vpd.sock < requests.ndjson > responses.ndjson
//
// Streams every stdin line to the server while a reader thread prints
// response lines to stdout, so pipelining works exactly like piping into
// a stdin-mode vpdd. On stdin EOF the write side is half-closed and the
// client waits for the remaining responses; exit code 0 means the server
// answered everything and closed cleanly.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "vpd/net/socket.hpp"

int main(int argc, char** argv) {
  using namespace vpd;

  if (argc != 2 || std::strcmp(argv[1], "--help") == 0) {
    std::fprintf(stderr,
                 "usage: %s ADDR\n"
                 "  ADDR  unix:/path/to.sock or tcp:127.0.0.1:PORT\n",
                 argv[0]);
    return 2;
  }
  std::signal(SIGPIPE, SIG_IGN);

  try {
    net::Connection connection =
        net::connect_to(net::Endpoint::parse(argv[1]));

    std::thread reader([&connection] {
      try {
        std::string response;
        while (connection.read_line(&response)) {
          std::fputs(response.c_str(), stdout);
          std::fputc('\n', stdout);
          std::fflush(stdout);
        }
      } catch (const net::IoError&) {
        // Server vanished; whatever arrived is already printed.
      }
    });

    bool write_failed = false;
    std::string line;
    while (std::getline(std::cin, line)) {
      try {
        connection.write_line(line);
      } catch (const net::IoError& e) {
        std::fprintf(stderr, "vpd-client: %s\n", e.what());
        write_failed = true;
        break;
      }
    }
    connection.shutdown_write();  // tell the server we are done
    reader.join();
    return write_failed ? 1 : 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "vpd-client: %s\n", e.what());
    return 1;
  }
}
