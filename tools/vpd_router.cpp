// vpd-router — sharded-fleet front-end for vpdd.
//
// Spawns N vpdd worker processes and routes each NDJSON request line to
// a shard by stable hash of its canonical request key, so identical
// requests always reach the same shard (and its caches) and fleet
// responses stay bit-identical to a single vpdd reading the same lines.
// Control verbs without a key round-robin. Crashed shards are restarted
// with bounded backoff; their outstanding requests get error replies,
// never silence.
//
// Two fleet-level verbs resolve in the router itself:
//
//   {"cmd":"fleet_metrics"}   per-shard {"cmd":"metrics"} snapshots,
//                             merged (counters summed, gauges max,
//                             histograms bucket-merged) plus the
//                             router's own net.router.* instruments
//   {"cmd":"shutdown"}        graceful fleet drain: every shard finishes
//                             its in-flight work, the final per-shard
//                             metrics are merged into the response, all
//                             workers exit 0
//
// Like vpdd, the router speaks NDJSON on stdin/stdout by default, or
// serves many concurrent clients with --listen. See docs/sharding.md.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "vpd/net/router.hpp"
#include "vpd/net/server.hpp"
#include "vpd/obs/registry.hpp"

namespace {

void print_usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--shards N] [--vpdd PATH] [--listen ADDR] "
      "[--max-conns N] [--metrics] [--threads N] [--queue N] [--cache N]\n"
      "  --shards N     worker processes (default 2)\n"
      "  --vpdd PATH    shard binary (default: vpdd next to this binary)\n"
      "  --listen ADDR  serve NDJSON over a socket instead of stdin:\n"
      "                 unix:/path/to.sock or tcp:127.0.0.1:PORT\n"
      "  --max-conns N  socket mode: reject clients beyond N concurrent "
      "connections (default 64)\n"
      "  --metrics      dump the merged fleet metrics to stderr on "
      "shutdown\n"
      "  --threads/--queue/--cache N   passed through to every shard\n",
      argv0);
}

/// "dir/vpd-router" -> "dir/vpdd"; a bare name defers to PATH lookup.
std::string default_vpdd_path(const char* argv0) {
  std::string path(argv0);
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return "vpdd";
  return path.substr(0, slash + 1) + "vpdd";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vpd;

  net::RouterConfig config;
  net::ServerOptions server_options;
  std::string listen_address;
  std::string vpdd_path = default_vpdd_path(argv[0]);
  std::vector<std::string> shard_flags;
  bool metrics = false;
  for (int i = 1; i < argc; ++i) {
    const auto value_arg = [&](const char* flag, std::string* out) {
      if (std::strcmp(argv[i], flag) != 0) return false;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      *out = argv[++i];
      return true;
    };
    std::string value;
    if (value_arg("--shards", &value)) {
      config.shards = static_cast<std::size_t>(
          std::strtoull(value.c_str(), nullptr, 10));
    } else if (value_arg("--vpdd", &vpdd_path)) {
    } else if (value_arg("--listen", &listen_address)) {
    } else if (value_arg("--max-conns", &value)) {
      server_options.max_connections = static_cast<std::size_t>(
          std::strtoull(value.c_str(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else if (value_arg("--threads", &value) ||
               value_arg("--queue", &value) ||
               value_arg("--cache", &value)) {
      shard_flags.push_back(argv[i - 1]);
      shard_flags.push_back(value);
    } else {
      print_usage(argv[0]);
      return 2;
    }
  }

  // Dying shards and dying clients must not kill the router mid-write.
  std::signal(SIGPIPE, SIG_IGN);

  config.shard_command.push_back(vpdd_path);
  for (std::string& flag : shard_flags) {
    config.shard_command.push_back(std::move(flag));
  }

  obs::Registry registry;
  try {
    net::ShardRouter router(config, registry);

    if (!listen_address.empty()) {
      const net::Endpoint endpoint = net::Endpoint::parse(listen_address);
      net::NdjsonServer server(
          endpoint,
          [&](net::Sink sink) {
            return std::make_unique<net::RouterSession>(router,
                                                        std::move(sink));
          },
          registry, server_options);
      std::fprintf(stderr, "vpd-router: %zu shards (%s) on %s\n",
                   router.shard_count(), vpdd_path.c_str(),
                   server.endpoint().to_string().c_str());
      server.serve();
    } else {
      net::RouterSession session(router, [](const std::string& response) {
        std::fputs(response.c_str(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);
      });
      std::string line;
      while (std::getline(std::cin, line)) {
        if (!session.feed(line)) break;  // {"cmd":"shutdown"} accepted
      }
      session.drain();
    }

    const obs::Snapshot fleet = router.drain();
    if (metrics) {
      const std::string dump = io::dump_pretty(fleet.to_json());
      std::fputs(dump.c_str(), stderr);
      std::fputc('\n', stderr);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "vpd-router: %s\n", e.what());
    return 1;
  }
  return 0;
}
