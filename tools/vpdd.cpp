// vpdd — the VPD evaluation daemon.
//
// Reads newline-delimited JSON on stdin and writes one JSON response
// line per request on stdout. Each line is either a bare evaluation
// request (the v1 wire form) or a control envelope selected by "cmd":
//
//   {"cmd":"evaluate", ...request fields...}   evaluate (same as bare)
//   {"cmd":"transient", ...request fields...}  droop campaign (see
//                                              docs/transient.md)
//   {"cmd":"metrics"}                          unified telemetry snapshot
//   {"cmd":"trace", "path":"out.json"}         flush the trace buffer
//
// Requests carry an optional "id" member which is echoed verbatim in the
// response, so clients may pipeline: send many requests without waiting,
// match responses by id. Responses are written in request order
// (evaluation itself is parallel and out of order; ordering costs
// nothing because every response is buffered in its future until its
// turn). Control verbs resolve when their turn in the output order
// comes, so a "metrics" line reflects every request before it.
//
// A malformed or invalid request produces a {"status":"error"} response
// line — the daemon never crashes on bad input and keeps serving. See
// docs/serve.md for the wire protocol and docs/observability.md for the
// telemetry and trace formats.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <iostream>
#include <optional>
#include <string>
#include <utility>

#include "vpd/io/json.hpp"
#include "vpd/io/schema.hpp"
#include "vpd/obs/trace.hpp"
#include "vpd/serve/service.hpp"

namespace {

using vpd::io::Value;

void print_usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--threads N] [--queue N] [--cache N] [--pretty] "
      "[--metrics] [--trace FILE] [--slow-ms MS]\n"
      "  --threads N   worker threads (default: hardware concurrency)\n"
      "  --queue N     max in-flight evaluations before rejecting "
      "(default 256)\n"
      "  --cache N     completed-result LRU capacity (default 1024)\n"
      "  --pretty      indent response JSON (default: one compact line)\n"
      "  --metrics     dump service metrics JSON to stderr on shutdown\n"
      "  --trace FILE  enable tracing; write Chrome trace-event JSON\n"
      "                (or NDJSON if FILE ends in .ndjson) on shutdown\n"
      "  --slow-ms MS  log requests slower than MS milliseconds to "
      "stderr\n",
      argv0);
}

/// Response line: the client's id (null when absent or unparseable)
/// followed by the response body, "status" first.
void print_response(const Value& id, const Value& service_body, bool pretty) {
  Value body = Value::object();
  body.set("id", id);
  for (const auto& [key, value] : service_body.as_object()) {
    body.set(key, value);
  }
  const std::string line =
      pretty ? vpd::io::dump_pretty(body) : vpd::io::dump(body);
  std::fputs(line.c_str(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);
}

Value error_body(const std::string& message) {
  Value body = Value::object();
  body.set("status", "error");
  body.set("schema_version", vpd::io::kSchemaVersion);
  body.set("error", message);
  return body;
}

/// One queued output line, resolved in request order. Exactly one of
/// `future` (evaluations) and `kind` != kBody (control verbs, built when
/// their turn comes so they observe every earlier request) is active.
struct Pending {
  enum class Kind { kEvaluate, kBody, kMetrics, kTrace, kTransient };
  Kind kind{Kind::kEvaluate};
  Value id;
  std::shared_future<vpd::serve::ServiceResponse> future;  // kEvaluate
  Value body;        // kBody: prebuilt (parse errors)
  std::string path;  // kTrace: output file ("" = --trace file)
  /// kTransient: parsed at enqueue (parse errors become kBody lines), run
  /// when its turn in the output order comes.
  std::optional<vpd::io::TransientRequest> transient;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace vpd;

  serve::ServiceConfig config;
  bool metrics = false;
  bool pretty = false;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const auto size_arg = [&](const char* flag, std::size_t* out) {
      if (std::strcmp(argv[i], flag) != 0) return false;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      *out = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      return true;
    };
    if (size_arg("--threads", &config.threads) ||
        size_arg("--queue", &config.queue_capacity) ||
        size_arg("--cache", &config.result_cache_capacity)) {
      continue;
    }
    if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else if (std::strcmp(argv[i], "--pretty") == 0) {
      pretty = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--trace needs a file path\n");
        return 2;
      }
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--slow-ms") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--slow-ms needs a value\n");
        return 2;
      }
      config.slow_request_seconds = std::strtod(argv[++i], nullptr) / 1000.0;
    } else {
      print_usage(argv[0]);
      return 2;
    }
  }

  if (!trace_path.empty()) obs::set_tracing_enabled(true);

  serve::EvaluationService service(config);
  std::deque<Pending> pending;

  const auto write_trace_to = [&](const std::string& path) {
    if (!obs::write_trace(path)) {
      return error_body("trace: cannot write " + path);
    }
    Value body = Value::object();
    body.set("status", "ok");
    body.set("schema_version", io::kSchemaVersion);
    Value trace = Value::object();
    trace.set("path", path);
    trace.set("events", double(obs::trace_event_count()));
    trace.set("dropped", double(obs::trace_events_dropped()));
    body.set("trace", trace);
    return body;
  };

  /// Builds a control verb's body at drain time: every earlier request
  /// has resolved (and been counted) by the time its turn comes.
  const auto resolve = [&](Pending& item) -> Value {
    switch (item.kind) {
      case Pending::Kind::kBody:
        return std::move(item.body);
      case Pending::Kind::kMetrics: {
        Value body = Value::object();
        body.set("status", "ok");
        body.set("schema_version", io::kSchemaVersion);
        body.set("metrics", service.metrics_json());
        return body;
      }
      case Pending::Kind::kTrace: {
        const std::string& path = item.path.empty() ? trace_path : item.path;
        if (path.empty()) {
          return error_body(
              "trace: no output path (pass \"path\" or start vpdd with "
              "--trace FILE)");
        }
        return write_trace_to(path);
      }
      case Pending::Kind::kTransient:
        // Runs synchronously at its output turn: the campaign owns its
        // own worker pool, and resolving in order keeps the pipelining
        // contract (a later "metrics" line sees the whole campaign).
        return serve::to_json(service.run_transient(*item.transient));
      case Pending::Kind::kEvaluate:
        break;
    }
    return serve::to_json(item.future.get());
  };

  const auto drain_ready = [&](bool block) {
    while (!pending.empty()) {
      Pending& item = pending.front();
      if (item.kind == Pending::Kind::kEvaluate && !block &&
          item.future.wait_for(std::chrono::seconds(0)) !=
              std::future_status::ready) {
        return;
      }
      print_response(item.id, resolve(item), pretty);
      pending.pop_front();
    }
  };

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    Pending item;
    try {
      const Value doc = io::parse(line);
      if (const Value* requested_id = doc.find("id")) item.id = *requested_id;
      // The envelope's "cmd" and "id" need no stripping: the schema
      // reader ignores unknown fields (the v2 compatibility rule).
      std::string cmd = "evaluate";
      if (const Value* requested_cmd = doc.find("cmd")) {
        cmd = requested_cmd->as_string();
      }
      if (cmd == "evaluate") {
        const io::EvaluationRequest request =
            io::evaluation_request_from_json(doc);
        item.kind = Pending::Kind::kEvaluate;
        item.future = service.submit(request);
      } else if (cmd == "transient") {
        item.kind = Pending::Kind::kTransient;
        item.transient = io::transient_request_from_json(doc);
      } else if (cmd == "metrics") {
        item.kind = Pending::Kind::kMetrics;
      } else if (cmd == "trace") {
        item.kind = Pending::Kind::kTrace;
        if (const Value* path = doc.find("path")) {
          item.path = path->as_string();
        }
      } else {
        item.kind = Pending::Kind::kBody;
        item.body = error_body(
            "unknown cmd \"" + cmd +
            "\" (expected evaluate, transient, metrics or trace)");
      }
    } catch (const Error& e) {
      // Queue a resolved error response so output order stays request
      // order even when a bad line lands between in-flight evaluations.
      item.kind = Pending::Kind::kBody;
      item.body = error_body(e.what());
    }
    pending.push_back(std::move(item));
    drain_ready(/*block=*/false);
  }
  drain_ready(/*block=*/true);

  if (!trace_path.empty()) {
    if (obs::write_trace(trace_path)) {
      std::fprintf(stderr, "vpdd: wrote %zu trace events to %s\n",
                   obs::trace_event_count(), trace_path.c_str());
    } else {
      std::fprintf(stderr, "vpdd: failed to write trace to %s\n",
                   trace_path.c_str());
    }
  }
  if (metrics) {
    const std::string dump = io::dump_pretty(service.metrics_json());
    std::fputs(dump.c_str(), stderr);
    std::fputc('\n', stderr);
  }
  return 0;
}
