// vpdd — the VPD evaluation daemon.
//
// Reads newline-delimited JSON on stdin (or, with --listen, serves many
// concurrent socket clients) and writes one JSON response line per
// request. Each line is either a bare evaluation request (the v1 wire
// form) or a control envelope selected by "cmd":
//
//   {"cmd":"evaluate", ...request fields...}   evaluate (same as bare)
//   {"cmd":"evaluate_batch",                   batch-first evaluation:
//    "requests":[...]}                         same-operator requests
//                                              solve as one block panel
//                                              (docs/serve.md)
//   {"cmd":"transient", ...request fields...}  droop campaign (see
//                                              docs/transient.md)
//   {"cmd":"optimize", ...request fields...}   Pareto design search (see
//                                              docs/optimize.md)
//   {"cmd":"metrics"}                          unified telemetry snapshot
//   {"cmd":"trace", "path":"out.json"}         flush the trace buffer
//   {"cmd":"shutdown"}                         graceful drain: finish
//                                              in-flight work, reply with
//                                              the final metrics, exit 0
//
// Requests carry an optional "id" member which is echoed verbatim in the
// response — even when the line is malformed, as long as the id is
// recoverable from the raw bytes — so clients may pipeline: send many
// requests without waiting, match responses by id. Responses are written
// in request order (evaluation itself is parallel and out of order;
// ordering costs nothing because every response is buffered in its
// future until its turn). Control verbs resolve when their turn in the
// output order comes, so a "metrics" line reflects every request before
// it.
//
// A malformed or invalid request produces a {"status":"error"} response
// line — the daemon never crashes on bad input and keeps serving. See
// docs/serve.md for the wire protocol, docs/sharding.md for the socket
// and fleet topology, and docs/observability.md for telemetry formats.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "vpd/net/server.hpp"
#include "vpd/net/session.hpp"
#include "vpd/obs/trace.hpp"
#include "vpd/serve/service.hpp"

namespace {

void print_usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--threads N] [--queue N] [--cache N] [--pretty] "
      "[--metrics] [--trace FILE] [--slow-ms MS] [--listen ADDR] "
      "[--max-conns N]\n"
      "  --threads N    worker threads (default: hardware concurrency)\n"
      "  --queue N      max in-flight evaluations before rejecting "
      "(default 256)\n"
      "  --cache N      completed-result LRU capacity (default 1024)\n"
      "  --pretty       indent response JSON (default: one compact line)\n"
      "  --metrics      dump service metrics JSON to stderr on shutdown\n"
      "  --trace FILE   enable tracing; write Chrome trace-event JSON\n"
      "                 (or NDJSON if FILE ends in .ndjson) on shutdown\n"
      "  --slow-ms MS   log requests slower than MS milliseconds to "
      "stderr\n"
      "  --listen ADDR  serve NDJSON over a socket instead of stdin:\n"
      "                 unix:/path/to.sock or tcp:127.0.0.1:PORT\n"
      "                 (tcp:...:0 picks a port; printed on stderr)\n"
      "  --max-conns N  socket mode: reject clients beyond N concurrent "
      "connections (default 64)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vpd;

  serve::ServiceConfig config;
  net::ServerOptions server_options;
  net::SessionOptions session_options;
  bool metrics = false;
  std::string listen_address;
  for (int i = 1; i < argc; ++i) {
    const auto size_arg = [&](const char* flag, std::size_t* out) {
      if (std::strcmp(argv[i], flag) != 0) return false;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      *out = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      return true;
    };
    if (size_arg("--threads", &config.threads) ||
        size_arg("--queue", &config.queue_capacity) ||
        size_arg("--cache", &config.result_cache_capacity) ||
        size_arg("--max-conns", &server_options.max_connections)) {
      continue;
    }
    if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else if (std::strcmp(argv[i], "--pretty") == 0) {
      session_options.pretty = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--trace needs a file path\n");
        return 2;
      }
      session_options.default_trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--slow-ms") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--slow-ms needs a value\n");
        return 2;
      }
      config.slow_request_seconds = std::strtod(argv[++i], nullptr) / 1000.0;
    } else if (std::strcmp(argv[i], "--listen") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--listen needs an address\n");
        return 2;
      }
      listen_address = argv[++i];
    } else {
      print_usage(argv[0]);
      return 2;
    }
  }

  if (!session_options.default_trace_path.empty()) {
    obs::set_tracing_enabled(true);
  }

  serve::EvaluationService service(config);

  if (!listen_address.empty()) {
    // Socket mode: a dying client must not kill the daemon mid-write.
    std::signal(SIGPIPE, SIG_IGN);
    try {
      const net::Endpoint endpoint = net::Endpoint::parse(listen_address);
      net::NdjsonServer server(
          endpoint,
          [&](net::Sink sink) {
            return std::make_unique<net::LineSession>(
                service, std::move(sink), session_options);
          },
          service.registry(), server_options);
      std::fprintf(stderr, "vpdd: listening on %s (%zu threads)\n",
                   server.endpoint().to_string().c_str(),
                   service.thread_count());
      server.serve();
    } catch (const Error& e) {
      std::fprintf(stderr, "vpdd: %s\n", e.what());
      return 1;
    }
  } else {
    net::LineSession session(
        service,
        [](const std::string& response) {
          std::fputs(response.c_str(), stdout);
          std::fputc('\n', stdout);
          std::fflush(stdout);
        },
        session_options);
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!session.feed(line)) break;  // {"cmd":"shutdown"} accepted
    }
    session.drain();
  }

  if (!session_options.default_trace_path.empty()) {
    const std::string& trace_path = session_options.default_trace_path;
    if (obs::write_trace(trace_path)) {
      std::fprintf(stderr, "vpdd: wrote %zu trace events to %s\n",
                   obs::trace_event_count(), trace_path.c_str());
    } else {
      std::fprintf(stderr, "vpdd: failed to write trace to %s\n",
                   trace_path.c_str());
    }
  }
  if (metrics) {
    const std::string dump = io::dump_pretty(service.metrics_json());
    std::fputs(dump.c_str(), stderr);
    std::fputc('\n', stderr);
  }
  return 0;
}
