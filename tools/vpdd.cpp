// vpdd — the VPD evaluation daemon.
//
// Reads newline-delimited JSON evaluation requests on stdin and writes
// one JSON response line per request on stdout. Requests carry an
// optional "id" member which is echoed verbatim in the response, so
// clients may pipeline: send many requests without waiting, match
// responses by id. Responses are written in request order (evaluation
// itself is parallel and out of order; ordering costs nothing because
// every response is buffered in its future until its turn).
//
// A malformed or invalid request produces a {"status":"error"} response
// line — the daemon never crashes on bad input and keeps serving. See
// docs/serve.md for the wire protocol.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <iostream>
#include <string>
#include <utility>

#include "vpd/io/json.hpp"
#include "vpd/io/schema.hpp"
#include "vpd/serve/service.hpp"

namespace {

using vpd::io::Value;

void print_usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--threads N] [--queue N] [--cache N] [--pretty] "
      "[--metrics]\n"
      "  --threads N   worker threads (default: hardware concurrency)\n"
      "  --queue N     max in-flight evaluations before rejecting "
      "(default 256)\n"
      "  --cache N     completed-result LRU capacity (default 1024)\n"
      "  --pretty      indent response JSON (default: one compact line)\n"
      "  --metrics     dump service metrics JSON to stderr on shutdown\n",
      argv0);
}

/// Response line: the client's id (null when absent or unparseable)
/// followed by the service response body.
void print_response(const Value& id, const vpd::serve::ServiceResponse& response,
                    bool pretty) {
  Value body = Value::object();
  body.set("id", id);
  const Value service_body = vpd::serve::to_json(response);
  for (const auto& [key, value] : service_body.as_object()) {
    body.set(key, value);
  }
  const std::string line =
      pretty ? vpd::io::dump_pretty(body) : vpd::io::dump(body);
  std::fputs(line.c_str(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vpd;

  serve::ServiceConfig config;
  bool metrics = false;
  bool pretty = false;
  for (int i = 1; i < argc; ++i) {
    const auto size_arg = [&](const char* flag, std::size_t* out) {
      if (std::strcmp(argv[i], flag) != 0) return false;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      *out = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      return true;
    };
    if (size_arg("--threads", &config.threads) ||
        size_arg("--queue", &config.queue_capacity) ||
        size_arg("--cache", &config.result_cache_capacity)) {
      continue;
    }
    if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else if (std::strcmp(argv[i], "--pretty") == 0) {
      pretty = true;
    } else {
      print_usage(argv[0]);
      return 2;
    }
  }

  serve::EvaluationService service(config);
  std::deque<std::pair<Value, std::shared_future<serve::ServiceResponse>>>
      pending;

  const auto drain_ready = [&](bool block) {
    while (!pending.empty()) {
      auto& [id, future] = pending.front();
      if (!block && future.wait_for(std::chrono::seconds(0)) !=
                        std::future_status::ready) {
        return;
      }
      print_response(id, future.get(), pretty);
      pending.pop_front();
    }
  };

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    Value id;  // null until the request parses far enough to have one
    try {
      Value doc = io::parse(line);
      if (const Value* requested_id = doc.find("id")) {
        id = *requested_id;
        // The schema reader is strict about unknown fields; "id" is the
        // transport envelope's, not the request's.
        Value::Object& members = doc.as_object();
        for (auto it = members.begin(); it != members.end(); ++it) {
          if (it->first == "id") {
            members.erase(it);
            break;
          }
        }
      }
      const io::EvaluationRequest request =
          io::evaluation_request_from_json(doc);
      pending.emplace_back(std::move(id), service.submit(request));
    } catch (const Error& e) {
      // Queue a resolved error response so output order stays request
      // order even when a bad line lands between in-flight evaluations.
      serve::ServiceResponse response;
      response.status = serve::ResponseStatus::kError;
      response.error = e.what();
      std::promise<serve::ServiceResponse> resolved;
      resolved.set_value(std::move(response));
      pending.emplace_back(std::move(id), resolved.get_future().share());
    }
    drain_ready(/*block=*/false);
  }
  drain_ready(/*block=*/true);

  if (metrics) {
    const std::string dump = io::dump_pretty(service.metrics_json());
    std::fputs(dump.c_str(), stderr);
    std::fputc('\n', stderr);
  }
  return 0;
}
