// Solver-core bench: Jacobi vs IC(0) (modified, level-1 fill) CG on the
// distribution mesh operators, across mesh sizes and on the default
// evaluation grid. Both preconditioners converge to the same certified
// normwise backward-error criterion; the comparison is purely about how
// many iterations (and how much wall time) that certification costs.
//
// Modes:
//   (default)  human-readable tables + ratios
//   --json     one JSON document through benchio::JsonReport
//   --check    regression guard: IC iteration counts on the default
//              evaluation grid must not exceed the recorded Jacobi
//              baselines (exit 1 on violation); prints the comparison
//
// The recorded baselines are the warm-start Jacobi iteration counts of
// the default grid at the time the preconditioned core landed. The
// Jacobi path preserves that operation order bit for bit, so these are
// stable reference points, not environment-dependent timings.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_output.hpp"
#include "vpd/arch/evaluator.hpp"
#include "vpd/common/table.hpp"
#include "vpd/core/spec.hpp"
#include "vpd/package/irdrop.hpp"

namespace {

using namespace vpd;

struct GridPoint {
  ArchitectureKind architecture;
  TopologyKind topology;
  const char* label;
  // Warm-start Jacobi iteration count recorded when IC(0) landed; the
  // guard fails if IC ever needs more than this.
  std::size_t recorded_jacobi_iterations;
};

// Default evaluation grid (DSCH column of Fig. 7, default options).
constexpr GridPoint kDefaultGrid[] = {
    {ArchitectureKind::kA1_InterposerPeriphery, TopologyKind::kDsch, "A1/DSCH",
     75},
    {ArchitectureKind::kA2_InterposerBelowDie, TopologyKind::kDsch, "A2/DSCH",
     68},
    {ArchitectureKind::kA3_TwoStage12V, TopologyKind::kDsch, "A3-12V/DSCH",
     122},
    {ArchitectureKind::kA3_TwoStage6V, TopologyKind::kDsch, "A3-6V/DSCH",
     170},
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct SolveSample {
  std::size_t iterations{0};
  double best_seconds{0.0};
};

// Representative distribution solve at an arbitrary mesh resolution: the
// paper die with four mid-edge VR patches sourcing a uniform 500 A draw.
SolveSample mesh_solve(std::size_t nodes, CgPreconditioner preconditioner,
                       int repetitions) {
  const Length side{10e-3};
  const GridMesh mesh(side, side, nodes, nodes, 2e-3);
  const Voltage rail{1.0};
  std::vector<VrAttachment> vrs;
  for (const auto& [cx, cy] :
       std::vector<std::pair<double, double>>{{0.5 * side.value, 0.0},
                                              {0.5 * side.value, side.value},
                                              {0.0, 0.5 * side.value},
                                              {side.value, 0.5 * side.value}}) {
    const auto patch =
        patch_attachment(mesh, Length{cx}, Length{cy}, Length{1.5e-3}, rail,
                         Resistance{100e-6});
    vrs.insert(vrs.end(), patch.begin(), patch.end());
  }
  const Vector sinks = uniform_sinks(mesh, Current{500.0});
  IrDropOptions options;
  options.warm_start_voltage = rail.value;
  options.preconditioner = preconditioner;

  SolveSample sample;
  for (int rep = 0; rep < repetitions; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const IrDropResult result = solve_irdrop(mesh, vrs, sinks, options);
    const double seconds = seconds_since(start);
    sample.iterations = result.cg_iterations;
    if (rep == 0 || seconds < sample.best_seconds)
      sample.best_seconds = seconds;
  }
  return sample;
}

SolveSample grid_point(const GridPoint& point,
                       CgPreconditioner preconditioner, int repetitions) {
  const PowerDeliverySpec spec = paper_system();
  EvaluationOptions options;
  options.irdrop_preconditioner = preconditioner;
  SolveSample sample;
  for (int rep = 0; rep < repetitions; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const ArchitectureEvaluation eval = evaluate_architecture(
        point.architecture, spec, point.topology,
        DeviceTechnology::kGalliumNitride, options);
    const double seconds = seconds_since(start);
    sample.iterations = eval.cg_iterations;
    if (rep == 0 || seconds < sample.best_seconds)
      sample.best_seconds = seconds;
  }
  return sample;
}

std::string format_ratio(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.2fx", value);
  return buffer;
}

std::string format_us(double seconds) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.0f us", 1e6 * seconds);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      std::fprintf(stderr, "usage: %s [--json] [--check]\n", argv[0]);
      return 2;
    }
  }
  const int repetitions = 3;

  // --- Mesh-size scan --------------------------------------------------------
  const std::size_t sizes[] = {41, 61, 81, 121};
  TextTable mesh_table({"Mesh", "Jacobi its", "IC(0) its", "Iteration ratio",
                        "Jacobi wall", "IC(0) wall", "Wall ratio"});
  io::Value mesh_rows = io::Value::array();
  for (std::size_t nodes : sizes) {
    const SolveSample jacobi =
        mesh_solve(nodes, CgPreconditioner::kJacobi, repetitions);
    const SolveSample ic =
        mesh_solve(nodes, CgPreconditioner::kIncompleteCholesky, repetitions);
    const double it_ratio = static_cast<double>(jacobi.iterations) /
                            static_cast<double>(ic.iterations);
    const double wall_ratio = jacobi.best_seconds / ic.best_seconds;
    mesh_table.add_row({std::to_string(nodes) + "x" + std::to_string(nodes),
                        std::to_string(jacobi.iterations),
                        std::to_string(ic.iterations), format_ratio(it_ratio),
                        format_us(jacobi.best_seconds),
                        format_us(ic.best_seconds), format_ratio(wall_ratio)});
    io::Value row = io::Value::object();
    row.set("nodes", nodes);
    row.set("jacobi_iterations", jacobi.iterations);
    row.set("ic_iterations", ic.iterations);
    row.set("iteration_ratio", it_ratio);
    row.set("jacobi_seconds", jacobi.best_seconds);
    row.set("ic_seconds", ic.best_seconds);
    row.set("wall_ratio", wall_ratio);
    mesh_rows.push_back(std::move(row));
  }

  // --- Default evaluation grid ----------------------------------------------
  const SolverCounters before = solver_counters();
  TextTable grid_table({"Point", "Jacobi its", "IC(0) its", "Ratio",
                        "Recorded baseline", "Guard"});
  io::Value grid_rows = io::Value::array();
  bool guard_ok = true;
  double worst_ratio = 0.0;
  for (const GridPoint& point : kDefaultGrid) {
    const SolveSample jacobi =
        grid_point(point, CgPreconditioner::kJacobi, 1);
    const SolveSample ic =
        grid_point(point, CgPreconditioner::kIncompleteCholesky, 1);
    const double ratio = static_cast<double>(jacobi.iterations) /
                         static_cast<double>(ic.iterations);
    const bool ok = ic.iterations <= point.recorded_jacobi_iterations;
    guard_ok = guard_ok && ok;
    if (worst_ratio == 0.0 || ratio < worst_ratio) worst_ratio = ratio;
    grid_table.add_row({point.label, std::to_string(jacobi.iterations),
                        std::to_string(ic.iterations), format_ratio(ratio),
                        std::to_string(point.recorded_jacobi_iterations),
                        ok ? "ok" : "EXCEEDED"});
    io::Value row = io::Value::object();
    row.set("point", point.label);
    row.set("jacobi_iterations", jacobi.iterations);
    row.set("ic_iterations", ic.iterations);
    row.set("iteration_ratio", ratio);
    row.set("recorded_jacobi_baseline", point.recorded_jacobi_iterations);
    row.set("within_baseline", ok);
    grid_rows.push_back(std::move(row));
  }
  const SolverCounters delta = solver_counters() - before;

  if (json) {
    benchio::JsonReport report("bench_solver");
    report.add("mesh_sizes", std::move(mesh_rows));
    report.add("default_grid", std::move(grid_rows));
    report.add("worst_grid_iteration_ratio", worst_ratio);
    report.add("guard_ok", guard_ok);
    report.set_solver(delta);
    report.print();
    return guard_ok ? 0 : 1;
  }

  std::printf("=== CG preconditioning: Jacobi vs modified IC(0), fill "
              "level 1 ===\n\n");
  std::printf("Mesh-size scan (warm-started distribution solve, best of "
              "%d):\n", repetitions);
  std::cout << mesh_table << '\n';
  std::printf("Default evaluation grid (per-evaluation CG iterations):\n");
  std::cout << grid_table << '\n';
  std::printf(
      "Worst default-grid iteration ratio: %.2fx (acceptance floor 3x).\n"
      "Solver counters over the grid section: %llu solves, %llu "
      "iterations, %llu factorizations, %llu reuses.\n",
      worst_ratio, static_cast<unsigned long long>(delta.cg_solves),
      static_cast<unsigned long long>(delta.cg_iterations),
      static_cast<unsigned long long>(delta.precond_factorizations),
      static_cast<unsigned long long>(delta.precond_reuses));
  if (check) {
    std::printf("\nGuard: IC iterations %s the recorded Jacobi "
                "baselines.\n",
                guard_ok ? "within" : "EXCEED");
  }
  return guard_ok ? 0 : 1;
}
