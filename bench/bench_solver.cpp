// Solver-core bench: Jacobi vs IC(0) (modified, level-1 fill) vs geometric
// multigrid CG on the distribution mesh operators, across mesh sizes and
// on the default evaluation grid, plus the multi-RHS loop-vs-block
// comparison. Every preconditioner converges to the same certified
// normwise backward-error criterion; the comparison is purely about how
// many iterations (and how much wall time) that certification costs.
//
// Modes:
//   (default)  human-readable tables + ratios
//   --json     one JSON document through benchio::JsonReport
//   --check    regression guard (exit 1 on violation): IC iteration
//              counts on the default evaluation grid must not exceed the
//              recorded Jacobi baselines, and multigrid iteration counts
//              across the 64 -> 512 refinement ladder must stay flat
//              within 2x (max/min); prints the comparison
//
// The recorded baselines are the warm-start Jacobi iteration counts of
// the default grid at the time the preconditioned core landed. The
// Jacobi path preserves that operation order bit for bit, so these are
// stable reference points, not environment-dependent timings. The
// multigrid flatness guard needs no recorded numbers at all: mesh-size
// independence is the property itself.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_output.hpp"
#include "vpd/arch/evaluator.hpp"
#include "vpd/common/table.hpp"
#include "vpd/core/spec.hpp"
#include "vpd/package/irdrop.hpp"
#include "vpd/package/mesh_cache.hpp"

namespace {

using namespace vpd;

struct GridPoint {
  ArchitectureKind architecture;
  TopologyKind topology;
  const char* label;
  // Warm-start Jacobi iteration count recorded when IC(0) landed; the
  // guard fails if IC ever needs more than this.
  std::size_t recorded_jacobi_iterations;
};

// Default evaluation grid (DSCH column of Fig. 7, default options).
constexpr GridPoint kDefaultGrid[] = {
    {ArchitectureKind::kA1_InterposerPeriphery, TopologyKind::kDsch, "A1/DSCH",
     75},
    {ArchitectureKind::kA2_InterposerBelowDie, TopologyKind::kDsch, "A2/DSCH",
     68},
    {ArchitectureKind::kA3_TwoStage12V, TopologyKind::kDsch, "A3-12V/DSCH",
     122},
    {ArchitectureKind::kA3_TwoStage6V, TopologyKind::kDsch, "A3-6V/DSCH",
     170},
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct SolveSample {
  std::size_t iterations{0};
  double best_seconds{0.0};
};

// Four mid-edge VR patches sourcing the paper die's rail, shared by the
// mesh-size scan, the refinement ladder and the multi-RHS section.
std::vector<VrAttachment> mid_edge_vrs(const GridMesh& mesh) {
  const double w = mesh.width().value;
  const double h = mesh.height().value;
  const Voltage rail{1.0};
  std::vector<VrAttachment> vrs;
  for (const auto& [cx, cy] : std::vector<std::pair<double, double>>{
           {0.5 * w, 0.0}, {0.5 * w, h}, {0.0, 0.5 * h}, {w, 0.5 * h}}) {
    const auto patch =
        patch_attachment(mesh, Length{cx}, Length{cy}, Length{1.5e-3}, rail,
                         Resistance{100e-6});
    vrs.insert(vrs.end(), patch.begin(), patch.end());
  }
  return vrs;
}

// Representative distribution solve at an arbitrary mesh resolution: the
// paper die with four mid-edge VR patches sourcing a uniform 500 A draw.
SolveSample mesh_solve(std::size_t nodes, CgPreconditioner preconditioner,
                       int repetitions) {
  const Length side{10e-3};
  const GridMesh mesh(side, side, nodes, nodes, 2e-3);
  const std::vector<VrAttachment> vrs = mid_edge_vrs(mesh);
  const Vector sinks = uniform_sinks(mesh, Current{500.0});
  IrDropOptions options;
  options.warm_start_voltage = 1.0;
  options.preconditioner = preconditioner;

  SolveSample sample;
  for (int rep = 0; rep < repetitions; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const IrDropResult result = solve_irdrop(mesh, vrs, sinks, options);
    const double seconds = seconds_since(start);
    sample.iterations = result.cg_iterations;
    if (rep == 0 || seconds < sample.best_seconds)
      sample.best_seconds = seconds;
  }
  return sample;
}

// Same solve against a pre-assembled operator, so the multigrid hierarchy
// and IC symbolic analysis are cached exactly as the production paths
// cache them (the refinement ladder measures the numeric solve, not the
// per-call symbolic setup).
SolveSample assembled_solve(const AssembledMesh& assembled,
                            CgPreconditioner preconditioner,
                            int repetitions) {
  const std::vector<VrAttachment> vrs = mid_edge_vrs(assembled.mesh);
  const Vector sinks = uniform_sinks(assembled.mesh, Current{500.0});
  IrDropOptions options;
  options.warm_start_voltage = 1.0;
  options.preconditioner = preconditioner;

  SolveSample sample;
  for (int rep = 0; rep < repetitions; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const IrDropResult result = solve_irdrop(assembled, vrs, sinks, options);
    const double seconds = seconds_since(start);
    sample.iterations = result.cg_iterations;
    if (rep == 0 || seconds < sample.best_seconds)
      sample.best_seconds = seconds;
  }
  return sample;
}

// Sink maps for the multi-RHS section: a shared uniform draw plus one
// hotspot per map at a different die location, so the right-hand sides
// are genuinely independent (parallel columns would deflate trivially).
std::vector<Vector> hotspot_sink_maps(const GridMesh& mesh,
                                      std::size_t maps) {
  std::vector<Vector> sink_maps;
  sink_maps.reserve(maps);
  for (std::size_t j = 0; j < maps; ++j) {
    Vector sinks = uniform_sinks(mesh, Current{400.0});
    const std::size_t hotspot =
        (j + 1) * mesh.node_count() / (maps + 1);
    sinks[hotspot] += 100.0;
    sink_maps.push_back(std::move(sinks));
  }
  return sink_maps;
}

struct BatchSample {
  std::size_t iterations{0};
  double best_seconds{0.0};
};

// Multi-RHS batch solve through solve_irdrop_batch, block panels vs
// sequential loop selected by batch_block.
BatchSample batch_solve(const AssembledMesh& assembled,
                        const std::vector<VrAttachment>& vrs,
                        const std::vector<Vector>& sink_maps,
                        CgPreconditioner preconditioner, bool block,
                        int repetitions) {
  IrDropOptions options;
  options.warm_start_voltage = 1.0;
  options.preconditioner = preconditioner;
  options.batch_block = block;

  BatchSample sample;
  for (int rep = 0; rep < repetitions; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const std::vector<IrDropResult> results =
        solve_irdrop_batch(assembled, vrs, sink_maps, options);
    const double seconds = seconds_since(start);
    sample.iterations = 0;
    for (const IrDropResult& r : results) sample.iterations += r.cg_iterations;
    if (rep == 0 || seconds < sample.best_seconds)
      sample.best_seconds = seconds;
  }
  return sample;
}

SolveSample grid_point(const GridPoint& point,
                       CgPreconditioner preconditioner, int repetitions) {
  const PowerDeliverySpec spec = paper_system();
  EvaluationOptions options;
  options.irdrop_preconditioner = preconditioner;
  SolveSample sample;
  for (int rep = 0; rep < repetitions; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const ArchitectureEvaluation eval = evaluate_architecture(
        point.architecture, spec, point.topology,
        DeviceTechnology::kGalliumNitride, options);
    const double seconds = seconds_since(start);
    sample.iterations = eval.cg_iterations;
    if (rep == 0 || seconds < sample.best_seconds)
      sample.best_seconds = seconds;
  }
  return sample;
}

std::string format_ratio(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.2fx", value);
  return buffer;
}

std::string format_us(double seconds) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.0f us", 1e6 * seconds);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      std::fprintf(stderr, "usage: %s [--json] [--check]\n", argv[0]);
      return 2;
    }
  }
  const int repetitions = 3;

  // --- Mesh-size scan --------------------------------------------------------
  const std::size_t sizes[] = {41, 61, 81, 121};
  TextTable mesh_table({"Mesh", "Jacobi its", "IC(0) its", "Iteration ratio",
                        "Jacobi wall", "IC(0) wall", "Wall ratio"});
  io::Value mesh_rows = io::Value::array();
  for (std::size_t nodes : sizes) {
    const SolveSample jacobi =
        mesh_solve(nodes, CgPreconditioner::kJacobi, repetitions);
    const SolveSample ic =
        mesh_solve(nodes, CgPreconditioner::kIncompleteCholesky, repetitions);
    const double it_ratio = static_cast<double>(jacobi.iterations) /
                            static_cast<double>(ic.iterations);
    const double wall_ratio = jacobi.best_seconds / ic.best_seconds;
    mesh_table.add_row({std::to_string(nodes) + "x" + std::to_string(nodes),
                        std::to_string(jacobi.iterations),
                        std::to_string(ic.iterations), format_ratio(it_ratio),
                        format_us(jacobi.best_seconds),
                        format_us(ic.best_seconds), format_ratio(wall_ratio)});
    io::Value row = io::Value::object();
    row.set("nodes", nodes);
    row.set("jacobi_iterations", jacobi.iterations);
    row.set("ic_iterations", ic.iterations);
    row.set("iteration_ratio", it_ratio);
    row.set("jacobi_seconds", jacobi.best_seconds);
    row.set("ic_seconds", ic.best_seconds);
    row.set("wall_ratio", wall_ratio);
    mesh_rows.push_back(std::move(row));
  }

  // --- Refinement ladder: IC(0) vs multigrid --------------------------------
  // IC(0) iteration counts grow with refinement; the multigrid V-cycle
  // keeps them essentially flat. The guard asserts the flatness (max/min
  // multigrid iterations across the ladder <= 2x) rather than comparing
  // against recorded counts: mesh-size independence is the property.
  const std::size_t ladder[] = {64, 128, 256, 512};
  TextTable ladder_table({"Mesh", "IC(0) its", "MG its", "IC(0) wall",
                          "MG wall", "Wall ratio"});
  io::Value ladder_rows = io::Value::array();
  std::size_t mg_min_iterations = 0;
  std::size_t mg_max_iterations = 0;
  for (std::size_t nodes : ladder) {
    const auto assembled =
        assemble_mesh(Length{10e-3}, Length{10e-3}, nodes, nodes, 2e-3);
    const SolveSample ic = assembled_solve(
        *assembled, CgPreconditioner::kIncompleteCholesky, 1);
    const SolveSample mg =
        assembled_solve(*assembled, CgPreconditioner::kMultigrid, 1);
    if (mg_min_iterations == 0 || mg.iterations < mg_min_iterations)
      mg_min_iterations = mg.iterations;
    if (mg.iterations > mg_max_iterations)
      mg_max_iterations = mg.iterations;
    ladder_table.add_row(
        {std::to_string(nodes) + "x" + std::to_string(nodes),
         std::to_string(ic.iterations), std::to_string(mg.iterations),
         format_us(ic.best_seconds), format_us(mg.best_seconds),
         format_ratio(ic.best_seconds / mg.best_seconds)});
    io::Value row = io::Value::object();
    row.set("nodes", nodes);
    row.set("ic_iterations", ic.iterations);
    row.set("mg_iterations", mg.iterations);
    row.set("ic_seconds", ic.best_seconds);
    row.set("mg_seconds", mg.best_seconds);
    ladder_rows.push_back(std::move(row));
  }
  const double mg_growth = static_cast<double>(mg_max_iterations) /
                           static_cast<double>(mg_min_iterations);
  const bool mg_ladder_flat = mg_growth <= 2.0;

  // --- Multi-RHS: sequential loop vs block panels ---------------------------
  const std::size_t batch_nodes = 128;
  const std::size_t batch_maps = 8;
  const auto batch_mesh = assemble_mesh(Length{10e-3}, Length{10e-3},
                                        batch_nodes, batch_nodes, 2e-3);
  const std::vector<VrAttachment> batch_vrs = mid_edge_vrs(batch_mesh->mesh);
  const std::vector<Vector> batch_maps_v =
      hotspot_sink_maps(batch_mesh->mesh, batch_maps);
  const BatchSample loop_sample =
      batch_solve(*batch_mesh, batch_vrs, batch_maps_v,
                  CgPreconditioner::kMultigrid, false, repetitions);
  const BatchSample block_sample =
      batch_solve(*batch_mesh, batch_vrs, batch_maps_v,
                  CgPreconditioner::kMultigrid, true, repetitions);
  const double block_speedup =
      loop_sample.best_seconds / block_sample.best_seconds;
  io::Value multi_rhs = io::Value::object();
  multi_rhs.set("nodes", batch_nodes * batch_nodes);
  multi_rhs.set("sink_maps", batch_maps);
  multi_rhs.set("loop_iterations", loop_sample.iterations);
  multi_rhs.set("block_iterations", block_sample.iterations);
  multi_rhs.set("loop_seconds", loop_sample.best_seconds);
  multi_rhs.set("block_seconds", block_sample.best_seconds);
  multi_rhs.set("block_speedup", block_speedup);

  // --- Default evaluation grid ----------------------------------------------
  const SolverCounters before = solver_counters();
  TextTable grid_table({"Point", "Jacobi its", "IC(0) its", "Ratio",
                        "Recorded baseline", "Guard"});
  io::Value grid_rows = io::Value::array();
  bool guard_ok = true;
  double worst_ratio = 0.0;
  for (const GridPoint& point : kDefaultGrid) {
    const SolveSample jacobi =
        grid_point(point, CgPreconditioner::kJacobi, 1);
    const SolveSample ic =
        grid_point(point, CgPreconditioner::kIncompleteCholesky, 1);
    const double ratio = static_cast<double>(jacobi.iterations) /
                         static_cast<double>(ic.iterations);
    const bool ok = ic.iterations <= point.recorded_jacobi_iterations;
    guard_ok = guard_ok && ok;
    if (worst_ratio == 0.0 || ratio < worst_ratio) worst_ratio = ratio;
    grid_table.add_row({point.label, std::to_string(jacobi.iterations),
                        std::to_string(ic.iterations), format_ratio(ratio),
                        std::to_string(point.recorded_jacobi_iterations),
                        ok ? "ok" : "EXCEEDED"});
    io::Value row = io::Value::object();
    row.set("point", point.label);
    row.set("jacobi_iterations", jacobi.iterations);
    row.set("ic_iterations", ic.iterations);
    row.set("iteration_ratio", ratio);
    row.set("recorded_jacobi_baseline", point.recorded_jacobi_iterations);
    row.set("within_baseline", ok);
    grid_rows.push_back(std::move(row));
  }
  const SolverCounters delta = solver_counters() - before;
  const bool grid_guard_ok = guard_ok;
  guard_ok = guard_ok && mg_ladder_flat;

  if (json) {
    benchio::JsonReport report("bench_solver");
    report.add("mesh_sizes", std::move(mesh_rows));
    report.add("refinement_ladder", std::move(ladder_rows));
    report.add("mg_iteration_growth", mg_growth);
    report.add("mg_ladder_flat", mg_ladder_flat);
    report.add("multi_rhs", std::move(multi_rhs));
    report.add("default_grid", std::move(grid_rows));
    report.add("worst_grid_iteration_ratio", worst_ratio);
    report.add("guard_ok", guard_ok);
    report.set_solver(delta);
    report.print();
    return guard_ok ? 0 : 1;
  }

  std::printf("=== CG preconditioning: Jacobi vs modified IC(0) vs "
              "geometric multigrid ===\n\n");
  std::printf("Mesh-size scan (warm-started distribution solve, best of "
              "%d):\n", repetitions);
  std::cout << mesh_table << '\n';
  std::printf("Refinement ladder (cached hierarchy, IC(0) vs multigrid "
              "V(1,1)):\n");
  std::cout << ladder_table << '\n';
  std::printf("Multigrid iteration growth across the ladder: %.2fx "
              "(flat means <= 2x): %s\n\n",
              mg_growth, mg_ladder_flat ? "ok" : "EXCEEDED");
  std::printf("Multi-RHS batch (%zu sink maps, %zux%zu mesh, multigrid, "
              "best of %d):\n"
              "  loop:  %zu iterations, %s\n"
              "  block: %zu iterations, %s  (%.2fx speedup)\n\n",
              batch_maps, batch_nodes, batch_nodes, repetitions,
              loop_sample.iterations, format_us(loop_sample.best_seconds).c_str(),
              block_sample.iterations,
              format_us(block_sample.best_seconds).c_str(), block_speedup);
  std::printf("Default evaluation grid (per-evaluation CG iterations):\n");
  std::cout << grid_table << '\n';
  std::printf(
      "Worst default-grid iteration ratio: %.2fx (acceptance floor 3x).\n"
      "Solver counters over the grid section: %llu solves, %llu "
      "iterations, %llu factorizations, %llu reuses, %llu block panels, "
      "%llu block columns.\n",
      worst_ratio, static_cast<unsigned long long>(delta.cg_solves),
      static_cast<unsigned long long>(delta.cg_iterations),
      static_cast<unsigned long long>(delta.precond_factorizations),
      static_cast<unsigned long long>(delta.precond_reuses),
      static_cast<unsigned long long>(delta.cg_block_panels),
      static_cast<unsigned long long>(delta.cg_block_columns));
  if (check) {
    std::printf("\nGuard: IC iterations %s the recorded Jacobi baselines; "
                "multigrid ladder %s.\n",
                grid_guard_ok ? "within" : "EXCEED",
                mg_ladder_flat ? "flat" : "NOT FLAT");
  }
  return guard_ok ? 0 : 1;
}
