// Ablation: Si vs GaN power devices. The paper motivates GaN by its
// order-of-magnitude Ron*Qg figure-of-merit advantage; this sweep shows
// what the device technology is worth at the architecture level, and per
// topology.
#include <cstdio>
#include <iostream>

#include "vpd/arch/evaluator.hpp"
#include "vpd/common/table.hpp"
#include "vpd/converters/catalog.hpp"
#include "vpd/devices/technology.hpp"

int main() {
  using namespace vpd;
  using namespace vpd::literals;

  std::printf("=== Ablation: Si vs GaN power transistors ===\n\n");

  const TechnologyParams si = silicon_technology();
  const TechnologyParams gan = gan_technology();
  std::printf("Device figure of merit (Ron x Qg, lower is better):\n");
  std::printf("  Si : %.1f mOhm*nC\n", si.figure_of_merit() * 1e12);
  std::printf("  GaN: %.1f mOhm*nC  (%.0fx better)\n\n",
              gan.figure_of_merit() * 1e12,
              si.figure_of_merit() / gan.figure_of_merit());

  std::printf("Converter peak efficiency at 1 V output:\n");
  TextTable conv({"Topology", "Si peak eff", "GaN peak eff", "at current"});
  for (TopologyKind kind : all_topologies()) {
    const auto with_si = make_topology(kind, DeviceTechnology::kSilicon);
    const auto with_gan =
        make_topology(kind, DeviceTechnology::kGalliumNitride);
    conv.add_row(
        {to_string(kind),
         format_percent(with_si->loss_model().peak_efficiency(1.0_V)),
         format_percent(with_gan->loss_model().peak_efficiency(1.0_V)),
         format_double(with_gan->loss_model().peak_current().value, 0) +
             " A"});
  }
  std::cout << conv << '\n';

  const PowerDeliverySpec spec = paper_system();
  EvaluationOptions options;
  options.below_die_area_fraction = 1.6;

  std::printf("Architecture-level loss (DSCH final stage):\n");
  TextTable archs({"Architecture", "Si devices", "GaN devices", "GaN gain"});
  for (ArchitectureKind arch : {ArchitectureKind::kA1_InterposerPeriphery,
                                ArchitectureKind::kA2_InterposerBelowDie,
                                ArchitectureKind::kA3_TwoStage12V}) {
    const auto with_si =
        evaluate_architecture(arch, spec, TopologyKind::kDsch,
                              DeviceTechnology::kSilicon, options);
    const auto with_gan =
        evaluate_architecture(arch, spec, TopologyKind::kDsch,
                              DeviceTechnology::kGalliumNitride, options);
    const double si_loss = with_si.loss_fraction(spec.total_power);
    const double gan_loss = with_gan.loss_fraction(spec.total_power);
    archs.add_row({to_string(arch), format_percent(si_loss),
                   format_percent(gan_loss),
                   format_double(100.0 * (si_loss - gan_loss), 1) + " pts"});
  }
  std::cout << archs << '\n';

  std::printf("GaN's FOM advantage converts into 1-3 points of end-to-end "
              "efficiency at\nthe system level — consistent with the "
              "paper's emphasis on co-designing\nthe topologies with "
              "wide-bandgap devices.\n");
  return 0;
}
