// Ablation: Si vs GaN power devices. The paper motivates GaN by its
// order-of-magnitude Ron*Qg figure-of-merit advantage; this sweep shows
// what the device technology is worth at the architecture level, and per
// topology. The architecture-level comparison runs as one SweepRunner
// grid over both device technologies.
#include <cstdio>
#include <iostream>

#include "bench_output.hpp"
#include "vpd/common/table.hpp"
#include "vpd/converters/catalog.hpp"
#include "vpd/devices/technology.hpp"
#include "vpd/sweep/sweep.hpp"

int main(int argc, char** argv) {
  using namespace vpd;
  using namespace vpd::literals;

  bool json = false;
  if (!benchio::parse_json_flag(argc, argv, &json)) return 2;

  const TechnologyParams si = silicon_technology();
  const TechnologyParams gan = gan_technology();

  TextTable conv({"Topology", "Si peak eff", "GaN peak eff", "at current"});
  for (TopologyKind kind : all_topologies()) {
    const auto with_si = make_topology(kind, DeviceTechnology::kSilicon);
    const auto with_gan =
        make_topology(kind, DeviceTechnology::kGalliumNitride);
    conv.add_row(
        {to_string(kind),
         format_percent(with_si->loss_model().peak_efficiency(1.0_V)),
         format_percent(with_gan->loss_model().peak_efficiency(1.0_V)),
         format_double(with_gan->loss_model().peak_current().value, 0) +
             " A"});
  }

  const PowerDeliverySpec spec = paper_system();
  EvaluationOptions options;
  options.below_die_area_fraction = 1.6;

  // Tech is the outermost grid axis: the Si block precedes the GaN block,
  // each in architecture order.
  const std::vector<ArchitectureKind> archs = {
      ArchitectureKind::kA1_InterposerPeriphery,
      ArchitectureKind::kA2_InterposerBelowDie,
      ArchitectureKind::kA3_TwoStage12V};
  const std::vector<SweepPoint> points =
      SweepGridBuilder(options)
          .architectures(archs)
          .topologies({TopologyKind::kDsch})
          .technologies({DeviceTechnology::kSilicon,
                         DeviceTechnology::kGalliumNitride})
          .build();
  const SweepRunner runner(spec);
  const SweepReport report = runner.run(points);

  TextTable table({"Architecture", "Si devices", "GaN devices", "GaN gain"});
  for (std::size_t a = 0; a < archs.size(); ++a) {
    const SweepOutcome& with_si = report.outcomes[a];
    const SweepOutcome& with_gan = report.outcomes[archs.size() + a];
    auto loss_of = [&](const SweepOutcome& o) {
      const auto& e =
          o.entry.evaluation ? o.entry.evaluation : o.entry.extrapolated;
      return e->loss_fraction(spec.total_power);
    };
    const double si_loss = loss_of(with_si);
    const double gan_loss = loss_of(with_gan);
    table.add_row({to_string(archs[a]), format_percent(si_loss),
                   format_percent(gan_loss),
                   format_double(100.0 * (si_loss - gan_loss), 1) + " pts"});
  }

  if (json) {
    benchio::JsonReport out("bench_ablation_gan");
    io::Value fom = io::Value::object();
    fom.set("si_mohm_nc", si.figure_of_merit() * 1e12);
    fom.set("gan_mohm_nc", gan.figure_of_merit() * 1e12);
    fom.set("advantage", si.figure_of_merit() / gan.figure_of_merit());
    out.add("figure_of_merit", std::move(fom));
    out.add_table("converter_peak_efficiency", conv);
    out.add_table("architecture_loss", table);
    io::Value sweep = io::Value::object();
    sweep.set("points", report.outcomes.size());
    sweep.set("threads", report.threads_used);
    sweep.set("wall_seconds", report.wall_seconds);
    out.add("sweep", std::move(sweep));
    out.set_mesh_cache(report.cache_stats);
    out.print();
    return 0;
  }

  std::printf("=== Ablation: Si vs GaN power transistors ===\n\n");
  std::printf("Device figure of merit (Ron x Qg, lower is better):\n");
  std::printf("  Si : %.1f mOhm*nC\n", si.figure_of_merit() * 1e12);
  std::printf("  GaN: %.1f mOhm*nC  (%.0fx better)\n\n",
              gan.figure_of_merit() * 1e12,
              si.figure_of_merit() / gan.figure_of_merit());
  std::printf("Converter peak efficiency at 1 V output:\n");
  std::cout << conv << '\n';
  std::printf("Architecture-level loss (DSCH final stage):\n");
  std::cout << table << '\n';

  std::printf(
      "Sweep engine: %zu points on %zu threads in %.1f ms; mesh cache "
      "%zu hits / %zu misses.\n\n",
      report.outcomes.size(), report.threads_used,
      1e3 * report.wall_seconds, report.cache_stats.hits,
      report.cache_stats.misses);

  std::printf("GaN's FOM advantage converts into 1-3 points of end-to-end "
              "efficiency at\nthe system level — consistent with the "
              "paper's emphasis on co-designing\nthe topologies with "
              "wide-bandgap devices.\n");
  return 0;
}
