// Scale-out saturation study: the same duplicate-free request stream
// pushed through an in-process shard fleet (N independent
// EvaluationServices routed by net::shard_for_key on the canonical
// request key — exactly the router's placement rule) at fleet sizes 1..N.
//
//  * closed loop — C client threads each issue their next request only
//    after the previous response arrives. Reports sustained RPS and the
//    p50/p99 service latency from the fleet-merged serve.latency_seconds
//    histogram (obs::Snapshot::merge, the router's fleet aggregation).
//  * open loop — bursts of B requests submitted without waiting, for B
//    from well under the per-shard queue capacity to far past it, so the
//    table shows the reject-not-block knee: the accepted fraction is 1.0
//    until the queue fills, then rejections grow instead of latency.
//
// Every routed response is status-checked (ok); the point of the bench is
// that sharding multiplies throughput without changing any answer.
// `--json` emits the same numbers through vpd::io.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_output.hpp"
#include "vpd/common/table.hpp"
#include "vpd/io/schema.hpp"
#include "vpd/net/protocol.hpp"
#include "vpd/obs/registry.hpp"
#include "vpd/serve/service.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vpd;

  bool json = false;
  if (!benchio::parse_json_flag(argc, argv, &json)) return 2;

  // Distinct cheap design points: one shared mesh geometry (the 31-node
  // grid is assembled once per shard), distinct canonical keys (the
  // total-power sweep defeats coalescing and the result LRU), so every
  // request exercises the full submit→evaluate→respond path.
  constexpr int kRequests = 192;
  std::vector<io::EvaluationRequest> workload;
  std::vector<std::string> keys;
  workload.reserve(kRequests);
  keys.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    io::EvaluationRequest request;
    request.architecture = ArchitectureKind::kA1_InterposerPeriphery;
    request.topology = TopologyKind::kDsch;
    request.spec.total_power = Power{900.0 + double(i)};
    request.options.mesh_nodes = 31;
    workload.push_back(request);
    keys.push_back(io::canonical_request_key(request));
  }

  constexpr std::size_t kThreadsPerShard = 2;
  constexpr std::size_t kQueueCapacity = 16;
  // Enough closed-loop clients to keep even the largest fleet busy — the
  // sweep varies shard count, so the offered concurrency must not be the
  // bottleneck.
  constexpr std::size_t kClients = 16;
  const std::vector<std::size_t> fleet_sizes = {1, 2, 4};

  auto make_fleet = [&](std::size_t shards) {
    std::vector<std::unique_ptr<serve::EvaluationService>> fleet;
    for (std::size_t s = 0; s < shards; ++s) {
      serve::ServiceConfig config;
      config.threads = kThreadsPerShard;
      config.queue_capacity = kQueueCapacity;
      fleet.push_back(std::make_unique<serve::EvaluationService>(config));
    }
    return fleet;
  };

  // --- Closed loop: 1 vs N shards -------------------------------------------

  TextTable closed({"shards", "clients", "requests", "seconds", "rps",
                    "p50_ms", "p99_ms", "speedup"});
  io::Value closed_json = io::Value::array();
  double base_rps = 0.0;
  for (std::size_t shards : fleet_sizes) {
    auto fleet = make_fleet(shards);
    std::atomic<int> next{0};
    std::atomic<int> not_ok{0};
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&] {
        for (;;) {
          const int i = next.fetch_add(1);
          if (i >= kRequests) return;
          const std::size_t shard = net::shard_for_key(keys[i], shards);
          const serve::ServiceResponse response =
              fleet[shard]->evaluate(workload[i]);
          // The power sweep crosses the paper's exclusion rule for a few
          // points; excluded is still a full, correct evaluation.
          if (response.status != serve::ResponseStatus::kOk &&
              response.status != serve::ResponseStatus::kExcluded) {
            ++not_ok;
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
    const double seconds = seconds_since(start);
    if (not_ok.load() != 0) {
      std::fprintf(stderr,
                   "bench_saturation: %d closed-loop responses not ok\n",
                   not_ok.load());
      return 1;
    }

    // The router's fleet rule: merge per-shard snapshots, then read the
    // percentiles off the combined latency histogram.
    obs::Snapshot merged;
    for (const auto& service : fleet) {
      merged.merge(service->registry().snapshot());
    }
    const obs::HistogramData* latency =
        merged.histogram("serve.latency_seconds");
    const double p50 = latency ? latency->quantile(0.50) : 0.0;
    const double p99 = latency ? latency->quantile(0.99) : 0.0;
    const double rps = double(kRequests) / seconds;
    if (shards == 1) base_rps = rps;

    closed.add_row({std::to_string(shards), std::to_string(kClients),
                    std::to_string(kRequests), format_double(seconds, 3),
                    format_double(rps, 1), format_double(p50 * 1e3, 2),
                    format_double(p99 * 1e3, 2),
                    format_double(rps / base_rps, 2)});
    io::Value row = io::Value::object();
    row.set("shards", double(shards));
    row.set("clients", double(kClients));
    row.set("requests", double(kRequests));
    row.set("seconds", seconds);
    row.set("rps", rps);
    row.set("p50_seconds", p50);
    row.set("p99_seconds", p99);
    row.set("speedup_vs_one_shard", rps / base_rps);
    closed_json.push_back(std::move(row));
  }

  // --- Open loop: bursts across the backpressure knee -----------------------

  // One fresh 2-shard fleet per burst size; each burst submits without
  // waiting, then resolves every future and counts rejections. The knee
  // sits at shards * queue_capacity in-flight requests.
  constexpr std::size_t kOpenShards = 2;
  TextTable open({"burst", "capacity", "accepted", "rejected",
                  "accepted_fraction"});
  io::Value open_json = io::Value::array();
  const std::size_t fleet_capacity = kOpenShards * kQueueCapacity;
  for (std::size_t burst :
       {fleet_capacity / 2, fleet_capacity, 2 * fleet_capacity,
        4 * fleet_capacity}) {
    auto fleet = make_fleet(kOpenShards);
    std::vector<std::shared_future<serve::ServiceResponse>> futures;
    futures.reserve(burst);
    for (std::size_t i = 0; i < burst; ++i) {
      const std::size_t request_index = i % std::size_t(kRequests);
      // Make every burst entry a distinct key so nothing coalesces.
      io::EvaluationRequest request = workload[request_index];
      request.spec.total_power =
          Power{2000.0 + double(i) + 0.5 * double(request_index)};
      const std::size_t shard = net::shard_for_key(
          io::canonical_request_key(request), kOpenShards);
      futures.push_back(fleet[shard]->submit(request));
    }
    std::size_t accepted = 0;
    std::size_t rejected = 0;
    for (auto& future : futures) {
      const serve::ServiceResponse response = future.get();
      if (response.status == serve::ResponseStatus::kRejected) {
        ++rejected;
      } else {
        ++accepted;
      }
    }
    const double fraction = double(accepted) / double(burst);
    open.add_row({std::to_string(burst), std::to_string(fleet_capacity),
                  std::to_string(accepted), std::to_string(rejected),
                  format_double(fraction, 3)});
    io::Value row = io::Value::object();
    row.set("burst", double(burst));
    row.set("fleet_capacity", double(fleet_capacity));
    row.set("accepted", double(accepted));
    row.set("rejected", double(rejected));
    row.set("accepted_fraction", fraction);
    open_json.push_back(std::move(row));
  }

  if (json) {
    benchio::JsonReport report("bench_saturation");
    report.add("closed_loop", std::move(closed_json));
    report.add("open_loop", std::move(open_json));
    report.print();
    return 0;
  }

  std::printf("Closed-loop saturation: %d distinct requests, %zu client "
              "threads,\n%zu worker threads and a %zu-deep queue per "
              "shard.\n\n",
              kRequests, kClients, kThreadsPerShard, kQueueCapacity);
  std::printf("%s", closed.to_string().c_str());
  std::printf("\nOpen-loop bursts against a %zu-shard fleet (knee at %zu "
              "in-flight):\n\n",
              kOpenShards, fleet_capacity);
  std::printf("%s", open.to_string().c_str());
  std::printf("\nPast the knee the fleet rejects instead of queueing — "
              "p99 stays bounded\nand the client decides when to "
              "resubmit.\n");
  return 0;
}
