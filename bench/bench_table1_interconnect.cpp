// Table I reproduction: typical characteristics of vertical interconnect
// across the packaging hierarchy, plus the derived quantities the paper's
// analysis uses (per-via resistance, available counts, per-via current
// limits used for utilization).
#include <cstdio>
#include <iostream>

#include "bench_output.hpp"
#include "vpd/common/table.hpp"
#include "vpd/package/interconnect.hpp"

int main(int argc, char** argv) {
  using namespace vpd;

  bool json = false;
  if (!benchio::parse_json_flag(argc, argv, &json)) return 2;

  TextTable published({"Packaging level", "Type", "Material",
                       "Diameter (um)", "Cross-area (um^2)", "Height (um)",
                       "Pitch (um)", "Platform (mm^2)"});
  for (const auto& s : table_one()) {
    published.add_row(
        {to_string(s.level), s.type, s.material,
         s.diameter.value > 0.0 ? format_double(as_um(s.diameter), 0) : "-",
         format_double(as_um2(s.cross_section), 0),
         format_double(as_um(s.height), 0),
         format_double(as_um(s.pitch), 0),
         format_double(as_mm2(s.platform_area), 0)});
  }

  TextTable derived({"Type", "R per via", "Available", "I limit/via",
                     "Power-alloc cap"});
  for (const auto& s : table_one()) {
    derived.add_row({s.type, format_si(s.per_via().value) + "Ohm",
                     std::to_string(s.available_count()),
                     format_si(s.max_current_per_via.value) + "A",
                     format_percent(s.max_power_fraction, 0)});
  }

  if (json) {
    benchio::JsonReport report("bench_table1_interconnect");
    report.add_table("published", published);
    report.add_table("derived", derived);
    report.print();
    return 0;
  }

  std::printf("=== Table I: vertical interconnect characteristics ===\n\n");
  std::cout << published << '\n';
  std::printf("Derived quantities (library models):\n");
  std::cout << derived << '\n';
  std::printf("Paper-vs-library check: published geometry columns match "
              "Table I verbatim;\nper-via limits are calibrated to "
              "reproduce Section IV utilization (see\nEXPERIMENTS.md).\n");
  return 0;
}
