// Section IV utilization reproduction: the vertical-interconnect budget
// of the reference vs the vertical architectures.
//
// Paper claims:
//  * with 60% / 85% BGA / C4 allocation caps, A0 needs a ~1200 mm^2 die
//    to sink 1 kA, capping power density at ~0.8 A/mm^2;
//  * vertical delivery feeds a 500 mm^2 die (2 A/mm^2) using ~1% of BGAs,
//    ~2% of C4s, ~10% of TSVs, and <20% of the advanced Cu-Cu pads.
#include <cstdio>
#include <iostream>

#include "bench_output.hpp"
#include "vpd/common/table.hpp"
#include "vpd/core/spec.hpp"
#include "vpd/package/utilization.hpp"

int main(int argc, char** argv) {
  using namespace vpd;
  using namespace vpd::literals;

  bool json = false;
  if (!benchio::parse_json_flag(argc, argv, &json)) return 2;

  const PowerDeliverySpec spec = paper_system();
  const Current i48 = spec.input_current(Power{1150.0});
  const Current i_die = spec.die_current();

  const auto vpd_rows = utilization_report({
      {InterconnectLevel::kPcbToPackage, i48, std::nullopt},
      {InterconnectLevel::kPackageToInterposer, i48, std::nullopt},
      {InterconnectLevel::kThroughInterposer, i_die, std::nullopt},
      {InterconnectLevel::kInterposerToDieBump, i_die, std::nullopt},
      {InterconnectLevel::kInterposerToDiePad, i_die, std::nullopt},
  });
  TextTable t({"Level", "Current", "Used/net", "Available", "Fraction",
               "Paper"});
  const char* paper_claim[] = {"~1%", "~2%", "~10%", "<20%", "<20%"};
  int i = 0;
  for (const UtilizationRow& r : vpd_rows) {
    t.add_row({r.type, format_double(r.current.value, 1) + " A",
               std::to_string(r.used_per_net), std::to_string(r.available),
               format_percent(r.fraction), paper_claim[i++]});
  }

  const auto c4 = interconnect_spec(InterconnectLevel::kPackageToInterposer);
  const auto a0_row = utilization_for(c4, i_die, 500.0_mm2);
  const Area min_die_area = min_area_for_current(c4, i_die);

  if (json) {
    benchio::JsonReport report("bench_utilization");
    report.add_table("vertical_delivery", t);
    io::Value a0 = io::Value::object();
    a0.set("c4_used_per_net", a0_row.used_per_net);
    a0.set("c4_available", a0_row.available);
    a0.set("c4_fraction", a0_row.fraction);
    a0.set("c4_cap_fraction", c4.max_power_fraction);
    a0.set("feasible", a0_row.fraction <= c4.max_power_fraction);
    a0.set("min_die_mm2", as_mm2(min_die_area));
    a0.set("implied_density_a_per_mm2", i_die.value / as_mm2(min_die_area));
    report.add("a0_reference", std::move(a0));
    report.add("vpd_density_a_per_mm2",
               io::Value(as_A_per_mm2(spec.current_density())));
    report.print();
    return 0;
  }

  std::printf("=== Section IV: vertical interconnect utilization ===\n\n");
  std::printf("Vertical power delivery (conversion on interposer, 48 V "
              "feed):\n");
  std::cout << t << '\n';

  std::printf("Reference architecture A0 (1 kA crosses every level):\n");
  std::printf("  C4 demand over the 500 mm^2 die shadow: %zu of %zu "
              "(%.0f%%) -> exceeds the %.0f%% cap: INFEASIBLE\n",
              a0_row.used_per_net, a0_row.available,
              100.0 * a0_row.fraction, 100.0 * c4.max_power_fraction);
  std::printf("  minimum feasible die: %.0f mm^2 (paper: ~1200 mm^2)\n",
              as_mm2(min_die_area));
  std::printf("  implied power density: %.2f A/mm^2 (paper: 0.8 A/mm^2)\n",
              i_die.value / as_mm2(min_die_area));
  std::printf("\nVertical delivery sustains %.1f A/mm^2 on the 500 mm^2 "
              "die within every cap.\n",
              as_A_per_mm2(spec.current_density()));
  return 0;
}
