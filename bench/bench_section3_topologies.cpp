// Section III reproduction: why direct buck conversion loses at 48V-to-1V
// and SC-derived topologies win. The paper's argument: a 48V-to-1V buck
// needs ~2% duty (ultra-low on-time) and full-input-voltage switch
// stress; dividing the input first (series capacitor, flying capacitors,
// or the DSCH/DPMIH/3LHD hybrids) relaxes both.
#include <cstdio>
#include <iostream>

#include "bench_output.hpp"
#include "vpd/common/table.hpp"
#include "vpd/converters/buck.hpp"
#include "vpd/converters/catalog.hpp"
#include "vpd/converters/fcml.hpp"
#include "vpd/converters/series_cap_buck.hpp"

int main(int argc, char** argv) {
  using namespace vpd;
  using namespace vpd::literals;

  bool json = false;
  if (!benchio::parse_json_flag(argc, argv, &json)) return 2;

  TextTable t({"Topology", "Scheme", "Duty/on-time", "Switch stress",
               "Switches", "Peak eff", "at current", "Eff @ 20 A"});

  auto add_converter = [&](const Converter& c, const std::string& duty,
                           const std::string& stress) {
    const double peak = c.loss_model().peak_efficiency(c.spec().v_out);
    t.add_row({c.name(),
               format_double(c.spec().v_in.value, 0) + "V-to-" +
                   format_double(c.spec().v_out.value, 0) + "V",
               duty, stress, std::to_string(c.spec().switch_count),
               format_percent(peak),
               format_double(c.loss_model().peak_current().value, 1) + " A",
               c.supports(20.0_A)
                   ? format_percent(c.efficiency(20.0_A))
                   : "over rating"});
  };

  // Direct synchronous buck, 48 -> 1: the paper's 2% duty case.
  {
    BuckDesignInputs in;
    in.name = "sync-buck";
    in.device_tech = gan_technology();
    in.inductor_tech = embedded_package_inductor_technology();
    in.capacitor_tech = deep_trench_technology();
    in.v_in = 48.0_V;
    in.v_out = 1.0_V;
    in.rated_current = 20.0_A;
    in.phases = 1;
    in.f_sw = 1.0_MHz;
    const SynchronousBuck buck(in);
    add_converter(buck, format_percent(buck.duty()), "48 V");
  }
  // Series-capacitor buck: halved stress, doubled duty.
  {
    SeriesCapBuckInputs in;
    in.device_tech = gan_technology();
    in.inductor_tech = embedded_package_inductor_technology();
    in.capacitor_tech = mlcc_technology();
    in.v_in = 48.0_V;
    in.v_out = 1.0_V;
    in.rated_current = 20.0_A;
    in.f_sw = 1.0_MHz;
    const SeriesCapacitorBuck scb(in);
    add_converter(scb, format_percent(scb.effective_duty()), "24 V");
  }
  // 5-level FCML at the [7] 48V:2V point.
  {
    FcmlInputs in;
    in.device_tech = gan_technology();
    in.inductor_tech = embedded_package_inductor_technology();
    in.capacitor_tech = mlcc_technology();
    in.v_in = 48.0_V;
    in.v_out = 2.0_V;
    in.levels = 5;
    in.rated_current = 20.0_A;
    in.f_sw = 1.0_MHz;
    const FlyingCapMultilevel fcml(in);
    add_converter(fcml, "4 cells", "12 V");
  }
  // The paper's three hybrids (published-datapoint models, GaN).
  for (TopologyKind kind : all_topologies()) {
    const auto c = make_topology(kind);
    const char* duty = kind == TopologyKind::kDickson
                           ? "20% (3LHD raises on-time 2%->20%)"
                           : "regulated";
    add_converter(*c, duty, kind == TopologyKind::kDickson ? "4.8-24 V"
                                                           : "divided");
  }

  if (json) {
    benchio::JsonReport report("bench_section3_topologies");
    report.add_table("survey", t);
    report.print();
    return 0;
  }

  std::printf("=== Section III: topology survey for 48V-class conversion "
              "===\n\n");
  std::printf("All physically-designed entries: GaN devices, embedded "
              "package inductors,\n20 A rating, 1 MHz, matched 1%% "
              "conduction budget.\n\n");
  std::cout << t << '\n';

  std::printf(
      "Reading (matches Section III):\n"
      " * the direct buck pays full 48 V stress at ~2%% duty — worst "
      "peak efficiency\n   of the physically-designed entries;\n"
      " * each division of the input (SCB /2, FCML /4) buys back "
      "efficiency;\n"
      " * the published hybrids (DSCH/DPMIH/3LHD) sit at 90-94%% by "
      "combining SC\n   division with soft charging — the basis of the "
      "paper's architecture study.\n");
  return 0;
}
