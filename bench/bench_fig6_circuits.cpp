// Fig. 6 reproduction: the two canonical converter circuits — (a) the
// SMPS buck and (b) the switched-capacitor series-parallel charge pump —
// simulated to periodic steady state on the library's MNA engine, with
// the measurements a bench characterization would report.
#include <cstdio>
#include <iostream>

#include "bench_output.hpp"
#include "vpd/circuit/transient.hpp"
#include "vpd/common/table.hpp"
#include "vpd/converters/netlist_builder.hpp"
#include "vpd/converters/switched_capacitor.hpp"
#include "vpd/devices/technology.hpp"
#include "vpd/passives/capacitor.hpp"

namespace {

vpd::TransientResult run(const vpd::SimulatableConverter& sim,
                         double cycles) {
  vpd::TransientOptions opts;
  opts.t_stop = vpd::Seconds{cycles * sim.switching_period.value};
  opts.dt = vpd::Seconds{sim.switching_period.value / 500.0};
  opts.controller = sim.controller;
  return vpd::simulate(sim.netlist, opts);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vpd;
  using namespace vpd::literals;

  bool json = false;
  if (!benchio::parse_json_flag(argc, argv, &json)) return 2;

  // --- (a) Buck across duty cycles --------------------------------------------
  TextTable buck_table({"Duty", "Vout target", "Vout sim", "IL ripple pp",
                        "Vout ripple pp"});
  for (double duty : {1.0 / 12.0, 0.25, 0.5, 0.75}) {
    BuckCircuitParams p;
    p.v_in = 12.0_V;
    p.duty = duty;
    p.f_sw = 1.0_MHz;
    p.inductance = 4.7_uH;
    p.output_capacitance = 47.0_uF;
    p.load = Resistance{0.5};
    const SimulatableConverter sim = build_buck_circuit(p);
    const TransientResult r = run(sim, 40.0);
    const double window = 8.0 * sim.switching_period.value;
    const double ripple_window = 2.0 * sim.switching_period.value;
    buck_table.add_row(
        {format_double(duty, 3),
         format_double(12.0 * duty, 2) + " V",
         format_double(r.voltage(sim.output_node).tail(window).average(),
                       3) +
             " V",
         format_double(r.current("L1").tail(ripple_window).peak_to_peak(),
                       3) +
             " A",
         format_double(1e3 * r.voltage(sim.output_node)
                                 .tail(ripple_window)
                                 .peak_to_peak(),
                       1) +
             " mV"});
  }

  // --- (b) SC charge pump across ratios ----------------------------------------
  TextTable sc_table({"Ratio", "Vin", "Ideal Vout", "Sim Vout",
                      "R_out sim", "R_out model"});
  for (unsigned ratio : {2u, 3u, 4u}) {
    ScCircuitParams p;
    p.v_in = Voltage{4.0 * ratio};
    p.ratio = ratio;
    p.f_sw = 1.0_MHz;
    p.fly_capacitance = 10.0_uF;
    p.switch_on_resistance = 10.0_mOhm;
    p.output_capacitance = 4.7_uF;
    p.load = 1.0_Ohm;
    const SimulatableConverter sim = build_series_parallel_sc_circuit(p);
    const TransientResult r = run(sim, 80.0);
    const double window = 10.0 * sim.switching_period.value;
    const double v_avg =
        r.voltage(sim.output_node).tail(window).average();
    const double i_avg =
        r.current(sim.load_element).tail(window).average();
    const double r_out_sim = (4.0 - v_avg) / i_avg;

    ScDesignInputs model;
    model.device_tech = gan_technology();
    model.capacitor_tech = mlcc_technology();
    model.v_in = p.v_in;
    model.ratio = ratio;
    model.rated_current = 10.0_A;
    model.f_sw = p.f_sw;
    model.fly_capacitance = p.fly_capacitance;
    model.switch_resistance = p.switch_on_resistance;
    const SeriesParallelSc analytic(model);

    sc_table.add_row({std::to_string(ratio) + ":1",
                      format_double(p.v_in.value, 0) + " V", "4.00 V",
                      format_double(v_avg, 3) + " V",
                      format_double(1e3 * r_out_sim, 1) + " mOhm",
                      format_double(
                          1e3 * analytic.output_resistance().value, 1) +
                          " mOhm"});
  }

  if (json) {
    benchio::JsonReport report("bench_fig6_circuits");
    report.add_table("buck", buck_table);
    report.add_table("sc_charge_pump", sc_table);
    report.print();
    return 0;
  }

  std::printf("=== Figure 6: SMPS buck and SC charge pump operation ===\n\n");
  std::printf("(a) Synchronous buck, Vin = 12 V, f = 1 MHz, L = 4.7 uH, "
              "load 0.5 Ohm:\n");
  std::cout << buck_table << '\n';
  std::printf("The 48V-to-1V case would need ~2%% duty — the ultra-low "
              "on-time limitation\nthe paper cites for direct high-ratio "
              "buck conversion.\n\n");
  std::printf("(b) Series-parallel SC charge pump, f = 1 MHz, Cfly = 10 uF"
              ", Rsw = 10 mOhm:\n");
  std::cout << sc_table << '\n';
  std::printf("The simulated droop tracks the Seeman-Sanders R_out model "
              "across ratios,\nvalidating the analytic SC converter "
              "characterization used in Fig. 7.\n");
  return 0;
}
