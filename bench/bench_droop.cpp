// Extension bench: dynamic (droop) comparison of the architectures using
// the reduced transient models derived from the Fig. 7 evaluations. The
// paper characterizes dc loss; this is the corresponding transient story:
// the same vertical proximity that removes I^2 R also shrinks the supply
// loop's inductance and with it the first-droop excursion.
#include <cstdio>
#include <iostream>

#include "bench_output.hpp"
#include "vpd/arch/evaluator.hpp"
#include "vpd/arch/transient_model.hpp"
#include "vpd/common/table.hpp"
#include "vpd/package/mesh_cache.hpp"

int main(int argc, char** argv) {
  using namespace vpd;

  bool json = false;
  if (!benchio::parse_json_flag(argc, argv, &json)) return 2;

  const PowerDeliverySpec spec = paper_system();
  MeshSolveCache cache;
  EvaluationOptions options;
  options.below_die_area_fraction = 1.6;
  options.mesh_cache = &cache;

  const SolverCounters solver_before = solver_counters();
  TextTable t({"Architecture", "R_eff", "L_loop", "Decap", "Worst VPOL",
               "Droop", "Recovery"});
  for (ArchitectureKind arch : all_architectures()) {
    const ArchitectureEvaluation eval = evaluate_architecture(
        arch, spec, TopologyKind::kDsch, DeviceTechnology::kGalliumNitride,
        options);
    const ReducedPdnModel model = build_reduced_pdn(spec, eval);
    const DroopResult droop = simulate_load_step(
        model, spec, Current{200.0}, Current{300.0}, Seconds{100e-9});
    t.add_row({to_string(arch),
               format_double(1e3 * model.effective_resistance.value, 3) +
                   " mOhm",
               format_si(model.loop_inductance.value) + "H",
               format_si(model.decap.value) + "F",
               format_double(droop.worst_voltage.value, 3) + " V",
               format_double(1e3 * droop.droop.value, 1) + " mV",
               format_si(droop.recovery_time.value) + "s"});
  }

  if (json) {
    benchio::JsonReport report("bench_droop");
    report.add_table("droop", t);
    report.set_mesh_cache(cache.stats());
    report.set_solver(solver_counters() - solver_before);
    report.print();
    return 0;
  }

  std::printf("=== Extension: load-step droop per architecture ===\n\n");
  std::printf("Step: 200 A -> 500 A in 100 ns on the 1 V rail (reduced "
              "models from the\nFig. 7 evaluations; default decap "
              "banks).\n\n");
  std::cout << t << '\n';

  std::printf("Reading: vertical delivery improves the transient story by "
              "the same\nmechanism as the dc one — the A0 board loop's "
              "10 nH dominates its droop even\nbehind 2000 uF of bulk "
              "decap, while the interposer architectures ride out\nthe "
              "same step within tens of millivolts on their local bank.\n");
  return 0;
}
