// Ablation: switching frequency of an integrated 12V-to-1V buck stage
// (the physically-designed converter model). Shows the tradeoff the paper
// describes in Section III: integrated passives force higher switching
// frequencies, whose losses grow linearly, against passive size/ripple,
// which shrinks as 1/f.
#include <cstdio>
#include <iostream>

#include "bench_output.hpp"
#include "vpd/common/table.hpp"
#include "vpd/converters/buck.hpp"

int main(int argc, char** argv) {
  using namespace vpd;
  using namespace vpd::literals;

  bool json = false;
  if (!benchio::parse_json_flag(argc, argv, &json)) return 2;

  TextTable t({"f_sw", "L/phase", "L footprint", "k0 (fixed loss)",
               "Loss @ 40 A", "Peak eff", "VR area"});
  for (double mhz : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    BuckDesignInputs in;
    in.device_tech = gan_technology();
    in.inductor_tech = embedded_package_inductor_technology();
    in.capacitor_tech = deep_trench_technology();
    in.v_in = 12.0_V;
    in.v_out = 1.0_V;
    in.rated_current = 40.0_A;
    in.phases = 4;
    in.f_sw = Frequency{mhz * 1e6};
    const SynchronousBuck buck(in);
    t.add_row({format_double(mhz, 1) + " MHz",
               format_si(buck.inductor().inductance().value) + "H",
               format_double(as_mm2(buck.inductor().footprint()), 1) +
                   " mm^2",
               format_double(buck.loss_model().k0(), 2) + " W",
               format_double(buck.loss(40.0_A).value, 2) + " W",
               format_percent(
                   buck.loss_model().peak_efficiency(in.v_out)),
               format_double(as_mm2(buck.spec().area), 1) + " mm^2"});
  }

  if (json) {
    benchio::JsonReport report("bench_ablation_fsw");
    report.add_table("sweep", t);
    report.print();
    return 0;
  }

  std::printf("=== Ablation: switching frequency of a 12V-to-1V IVR buck "
              "===\n\n");
  std::printf("4-phase GaN buck, 40 A rated, embedded package inductors, "
              "deep-trench caps.\n\n");
  std::cout << t << '\n';

  std::printf(
      "Reading: inductance (and with it the inductance-limited footprint) "
      "falls\nas 1/f, but the embedded inductor is current-density limited "
      "[14] below a\nfew MHz, so area flattens while switching loss keeps "
      "climbing — the paper's\nargument for why near-POL converters "
      "cannot simply out-run their passives\nwith frequency.\n");
  return 0;
}
