// Fig. 2 reproduction: current demand in high-performance systems vs the
// packaging feature (vertical-interconnect pitch) that sets PPDN
// resistance. The paper's point: current demand grew by orders of
// magnitude while the packaging feature shrank only ~4x, so advanced
// packaging alone cannot absorb the I^2 R problem.
#include <cstdio>
#include <iostream>

#include "bench_output.hpp"
#include "vpd/common/table.hpp"
#include "vpd/core/trends.hpp"
#include "vpd/package/interconnect.hpp"

int main(int argc, char** argv) {
  using namespace vpd;

  bool json = false;
  if (!benchio::parse_json_flag(argc, argv, &json)) return 2;

  const auto current = current_demand_trend();
  const auto feature = packaging_feature_trend();

  TextTable t({"Year", "Die current (A)", "Packaging feature (um)",
               "PPDN R trend (norm.)"});
  for (std::size_t i = 0; i < current.size(); ++i) {
    // PPDN resistance tracks 1/(vias per area) ~ pitch^2, normalized to
    // the first year.
    const double r_norm = (feature[i].value * feature[i].value) /
                          (feature[0].value * feature[0].value);
    t.add_row({std::to_string(current[i].year),
               format_double(current[i].value, 0),
               format_double(feature[i].value, 0),
               format_double(r_norm, 2)});
  }

  if (json) {
    benchio::JsonReport report("bench_fig2_scaling");
    report.add_table("trend", t);
    report.add("current_demand_growth", io::Value(trend_growth(current)));
    report.add("feature_shrink", io::Value(1.0 / trend_growth(feature)));
    const double i_growth = trend_growth(current);
    report.add("i2r_growth_at_fixed_r", io::Value(i_growth * i_growth));
    io::Value vias = io::Value::array();
    for (const auto& spec : table_one()) {
      io::Value v = io::Value::object();
      v.set("type", spec.type);
      v.set("per_via_mohm", as_mOhm(spec.per_via()));
      v.set("available", spec.available_count());
      vias.push_back(std::move(v));
    }
    report.add("per_via_resistance", std::move(vias));
    report.print();
    return 0;
  }

  std::printf("=== Figure 2: current demand vs packaging feature ===\n\n");
  std::cout << t << '\n';

  std::printf("Growth over the covered period:\n");
  std::printf("  current demand : %.0fx   [orders of magnitude]\n",
              trend_growth(current));
  std::printf("  feature shrink : %.1fx   [~4x]\n",
              1.0 / trend_growth(feature));

  // The quadratic penalty the paper highlights: loss at fixed PPDN
  // resistance grows with I^2.
  const double i_ratio = trend_growth(current);
  std::printf("  I^2 R loss growth at fixed PPDN R: %.0fx\n",
              i_ratio * i_ratio);

  // Cross-reference Table I: today's interconnect menu.
  std::printf("\nPer-via resistance of today's vertical interconnect "
              "(Table I geometry):\n");
  for (const auto& spec : table_one()) {
    std::printf("  %-8s %6.2f mOhm/via, %9zu available\n",
                spec.type.c_str(), as_mOhm(spec.per_via()),
                spec.available_count());
  }
  return 0;
}
