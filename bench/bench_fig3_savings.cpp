// Fig. 3 reproduction: the power-savings illustration of moving voltage
// regulation from the PCB toward the die. The figure contrasts the
// traditional PCB-level conversion with regulation on the interposer; we
// sweep the conversion point across the packaging hierarchy and report
// the PPDN loss of each placement for the 1 kW / 1 kA system.
#include <cstdio>
#include <iostream>

#include "bench_output.hpp"
#include "vpd/common/table.hpp"
#include "vpd/core/spec.hpp"
#include "vpd/package/interconnect.hpp"
#include "vpd/package/layers.hpp"
#include "vpd/package/stackup.hpp"

int main(int argc, char** argv) {
  using namespace vpd;

  bool json = false;
  if (!benchio::parse_json_flag(argc, argv, &json)) return 2;

  const PowerDeliverySpec spec = paper_system();
  const Current i_die = spec.die_current();       // 1 kA at 1 V
  const Current i48 = spec.input_current(Power{1150.0});  // ~24 A at 48 V

  struct Location {
    const char* name;
    int convert_after;  // segments 0..n-1 upstream of the converter
  };
  // Path: PCB lateral -> BGA -> pkg lateral -> C4 -> interposer lateral
  //       -> TSV -> u-bump.
  const Location locations[] = {
      {"PCB (A0, traditional)", 0},
      {"package (after BGAs)", 2},
      {"interposer (A1/A2, proposed)", 5},
  };

  TextTable t({"Conversion at", "PPDN loss", "of 1 kW", "48V-side drop",
               "1V-side drop"});
  for (const Location& loc : locations) {
    PowerPath path;
    int index = 0;
    auto current_for = [&](int i) {
      return i < loc.convert_after ? i48 : i_die;
    };
    path.add_lateral(pcb_lateral_segment(), current_for(index++));
    path.add_vertical(interconnect_spec(InterconnectLevel::kPcbToPackage),
                      current_for(index++));
    path.add_lateral(package_lateral_segment(), current_for(index++));
    path.add_vertical(
        interconnect_spec(InterconnectLevel::kPackageToInterposer),
        current_for(index++));
    path.add_lateral(interposer_lateral_segment(), current_for(index++));
    path.add_vertical(
        interconnect_spec(InterconnectLevel::kThroughInterposer),
        current_for(index++));
    path.add_vertical(
        interconnect_spec(InterconnectLevel::kInterposerToDieBump),
        current_for(index++));

    double drop48 = 0.0, drop1 = 0.0;
    int k = 0;
    for (const PathStage& s : path.stages()) {
      if (k++ < loc.convert_after)
        drop48 += s.drop().value;
      else
        drop1 += s.drop().value;
    }
    t.add_row({loc.name,
               format_double(path.total_loss().value, 1) + " W",
               format_percent(path.total_loss().value / 1000.0),
               format_double(1e3 * drop48, 2) + " mV",
               format_double(1e3 * drop1, 1) + " mV"});
  }

  if (json) {
    benchio::JsonReport report("bench_fig3_savings");
    report.add("input_current_a", io::Value(i48.value));
    report.add("die_current_a", io::Value(i_die.value));
    report.add_table("placements", t);
    report.print();
    return 0;
  }

  std::printf("=== Figure 3: savings from conversion closer to the die ===\n");
  std::printf("1 kW system; segments upstream of the converter carry %.0f A"
              " at 48 V,\nsegments downstream carry %.0f A at 1 V.\n\n",
              i48.value, i_die.value);
  std::cout << t << '\n';

  std::printf("Reading: every lateral segment moved to the 48 V side of "
              "the converter\ncarries 48x less current and dissipates "
              "~2300x less power — the paper's\nFig. 3 message that "
              "interposer-level regulation eliminates nearly all\n"
              "PPDN loss.\n");
  return 0;
}
