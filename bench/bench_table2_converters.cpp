// Table II reproduction: characteristics of the state-of-the-art compact
// 48V-to-1V converters (DPMIH, DSCH, 3LHD), the calibrated model curves,
// and the VR placement counts for the 500 mm^2 / 1 kA system — published
// values side by side with the library's re-derivation.
#include <cstdio>
#include <iostream>

#include "bench_output.hpp"
#include "vpd/arch/placement.hpp"
#include "vpd/arch/vr_allocation.hpp"
#include "vpd/common/table.hpp"
#include "vpd/converters/catalog.hpp"
#include "vpd/core/spec.hpp"

int main(int argc, char** argv) {
  using namespace vpd;

  bool json = false;
  if (!benchio::parse_json_flag(argc, argv, &json)) return 2;

  TextTable published({"", "DPMIH", "DSCH", "3LHD"});
  const auto rows = published_table_two();
  auto col = [&](auto getter) {
    std::vector<std::string> cells{""};
    for (const auto& r : rows) cells.push_back(getter(r));
    return cells;
  };
  auto add = [&](const std::string& label, auto getter) {
    std::vector<std::string> cells{label};
    for (const auto& r : rows) cells.push_back(getter(r));
    published.add_row(cells);
  };
  (void)col;
  add("Conversion scheme",
      [](const TableTwoRow& r) { return r.conversion_scheme; });
  add("Max load current", [](const TableTwoRow& r) {
    return format_double(r.max_load.value, 0) + " A";
  });
  add("Peak efficiency", [](const TableTwoRow& r) {
    return format_percent(r.peak_efficiency);
  });
  add("Current at peak eff", [](const TableTwoRow& r) {
    return format_double(r.current_at_peak.value, 0) + " A";
  });
  add("Switches",
      [](const TableTwoRow& r) { return std::to_string(r.switches); });
  add("Switches per mm^2", [](const TableTwoRow& r) {
    return format_double(r.switches_per_mm2, 2);
  });
  add("Inductors",
      [](const TableTwoRow& r) { return std::to_string(r.inductors); });
  add("Total inductance", [](const TableTwoRow& r) {
    return format_double(as_uH(r.total_inductance), 2) + " uH";
  });
  add("Capacitors",
      [](const TableTwoRow& r) { return std::to_string(r.capacitors); });
  add("Total capacitance", [](const TableTwoRow& r) {
    return format_double(as_uF(r.total_capacitance), 1) + " uF";
  });
  add("VRs along periphery (published)", [](const TableTwoRow& r) {
    return std::to_string(r.vrs_along_periphery);
  });
  add("VRs below die (published)", [](const TableTwoRow& r) {
    return std::to_string(r.vrs_below_die);
  });

  // --- Library re-derivation --------------------------------------------------
  const PowerDeliverySpec spec = paper_system();
  TextTable model({"Topology", "Model peak eff", "at current", "VR area",
                   "Ring capacity", "Deployed (2 rings)", "A per VR",
                   "Within rating"});
  for (TopologyKind kind : all_topologies()) {
    const auto conv = make_topology(kind);
    const VrAllocation wanted =
        allocate_vrs(spec.die_current(), *conv, 0.70);
    const unsigned ring =
        periphery_ring_capacity(spec.die_side(), conv->spec().area);
    // Deployment = allocation capped by two periphery rings (the paper's
    // "additional rows" policy), as in the Fig. 7 evaluation.
    const unsigned deployed = std::min(wanted.count, 2 * ring);
    const VrAllocation alloc =
        allocate_vrs_fixed(spec.die_current(), *conv, deployed);
    model.add_row(
        {std::string(to_string(kind)) + " (GaN)",
         format_percent(conv->loss_model().peak_efficiency(
             spec.die_voltage)),
         format_double(conv->loss_model().peak_current().value, 0) + " A",
         format_double(as_mm2(conv->spec().area), 1) + " mm^2",
         std::to_string(ring), std::to_string(deployed),
         format_double(alloc.nominal_per_vr.value, 1),
         alloc.within_rating ? "yes" : "NO (paper: N/A in Fig. 7)"});
  }

  if (json) {
    benchio::JsonReport report("bench_table2_converters");
    report.add_table("published", published);
    report.add_table("library_model", model);
    report.print();
    return 0;
  }

  std::printf("=== Table II: compact high-current 48V-to-1V converters ===\n\n");
  std::cout << published << '\n';
  std::printf("Library model (GaN devices, as evaluated in Fig. 7):\n");
  std::cout << model << '\n';

  std::printf("Notes:\n"
              " * DSCH's derived count (48) matches the published "
              "deployment exactly.\n"
              " * 3LHD at the paper's 48-VR deployment needs ~20.8 A/VR, "
              "beyond its 12 A rating\n   — the basis of its exclusion "
              "from Fig. 7.\n"
              " * DPMIH derives 15 VRs at 70%% derating vs the published "
              "8/7; the published\n   counts under-cover 1 kA (8 x 100 A "
              "max) — see EXPERIMENTS.md.\n");
  return 0;
}
