// Extension bench: POL-rail impedance profile Z(f) — the standard PDN
// design view that complements the paper's dc analysis. Builds the
// PCB-VR (A0) and interposer-IVR (A1/A2) supply loops from the library's
// lateral/vertical models and sweeps their small-signal impedance against
// the target impedance of a representative load step.
#include <cstdio>
#include <iostream>

#include "bench_output.hpp"
#include "vpd/circuit/ac_solver.hpp"
#include "vpd/common/interpolation.hpp"
#include "vpd/common/table.hpp"
#include "vpd/package/layers.hpp"

namespace {

struct LoopModel {
  const char* name;
  double r_loop;
  double l_loop;
  double c_bulk;
  double c_bulk_esr;
  double c_local;  // on-die / on-interposer ceramic
  double c_local_esr;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace vpd;
  using namespace vpd::literals;

  bool json = false;
  if (!vpd::benchio::parse_json_flag(argc, argv, &json)) return 2;
  vpd::benchio::JsonReport report("bench_pdn_impedance");

  const double r_pcb_loop = pcb_lateral_segment().resistance().value +
                            package_lateral_segment().resistance().value +
                            interposer_lateral_segment().resistance().value;

  const LoopModel loops[] = {
      // IVR local decap: the interposer's deep-trench bank under the die
      // (~1 uF/mm^2 over the 500 mm^2 shadow) with ~10 pH of attach.
      {"PCB VR (A0)", r_pcb_loop, 10e-9, 2000e-6, 0.3e-3, 100e-6, 0.2e-3},
      {"IVR (A1/A2)", 50e-6, 0.01e-9, 200e-6, 0.1e-3, 500e-6, 0.2e-3},
  };

  // Target: 50 mV allowed excursion on a 300 A step.
  const Resistance z_target = target_impedance(50.0_mV, Current{300.0});
  if (json) {
    report.add("target_impedance_mohm", io::Value(as_mOhm(z_target)));
  } else {
    std::printf("=== Extension: POL-rail impedance vs target ===\n\n");
    std::printf("Target impedance: %.3f mOhm (50 mV / 300 A)\n\n",
                as_mOhm(z_target));
  }

  for (const LoopModel& m : loops) {
    Netlist nl;
    const NodeId vr = nl.add_node("vr");
    const NodeId mid = nl.add_node("mid");
    const NodeId pol = nl.add_node("pol");
    const NodeId b1 = nl.add_node("b1");
    const NodeId b2 = nl.add_node("b2");
    nl.add_vsource("Vvr", vr, kGround, 1.0_V);
    nl.add_resistor("Rloop", vr, mid, Resistance{m.r_loop});
    nl.add_inductor("Lloop", mid, pol, Inductance{m.l_loop});
    nl.add_resistor("Resr_bulk", pol, b1, Resistance{m.c_bulk_esr});
    nl.add_capacitor("Cbulk", b1, kGround, Capacitance{m.c_bulk});
    nl.add_resistor("Resr_loc", pol, b2, Resistance{m.c_local_esr});
    nl.add_capacitor("Clocal", b2, kGround, Capacitance{m.c_local});
    const ElementId port = nl.add_isource("port", pol, kGround, 1.0_A);

    const std::vector<double> freqs = logspace(1e3, 1e9, 61);
    const auto sweep = impedance_sweep(nl, port, freqs);
    const ImpedancePoint peak = peak_impedance(sweep);

    TextTable t({"f", "|Z| (mOhm)", "phase", "vs target"});
    for (std::size_t i = 0; i < sweep.size(); i += 10) {
      const ImpedancePoint& p = sweep[i];
      t.add_row({format_si(p.frequency) + "Hz",
                 format_double(1e3 * p.magnitude(), 3),
                 format_double(p.phase_degrees(), 0) + " deg",
                 p.magnitude() <= z_target.value ? "ok" : "EXCEEDS"});
    }
    if (json) {
      io::Value loop = io::Value::object();
      loop.set("peak_mohm", 1e3 * peak.magnitude());
      loop.set("peak_frequency_hz", peak.frequency);
      loop.set("meets_target", peak.magnitude() <= z_target.value);
      report.add(std::string(m.name) + " peak", std::move(loop));
      report.add_table(m.name, t);
      continue;
    }
    std::printf("%s:\n", m.name);
    std::cout << t;
    std::printf("  anti-resonance peak: %.3f mOhm at %s Hz -> %s\n\n",
                1e3 * peak.magnitude(), format_si(peak.frequency).c_str(),
                peak.magnitude() <= z_target.value
                    ? "meets target"
                    : "EXCEEDS target");
  }

  if (json) {
    report.print();
    return 0;
  }

  std::printf("Reading: the A0 loop's inductance pushes its anti-resonance "
              "peak far above\nthe target impedance, while the IVR loop "
              "stays under it across the band —\nthe frequency-domain "
              "counterpart of the droop comparison in\n"
              "examples/droop_analysis.\n");
  return 0;
}
