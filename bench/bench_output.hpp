// Shared --json emission for the bench harnesses. Every bench keeps its
// human-readable text output as the default and gains a machine-readable
// mode through this helper: tables serialize as arrays of header-keyed
// objects, scalar findings as top-level fields, and every document
// carries the MeshSolveCache statistics of the run (zero when the bench
// performed no mesh solves) so cache behaviour is visible from any
// bench's output. All JSON goes through vpd::io — no hand-rolled
// printf-JSON anywhere in the benches.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>

#include "vpd/common/table.hpp"
#include "vpd/io/json.hpp"
#include "vpd/obs/registry.hpp"
#include "vpd/package/mesh_cache.hpp"

namespace vpd {
namespace benchio {

/// Parses argv for a sole optional --json flag. Returns false (and prints
/// usage) on any other argument.
inline bool parse_json_flag(int argc, char** argv, bool* json) {
  *json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      *json = true;
    } else {
      std::fprintf(stderr, "usage: %s [--json]\n", argv[0]);
      return false;
    }
  }
  return true;
}

/// Accumulates a bench's structured output; print() emits one indented
/// JSON document to stdout.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name) {
    doc_.set("bench", std::move(bench_name));
  }

  /// Serializes a table as `key: [{header: cell, ...}, ...]`.
  void add_table(const std::string& key, const TextTable& table) {
    io::Value rows = io::Value::array();
    for (const auto& row : table.rows()) {
      io::Value obj = io::Value::object();
      for (std::size_t c = 0; c < table.headers().size(); ++c) {
        obj.set(table.headers()[c], row[c]);
      }
      rows.push_back(std::move(obj));
    }
    doc_.set(key, std::move(rows));
  }

  void add(const std::string& key, io::Value value) {
    doc_.set(key, std::move(value));
  }

  void set_mesh_cache(const MeshSolveCache::Stats& stats) {
    io::Value v = io::Value::object();
    v.set("hits", stats.hits);
    v.set("misses", stats.misses);
    doc_.set("mesh_cache", std::move(v));
    snapshot_.set_counter("mesh_cache.hits", stats.hits);
    snapshot_.set_counter("mesh_cache.misses", stats.misses);
  }

  /// Serializes a solver counter delta (typically solver_counters()
  /// around the timed section) as `solver: {...}`.
  void set_solver(const SolverCounters& counters) {
    io::Value v = io::Value::object();
    v.set("cg_solves", counters.cg_solves);
    v.set("cg_iterations", counters.cg_iterations);
    v.set("precond_factorizations", counters.precond_factorizations);
    v.set("precond_reuses", counters.precond_reuses);
    v.set("cg_block_panels", counters.cg_block_panels);
    v.set("cg_block_columns", counters.cg_block_columns);
    doc_.set("solver", std::move(v));
    snapshot_.set_counter("solver.cg_solves", counters.cg_solves);
    snapshot_.set_counter("solver.cg_iterations", counters.cg_iterations);
    snapshot_.set_counter("solver.precond_factorizations",
                          counters.precond_factorizations);
    snapshot_.set_counter("solver.precond_reuses", counters.precond_reuses);
    snapshot_.set_counter("solver.cg_block_panels", counters.cg_block_panels);
    snapshot_.set_counter("solver.cg_block_columns",
                          counters.cg_block_columns);
  }

  /// Merges a unified-telemetry snapshot (e.g. SweepReport::snapshot(),
  /// FaultCampaignReport::snapshot() or ServiceMetrics::observability)
  /// into the document's "observability" member.
  void set_observability(const obs::Snapshot& snapshot) {
    // Overlay, not merge: the report's own mesh_cache.*/solver.* counters
    // and the subsystem snapshot describe the same instruments, so
    // same-name entries replace rather than double-count.
    snapshot_.overlay(snapshot);
  }

  void print() const {
    io::Value doc = doc_;
    if (doc.find("mesh_cache") == nullptr) {
      // Every bench document reports cache stats, benches without mesh
      // solves included.
      io::Value v = io::Value::object();
      v.set("hits", 0);
      v.set("misses", 0);
      doc.set("mesh_cache", std::move(v));
    }
    // Every bench document carries the unified telemetry shape alongside
    // its bench-specific fields (see docs/observability.md).
    doc.set("observability", snapshot_.to_json());
    std::string out = io::dump_pretty(doc);
    std::fputs(out.c_str(), stdout);
    std::fputc('\n', stdout);
  }

 private:
  io::Value doc_ = io::Value::object();
  obs::Snapshot snapshot_;
};

}  // namespace benchio
}  // namespace vpd
