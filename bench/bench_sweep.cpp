// Sweep-engine bench: the batch-first evaluation path (core/batch.hpp)
// against the pre-batch scalar loop, on the default evaluation grid plus
// stage-2-dropout variants of the two-stage points (the canonical
// same-operator panel case: identical stamped mesh, sink scaling only).
//
// Three configurations of the same point list:
//   scalar  SweepConfig::batch = false — the pre-batch point-at-a-time
//           loop, the bit-identity reference
//   loop    batch on, batch_block = false — grouped and deduplicated,
//           distinct right-hand sides solved as a sequential loop that
//           is bit-identical to the scalar path
//   block   the default — grouped points solve as block-CG panels
//           (certified backward error)
//
// Modes:
//   (default)  human-readable comparison table
//   --json     one JSON document through benchio::JsonReport (per-mode
//              wall clock, batch accounting, block-vs-scalar speedup)
//   --check    regression guard (exit 1 on violation): the block sweep
//              must group points and launch panels (batch accounting and
//              solver.cg_block_panels both nonzero), and the loop-mode
//              sweep must reproduce the scalar loop bit for bit
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_output.hpp"
#include "vpd/common/table.hpp"
#include "vpd/core/spec.hpp"
#include "vpd/io/schema.hpp"
#include "vpd/sweep/sweep.hpp"

namespace {

using namespace vpd;

/// The default grid in paper mode (A2's published 48 below-die VRs need
/// the relaxed area budget) plus stage-2-dropout variants per two-stage
/// architecture — the N-1 slice of a fault sweep. The dropout scales the
/// intermediate-rail current while the stage-1 deployment is sized at
/// design time, so every variant shares its nominal point's operator.
/// The survivors re-split the load uniformly, which makes all N-1
/// dropouts share ONE right-hand side (the batch engine solves it once),
/// while the N-2 variant's different survivor count adds a genuinely
/// distinct panel column. A finer mesh keeps the distribution solve a
/// meaningful slice of each evaluation, so the dedup shows on the wall
/// clock.
std::vector<SweepPoint> bench_grid() {
  EvaluationOptions options;
  options.below_die_area_fraction = 1.6;
  options.mesh_nodes = 81;
  std::vector<SweepPoint> points = SweepGridBuilder(options).build();
  for (ArchitectureKind arch : {ArchitectureKind::kA3_TwoStage12V,
                                ArchitectureKind::kA3_TwoStage6V}) {
    for (std::size_t site = 0; site < 6; ++site) {
      SweepPoint p;
      p.architecture = arch;
      p.topology = TopologyKind::kDsch;
      p.options = options;
      p.options.faults.dropped_stage2 = {site};
      p.label = sweep_point_label(arch, p.topology, p.tech,
                                  "stage2-drop-" + std::to_string(site));
      points.push_back(p);
    }
    SweepPoint p2;
    p2.architecture = arch;
    p2.topology = TopologyKind::kDsch;
    p2.options = options;
    p2.options.faults.dropped_stage2 = {0, 1};
    p2.label = sweep_point_label(arch, p2.topology, p2.tech, "stage2-drop-n2");
    points.push_back(p2);
  }
  return points;
}

struct ModeSample {
  SweepReport report;
  double best_seconds{0.0};
};

ModeSample run_mode(const PowerDeliverySpec& spec,
                    const std::vector<SweepPoint>& points, bool batch,
                    bool block, int repetitions) {
  SweepConfig config;
  config.threads = 4;
  config.batch = batch;
  config.batch_block = block;
  const SweepRunner runner(spec, config);
  ModeSample sample;
  for (int rep = 0; rep < repetitions; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    SweepReport report = runner.run(points);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (rep == 0 || seconds < sample.best_seconds)
      sample.best_seconds = seconds;
    if (rep == 0) sample.report = std::move(report);
  }
  return sample;
}

std::string entry_dump(const ExplorationEntry& entry) {
  return io::dump(io::to_json(entry));
}

std::string format_ms(double seconds) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.2f ms", seconds * 1e3);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      std::fprintf(stderr, "usage: %s [--json] [--check]\n", argv[0]);
      return 2;
    }
  }
  const int repetitions = 3;

  const PowerDeliverySpec spec = paper_system();
  const std::vector<SweepPoint> points = bench_grid();

  const ModeSample scalar =
      run_mode(spec, points, /*batch=*/false, /*block=*/false, repetitions);
  const ModeSample loop =
      run_mode(spec, points, /*batch=*/true, /*block=*/false, repetitions);
  const ModeSample block =
      run_mode(spec, points, /*batch=*/true, /*block=*/true, repetitions);

  // --- Guards ---------------------------------------------------------------
  // Loop mode must reproduce the pre-batch scalar loop bit for bit: the
  // full wire dump of every entry, not a tolerance comparison.
  bool loop_bit_identical = true;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (entry_dump(loop.report.outcomes[i].entry) !=
        entry_dump(scalar.report.outcomes[i].entry)) {
      loop_bit_identical = false;
      std::fprintf(stderr, "bench_sweep: loop-mode entry differs from the "
                           "scalar loop at %s\n",
                   points[i].label.c_str());
    }
  }
  // Block mode must actually group and launch panels.
  const bool panels_engaged = block.report.batch.groups > 0 &&
                              block.report.batch.grouped_points > 0 &&
                              block.report.batch.panel_columns > 0 &&
                              block.report.solver.cg_block_panels > 0;
  const bool guard_ok = loop_bit_identical && panels_engaged;
  const double block_speedup = block.best_seconds > 0.0
                                   ? scalar.best_seconds / block.best_seconds
                                   : 0.0;

  const auto mode_row = [&](const char* name, const ModeSample& sample) {
    io::Value row = io::Value::object();
    row.set("mode", name);
    row.set("wall_seconds", sample.best_seconds);
    row.set("cg_iterations", sample.report.total_cg_iterations());
    row.set("batch_groups", sample.report.batch.groups);
    row.set("grouped_points", sample.report.batch.grouped_points);
    row.set("panel_columns", sample.report.batch.panel_columns);
    row.set("deduped_solves", sample.report.batch.deduped_solves);
    row.set("block_panels", sample.report.solver.cg_block_panels);
    row.set("block_columns", sample.report.solver.cg_block_columns);
    return row;
  };

  if (json) {
    benchio::JsonReport report("bench_sweep");
    io::Value modes = io::Value::array();
    modes.push_back(mode_row("scalar", scalar));
    modes.push_back(mode_row("loop", loop));
    modes.push_back(mode_row("block", block));
    report.add("points", points.size());
    report.add("modes", std::move(modes));
    report.add("block_speedup_vs_scalar", block_speedup);
    report.add("loop_bit_identical", loop_bit_identical);
    report.add("panels_engaged", panels_engaged);
    report.add("guard_ok", guard_ok);
    report.set_mesh_cache(block.report.cache_stats);
    report.set_solver(block.report.solver);
    report.set_observability(block.report.snapshot());
    report.print();
    return guard_ok ? 0 : 1;
  }

  TextTable table({"Mode", "Wall (best of 3)", "CG its", "Groups",
                   "Grouped", "Panel cols", "Deduped", "Block panels"});
  const auto add_row = [&](const char* name, const ModeSample& sample) {
    table.add_row({name, format_ms(sample.best_seconds),
                   std::to_string(sample.report.total_cg_iterations()),
                   std::to_string(sample.report.batch.groups),
                   std::to_string(sample.report.batch.grouped_points),
                   std::to_string(sample.report.batch.panel_columns),
                   std::to_string(sample.report.batch.deduped_solves),
                   std::to_string(sample.report.solver.cg_block_panels)});
  };
  std::printf("=== Batch-first sweep vs the scalar loop (%zu points, "
              "4 threads) ===\n\n",
              points.size());
  add_row("scalar", scalar);
  add_row("loop", loop);
  add_row("block", block);
  std::cout << table << '\n';
  std::printf("Block-vs-scalar wall speedup: %.2fx\n", block_speedup);
  if (check) {
    std::printf("\nGuard: loop mode %s the scalar loop bit for bit; "
                "block panels %s.\n",
                loop_bit_identical ? "reproduces" : "DIVERGES FROM",
                panels_engaged ? "engaged" : "DID NOT ENGAGE");
  }
  return guard_ok ? 0 : 1;
}
