// Evaluation-service throughput on a realistic mixed workload: a
// duplicate-heavy request stream (repeated design points, near-duplicate
// option variants that share mesh geometry, and fault scenarios) served
// two ways:
//
//  * baseline — one evaluator per request: every request runs
//    evaluate_with_exclusion() with no shared state (mesh assembled per
//    call, no result reuse), on the same worker pool;
//  * service  — the EvaluationService: shared MeshSolveCache, in-flight
//    coalescing, and the completed-result LRU.
//
// Every service response is checked bit-identical (canonical JSON) to the
// baseline evaluation of the same request before any number is printed —
// the speedup is only meaningful if the answers match. `--json` emits the
// same numbers through vpd::io.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "bench_output.hpp"
#include "vpd/common/table.hpp"
#include "vpd/core/explorer.hpp"
#include "vpd/io/schema.hpp"
#include "vpd/serve/service.hpp"
#include "vpd/sweep/thread_pool.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vpd;

  bool json = false;
  if (!benchio::parse_json_flag(argc, argv, &json)) return 2;

  // --- Distinct design points -----------------------------------------------
  EvaluationOptions paper_options;
  paper_options.below_die_area_fraction = 1.6;  // paper mode (A2's 48 VRs)

  std::vector<io::EvaluationRequest> distinct;
  for (ArchitectureKind arch :
       {ArchitectureKind::kA1_InterposerPeriphery,
        ArchitectureKind::kA2_InterposerBelowDie,
        ArchitectureKind::kA3_TwoStage12V, ArchitectureKind::kA3_TwoStage6V}) {
    for (TopologyKind topo : {TopologyKind::kDpmih, TopologyKind::kDsch}) {
      io::EvaluationRequest request;
      request.architecture = arch;
      request.topology = topo;
      request.options = paper_options;
      distinct.push_back(request);
    }
  }
  // Near-duplicates: same mesh geometry (mesh-cache hit), different
  // design point (result-cache miss).
  for (ArchitectureKind arch : {ArchitectureKind::kA1_InterposerPeriphery,
                                ArchitectureKind::kA2_InterposerBelowDie}) {
    io::EvaluationRequest request;
    request.architecture = arch;
    request.topology = TopologyKind::kDsch;
    request.options = paper_options;
    request.options.derating = 0.65;
    distinct.push_back(request);
  }
  // Fault scenarios: a dropped below-die VR and a damaged mesh region.
  {
    io::EvaluationRequest request;
    request.architecture = ArchitectureKind::kA2_InterposerBelowDie;
    request.topology = TopologyKind::kDsch;
    request.options = paper_options;
    request.options.faults.dropped_sites = {3};
    distinct.push_back(request);

    request.options.faults = {};
    request.options.faults.mesh_perturbation.push_back(
        EdgeScaleRegion{Length{9e-3}, Length{9e-3}, Length{12e-3},
                        Length{12e-3}, 0.1});
    distinct.push_back(request);
  }

  // --- Duplicate-heavy stream ------------------------------------------------
  constexpr std::size_t kRequests = 180;
  std::vector<io::EvaluationRequest> stream;
  stream.reserve(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    // Deterministic interleaving (7 is coprime to the distinct count) so
    // duplicates are spread through the stream rather than batched.
    stream.push_back(distinct[(i * 7) % distinct.size()]);
  }

  const std::size_t threads = 0;  // hardware concurrency in both modes

  // --- Baseline: one evaluator per request -----------------------------------
  std::vector<std::string> baseline_results(stream.size());
  const auto baseline_start = std::chrono::steady_clock::now();
  {
    ThreadPool pool(threads);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      pool.submit([&stream, &baseline_results, i] {
        io::EvaluationRequest request = stream[i];
        request.options.mesh_cache = nullptr;  // assemble per call
        const ExplorationEntry entry = evaluate_with_exclusion(
            request.spec, request.architecture, request.topology,
            request.tech, request.options);
        baseline_results[i] = io::dump(io::to_json(entry));
      });
    }
    pool.wait_idle();
  }
  const double baseline_seconds = seconds_since(baseline_start);

  // --- Service: coalescing + LRU + shared mesh cache -------------------------
  serve::ServiceConfig config;
  config.threads = threads;
  config.queue_capacity = stream.size();  // backpressure out of the picture
  serve::EvaluationService service(config);

  // Submit in bursts of 30 (clients pipeline, but not infinitely): early
  // duplicates coalesce onto in-flight evaluations, later ones hit the
  // completed-result LRU.
  constexpr std::size_t kBurst = 30;
  std::vector<serve::ServiceResponse> responses;
  responses.reserve(stream.size());
  const auto service_start = std::chrono::steady_clock::now();
  for (std::size_t base = 0; base < stream.size(); base += kBurst) {
    std::vector<std::shared_future<serve::ServiceResponse>> futures;
    const std::size_t end = std::min(base + kBurst, stream.size());
    for (std::size_t i = base; i < end; ++i) {
      futures.push_back(service.submit(stream[i]));
    }
    for (auto& future : futures) responses.push_back(future.get());
  }
  const double service_seconds = seconds_since(service_start);

  // --- Bit-identity gate ------------------------------------------------------
  for (std::size_t i = 0; i < responses.size(); ++i) {
    if (responses[i].entry == nullptr ||
        io::dump(io::to_json(*responses[i].entry)) != baseline_results[i]) {
      std::fprintf(stderr,
                   "service response %zu is not bit-identical to the "
                   "per-request baseline\n",
                   i);
      return 1;
    }
  }

  const double baseline_rps = static_cast<double>(stream.size()) / baseline_seconds;
  const double service_rps = static_cast<double>(stream.size()) / service_seconds;
  const double speedup = service_rps / baseline_rps;
  const serve::ServiceMetrics metrics = service.metrics();

  // Per-stage latency breakdown over the evaluated (non-cached) responses;
  // cache hits carry all-zero timings and coalesced waiters share the
  // evaluated response, so count each distinct evaluation once.
  obs::StageTimings stage_totals;
  std::size_t timed = 0;
  std::set<const ExplorationEntry*> counted;
  for (const auto& response : responses) {
    if (response.from_cache || response.timings.evaluate_seconds <= 0.0 ||
        !counted.insert(response.entry.get()).second) {
      continue;
    }
    stage_totals.queue_seconds += response.timings.queue_seconds;
    stage_totals.mesh_seconds += response.timings.mesh_seconds;
    stage_totals.solve_seconds += response.timings.solve_seconds;
    stage_totals.evaluate_seconds += response.timings.evaluate_seconds;
    ++timed;
  }
  const double timed_n = timed == 0 ? 1.0 : static_cast<double>(timed);

  if (json) {
    benchio::JsonReport report("bench_serve");
    io::Value workload = io::Value::object();
    workload.set("requests", stream.size());
    workload.set("distinct_points", distinct.size());
    workload.set("fault_scenarios", 2);
    report.add("workload", std::move(workload));
    io::Value baseline = io::Value::object();
    baseline.set("wall_seconds", baseline_seconds);
    baseline.set("requests_per_second", baseline_rps);
    report.add("baseline", std::move(baseline));
    io::Value served = io::Value::object();
    served.set("wall_seconds", service_seconds);
    served.set("requests_per_second", service_rps);
    report.add("service", std::move(served));
    report.add("speedup", speedup);
    report.add("bit_identical", true);
    io::Value stages = io::Value::object();
    const auto stage = [&](const char* name, double total) {
      io::Value s = io::Value::object();
      s.set("total_seconds", total);
      s.set("mean_seconds", total / timed_n);
      stages.set(name, std::move(s));
    };
    stage("queue", stage_totals.queue_seconds);
    stage("mesh", stage_totals.mesh_seconds);
    stage("solve", stage_totals.solve_seconds);
    stage("evaluate", stage_totals.evaluate_seconds);
    io::Value breakdown = io::Value::object();
    breakdown.set("evaluated_requests", timed);
    breakdown.set("stages", std::move(stages));
    report.add("stage_breakdown", std::move(breakdown));
    report.add("service_metrics", serve::to_json(metrics));
    report.set_mesh_cache(metrics.mesh_cache);
    report.set_solver(metrics.solver);
    report.set_observability(metrics.observability);
    report.print();
    return 0;
  }

  std::printf("=== Evaluation service vs one-evaluator-per-request "
              "(%zu requests, %zu distinct, %zu threads) ===\n\n",
              stream.size(), distinct.size(), metrics.threads);
  TextTable t({"Mode", "Wall", "Req/s", "Evaluations", "Mesh assemblies"});
  t.add_row({"per-request baseline", format_double(baseline_seconds, 3) + " s",
             format_double(baseline_rps, 1), std::to_string(stream.size()),
             std::to_string(stream.size())});
  t.add_row({"service (coalesce+LRU)",
             format_double(service_seconds, 3) + " s",
             format_double(service_rps, 1), std::to_string(metrics.evaluated),
             std::to_string(metrics.mesh_cache.misses)});
  std::cout << t << '\n';

  std::printf(
      "Speedup: %.2fx requests/sec (bit-identical responses).\n"
      "Service path: %zu evaluated, %zu coalesced onto in-flight twins, "
      "%zu served from the result LRU (hit rate %.0f%%); mesh cache "
      "%zu hits / %zu misses (hit rate %.0f%%); latency min/mean/max/p99 "
      "= %.2f/%.2f/%.2f/%.2f ms; queue high-water %zu.\n",
      speedup, metrics.evaluated, metrics.coalesced,
      metrics.result_cache_hits, 100.0 * metrics.result_cache_hit_rate(),
      metrics.mesh_cache.hits, metrics.mesh_cache.misses,
      100.0 * metrics.mesh_cache_hit_rate(), 1e3 * metrics.latency_min_seconds,
      1e3 * metrics.latency_mean_seconds, 1e3 * metrics.latency_max_seconds,
      1e3 * metrics.latency_p99_seconds, metrics.queue_high_water);
  std::printf(
      "Stage breakdown (mean over %zu evaluated requests): queue %.2f ms, "
      "mesh %.2f ms, solve %.2f ms, evaluate %.2f ms.\n",
      timed, 1e3 * stage_totals.queue_seconds / timed_n,
      1e3 * stage_totals.mesh_seconds / timed_n,
      1e3 * stage_totals.solve_seconds / timed_n,
      1e3 * stage_totals.evaluate_seconds / timed_n);
  return speedup >= 2.0 ? 0 : 1;
}
