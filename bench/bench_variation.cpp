// Extension bench: Monte Carlo tolerance analysis. The paper's Fig. 7 is
// a nominal-value study; this bench asks how much margin the conclusions
// carry under component spread — converter loss terms (device Rds_on,
// magnetics) and PPDN parameters (metal thickness, via fields).
#include <cstdio>
#include <iostream>

#include "bench_output.hpp"
#include "vpd/common/table.hpp"
#include "vpd/converters/catalog.hpp"
#include "vpd/core/variation.hpp"
#include "vpd/package/mesh_cache.hpp"

int main(int argc, char** argv) {
  using namespace vpd;
  using namespace vpd::literals;

  bool json = false;
  if (!benchio::parse_json_flag(argc, argv, &json)) return 2;

  // --- Converter-level spread -------------------------------------------------
  TextTable conv({"Topology", "Nominal", "Median", "P5..P95",
                  "Yield >= 88%"});
  for (TopologyKind kind : {TopologyKind::kDpmih, TopologyKind::kDsch}) {
    const auto c = make_topology(kind);
    const Current load =
        kind == TopologyKind::kDpmih ? Current{66.7} : Current{20.8};
    const EfficiencyDistribution d = sample_converter_efficiency(
        c->loss_model(), 1.0_V, load, 0.88, {}, 1000, 2024);
    conv.add_row({to_string(kind),
                  format_percent(c->efficiency(load)),
                  format_percent(d.efficiency_at_load.median),
                  format_percent(d.efficiency_at_load.p05) + ".." +
                      format_percent(d.efficiency_at_load.p95),
                  format_percent(d.yield, 0)});
  }

  // --- Architecture-level spread -----------------------------------------------
  MeshSolveCache cache;
  EvaluationOptions options;
  options.below_die_area_fraction = 1.6;
  options.mesh_cache = &cache;
  TextTable arch({"Architecture", "Nominal", "Median", "P5..P95",
                  "Yield <= 22% loss"});
  struct Row {
    ArchitectureKind arch;
    TopologyKind topo;
  };
  for (const Row& row : {Row{ArchitectureKind::kA1_InterposerPeriphery,
                             TopologyKind::kDsch},
                         Row{ArchitectureKind::kA2_InterposerBelowDie,
                             TopologyKind::kDsch}}) {
    const ArchitectureEvaluation nominal = evaluate_architecture(
        row.arch, paper_system(), row.topo,
        DeviceTechnology::kGalliumNitride, options);
    const LossDistribution d = sample_architecture_loss(
        paper_system(), row.arch, row.topo,
        DeviceTechnology::kGalliumNitride, options, 0.22, {}, 40, 99);
    arch.add_row(
        {to_string(row.arch),
         format_percent(nominal.loss_fraction(Power{1000.0})),
         format_percent(d.loss_fraction.median),
         format_percent(d.loss_fraction.p05) + ".." +
             format_percent(d.loss_fraction.p95),
         format_percent(d.yield, 0)});
  }

  if (json) {
    benchio::JsonReport report("bench_variation");
    report.add_table("converter_spread", conv);
    report.add_table("architecture_spread", arch);
    report.set_mesh_cache(cache.stats());
    report.print();
    return 0;
  }

  std::printf("=== Extension: Monte Carlo tolerance analysis ===\n\n");
  std::printf("Converter efficiency at ~21 A (the Fig. 7 per-VR load), "
              "1000 samples,\n10%% fixed-loss / 8%% conduction sigma:\n\n");
  std::cout << conv << '\n';
  std::printf("System loss fraction under PPDN spread (15%% sheet / 20%% "
              "attach sigma),\n40 samples each:\n\n");
  std::cout << arch << '\n';

  std::printf("Reading: the ~80%%-efficiency conclusion holds with margin "
              "under realistic\ncomponent spread; the tail risk sits in "
              "the per-VR rating check (corner VRs\nof A1 run close to "
              "the DSCH 30 A limit).\n");
  return 0;
}
