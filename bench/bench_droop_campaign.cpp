// Droop-campaign comparison of the paper's vertical architectures.
//
// For each of A1, A2, A3@12V, A3@6V (DSCH final stage, GaN) this bench
// runs the default-grid transient droop campaign on the sweep thread
// pool: load-step / burst / ramp di/dt scenarios on the 2x2 power-map
// tile grid plus per-VR dropout transients, every scenario integrated by
// the MNA time-domain engine against the default dynamic-droop limits
// (10% transient undershoot, settling/steady-cycle deadlines). This is
// the time-domain companion of bench_fault_tolerance: that bench scores
// static post-fault DC states, this one scores the trajectories between
// them.
//
// `--json` switches the output to a machine-readable JSON document with
// the same numbers plus each campaign's unified telemetry snapshot
// (transient.* / solver.* counters and the per-scenario integration
// histogram).
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_output.hpp"
#include "vpd/common/table.hpp"
#include "vpd/workload/droop_campaign.hpp"

int main(int argc, char** argv) {
  using namespace vpd;

  bool json = false;
  if (!benchio::parse_json_flag(argc, argv, &json)) return 2;

  const PowerDeliverySpec spec = paper_system();
  MeshSolveCache cache;
  EvaluationOptions options;
  options.below_die_area_fraction = 1.6;  // paper mode (A2's 48 VRs)

  DroopCampaignConfig config;  // default grid: 12 load + <=8 dropouts
  config.sweep.cache = &cache;

  const ArchitectureKind architectures[] = {
      ArchitectureKind::kA1_InterposerPeriphery,
      ArchitectureKind::kA2_InterposerBelowDie,
      ArchitectureKind::kA3_TwoStage12V,
      ArchitectureKind::kA3_TwoStage6V,
  };

  const SolverCounters solver_before = solver_counters();
  const DroopCampaignRunner runner(spec, config);
  std::vector<DroopCampaignReport> reports;
  for (ArchitectureKind arch : architectures) {
    reports.push_back(runner.run(arch, TopologyKind::kDsch,
                                 DeviceTechnology::kGalliumNitride, options));
  }
  const SolverCounters solver_delta = solver_counters() - solver_before;

  if (json) {
    benchio::JsonReport out("bench_droop_campaign");
    io::Value limits = io::Value::object();
    limits.set("transient_droop_tolerance",
               config.resilience.transient_droop_tolerance);
    limits.set("settling_time_limit", config.resilience.settling_time_limit);
    limits.set("steady_cycle_limit",
               double(config.resilience.steady_cycle_limit));
    out.add("limits", std::move(limits));
    out.add("t_stop", config.t_stop.value);
    out.add("dt", config.dt.value);
    io::Value campaigns = io::Value::array();
    for (const DroopCampaignReport& r : reports) {
      io::Value c = io::Value::object();
      c.set("architecture", to_string(r.architecture));
      c.set("topology", "DSCH");
      c.set("scenarios", r.scenario_count());
      c.set("passed", r.pass_count());
      c.set("pass_fraction", r.pass_fraction());
      c.set("worst_undershoot_fraction", r.worst_undershoot_fraction());
      c.set("worst_settling_seconds", r.worst_settling_time().value);
      c.set("worst_margin", r.worst_margin());
      c.set("transient_steps", r.transient_steps);
      io::Value factors = io::Value::object();
      factors.set("hits", r.factors.hits);
      factors.set("misses", r.factors.misses);
      c.set("factor_cache", std::move(factors));
      c.set("wall_seconds", r.wall_seconds);
      c.set("observability", r.snapshot().to_json());
      campaigns.push_back(std::move(c));
    }
    out.add("campaigns", std::move(campaigns));
    out.set_mesh_cache(cache.stats());
    out.set_solver(solver_delta);
    out.print();
    return 0;
  }

  TextTable t({"Architecture", "Scenarios", "Pass", "Worst droop",
               "Worst settle", "Margin", "Steps", "LU hit/miss", "Wall"});
  for (const DroopCampaignReport& r : reports) {
    t.add_row({to_string(r.architecture),
               format_double(double(r.scenario_count()), 0),
               format_double(double(r.pass_count()), 0),
               format_double(100.0 * r.worst_undershoot_fraction(), 2) + " %",
               format_si(r.worst_settling_time().value) + "s",
               format_double(r.worst_margin(), 3),
               format_double(double(r.transient_steps), 0),
               format_double(double(r.factors.hits), 0) + "/" +
                   format_double(double(r.factors.misses), 0),
               format_double(r.wall_seconds, 2) + " s"});
  }

  std::printf("=== Transient droop campaigns per architecture ===\n\n");
  std::printf(
      "Default population (2x2 tile grid: steps, bursts, ramps; per-VR\n"
      "dropouts capped at 8) integrated over %g us at dt = %g ns against\n"
      "the default dynamic-droop limits (%.0f%% undershoot budget).\n\n",
      1e6 * config.t_stop.value, 1e9 * config.dt.value,
      100.0 * config.resilience.transient_droop_tolerance);
  std::cout << t << '\n';

  std::printf(
      "Reading: the same vertical proximity that removes DC I^2R shrinks\n"
      "the supply loop inductance, so the first droop shrinks with it —\n"
      "the interposer architectures ride out di/dt events that would blow\n"
      "through the budget on a board-loop supply. The LU column is the\n"
      "shared factor cache: distinct matrices factorized once (misses),\n"
      "then reused across every integration on every thread (hits).\n");
  return 0;
}
