// Ablation: single-effective-sheet vs two-layer (interposer + die grid +
// via field) PDN model for the A1 distribution solve. The Fig. 7
// evaluation collapses the POL-rail metal into one calibrated sheet; this
// bench re-runs the same scenario with physical per-layer values to show
// what the calibration absorbs and where the loss actually sits.
#include <cstdio>
#include <iostream>

#include "bench_output.hpp"
#include "vpd/arch/placement.hpp"
#include "vpd/common/table.hpp"
#include "vpd/converters/catalog.hpp"
#include "vpd/core/spec.hpp"
#include "vpd/package/interconnect.hpp"
#include "vpd/package/layers.hpp"
#include "vpd/package/stacked_mesh.hpp"

int main(int argc, char** argv) {
  using namespace vpd;
  using namespace vpd::literals;

  bool json = false;
  if (!benchio::parse_json_flag(argc, argv, &json)) return 2;

  const PowerDeliverySpec spec = paper_system();
  const std::size_t n = 41;
  const Current i_die = spec.die_current();

  // A1 DSCH deployment: 48 periphery VRs.
  const auto conv = make_topology(TopologyKind::kDsch);
  const PlacementResult placement =
      periphery_placement(spec.die_side(), conv->spec().area, 48);

  // --- Single effective sheet (the Fig. 7 model) -----------------------------
  const GridMesh flat(spec.die_side(), spec.die_side(), n, n, 2.0e-3);
  std::vector<VrAttachment> flat_legs;
  const double spacing = 4.0 * spec.die_side().value / 48.0;
  for (const VrSite& site : placement.sites) {
    const auto patch =
        patch_attachment(flat, site.x, site.y,
                         Length{0.8 * spacing}, 1.0_V, Resistance{100e-6});
    flat_legs.insert(flat_legs.end(), patch.begin(), patch.end());
  }
  const IrDropResult flat_result =
      solve_irdrop(flat, flat_legs, uniform_sinks(flat, i_die));

  // --- Two physical layers ----------------------------------------------------
  // Interposer power metal and die grid from the layer library; via field
  // per node from the Table I u-bump spec (20,000 power vias over the
  // die, shared by the n^2 mesh nodes).
  const double interposer_sheet = interposer_rdl().sheet_resistance();
  const double die_sheet = die_grid().sheet_resistance();
  const auto ubump =
      interconnect_spec(InterconnectLevel::kInterposerToDieBump);
  const std::size_t vias = ubump.vias_for_current(i_die);
  const double per_node_via =
      ubump.net_pair_resistance(vias).value * (n * n);
  const StackedMesh stacked(spec.die_side(), n, interposer_sheet,
                            die_sheet, Resistance{per_node_via});
  std::vector<VrAttachment> stacked_legs;
  for (const VrSite& site : placement.sites) {
    const auto patch = patch_attachment(stacked.grid(0), site.x, site.y,
                                        Length{0.8 * spacing}, 1.0_V,
                                        Resistance{100e-6});
    stacked_legs.insert(stacked_legs.end(), patch.begin(), patch.end());
  }
  Vector die_sinks(stacked.nodes_per_layer(),
                   i_die.value / stacked.nodes_per_layer());
  const StackedIrDropResult stacked_result =
      solve_stacked_irdrop(stacked, stacked_legs, die_sinks);

  TextTable t({"Model", "Lateral loss", "Via-field loss", "Worst VPOL"});
  t.add_row({"single effective sheet (2.0 mOhm/sq)",
             format_double(flat_result.grid_loss.value, 1) + " W", "-",
             format_double(flat_result.min_node_voltage.value, 3) + " V"});
  t.add_row(
      {"two layers (RDL " +
           format_double(interposer_sheet * 1e3, 2) + " + grid " +
           format_double(die_sheet * 1e3, 2) + " mOhm/sq)",
       format_double(stacked_result.losses.interposer_lateral.value +
                         stacked_result.losses.die_lateral.value,
                     1) +
           " W",
       format_double(stacked_result.losses.via_field.value, 2) + " W",
       format_double(stacked_result.min_die_voltage.value, 3) + " V"});

  if (json) {
    benchio::JsonReport report("bench_ablation_meshmodel");
    report.add_table("models", t);
    io::Value split = io::Value::object();
    split.set("interposer_w", stacked_result.losses.interposer_lateral.value);
    split.set("die_grid_w", stacked_result.losses.die_lateral.value);
    split.set("via_field_w", stacked_result.losses.via_field.value);
    report.add("two_layer_loss_split", std::move(split));
    report.print();
    return 0;
  }

  std::printf("=== Ablation: PDN mesh fidelity (A1, 48 DSCH VRs) ===\n\n");
  std::cout << t << '\n';

  std::printf("Layer split of the two-layer lateral loss: interposer "
              "%.1f W, die grid %.1f W\n",
              stacked_result.losses.interposer_lateral.value,
              stacked_result.losses.die_lateral.value);
  std::printf("\nReading: the physical two-layer model concentrates the "
              "lateral loss in the\ninterposer metal (the die grid mostly "
              "rides along through the dense via\nfield). The calibrated "
              "single sheet of the Fig. 7 evaluation absorbs both\nlayers "
              "and the via field into one number of the same magnitude — "
              "the\ncalibration is a fidelity trade, not a different "
              "physics.\n");
  return 0;
}
