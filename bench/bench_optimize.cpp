// Adaptive search vs exhaustive enumeration over the VPD design space.
//
// The baseline is the natural "default grid": every (architecture,
// vr_count) combination of the search space at the calibrated default
// interconnect allocation (2 periphery rings, paper-mode area budget,
// 100 uOhm attach, 2 mOhm/sq sheet), evaluated exhaustively and scored
// into the same ε-dominance archive the optimizer uses. The optimizer
// searches the same space with a strictly smaller evaluation budget but
// may also vary the allocation knobs the grid holds fixed — the claim
// under test is that adaptive sampling reaches at least the grid's
// hypervolume on strictly fewer evaluator runs.
//
// The bench also replays the optimizer with the same seed and verifies
// the front reproduces bit for bit — the determinism contract ctest
// leans on. Both guarantees are enforced (non-zero exit), so the --json
// smoke run doubles as a regression guard.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_output.hpp"
#include "vpd/common/table.hpp"
#include "vpd/opt/optimizer.hpp"

int main(int argc, char** argv) {
  using namespace vpd;

  bool json = false;
  if (!benchio::parse_json_flag(argc, argv, &json)) return 2;

  const PowerDeliverySpec spec = paper_system();

  // The searched slice: both two-stage architectures, DSCH final stage,
  // 36..60 VRs, full allocation ranges. The coarse mesh keeps one
  // evaluation cheap; feasibility trends are resolution-stable here.
  opt::DesignSpace space;
  space.architectures = {ArchitectureKind::kA3_TwoStage12V,
                         ArchitectureKind::kA3_TwoStage6V};
  space.topologies = {TopologyKind::kDsch};
  space.vr_count = {36, 60};
  EvaluationOptions base;
  base.mesh_nodes = 11;

  MeshSolveCache cache;
  SweepConfig sweep;
  sweep.cache = &cache;

  const std::vector<double> epsilon = opt::default_epsilon(3);
  const std::vector<double> reference = opt::default_reference(3);

  // --- Exhaustive default grid --------------------------------------------
  std::vector<opt::DesignPoint> grid;
  for (ArchitectureKind arch : space.architectures) {
    for (TopologyKind topology : space.topologies) {
      for (unsigned n = space.vr_count.lo; n <= space.vr_count.hi; ++n) {
        opt::DesignPoint p;  // defaults: the calibrated allocation
        p.architecture = arch;
        p.topology = topology;
        p.vr_count = n;
        grid.push_back(p);
      }
    }
  }
  std::vector<SweepPoint> grid_points;
  grid_points.reserve(grid.size());
  for (const opt::DesignPoint& p : grid) {
    SweepPoint sp;
    sp.architecture = p.architecture;
    sp.topology = p.topology;
    sp.tech = p.tech;
    sp.options = opt::lower(p, base);
    sp.label = opt::design_point_key(p);
    grid_points.push_back(std::move(sp));
  }
  const SweepRunner runner(spec, sweep);
  const SweepReport grid_report = runner.run(grid_points);

  opt::ParetoArchive grid_archive(epsilon);
  std::size_t grid_feasible = 0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const ExplorationEntry& entry = grid_report.outcomes[i].entry;
    if (entry.excluded()) continue;
    ++grid_feasible;
    grid_archive.insert(
        i, opt::cheap_objectives_of(spec, grid[i], *entry.evaluation));
  }
  std::vector<std::vector<double>> grid_front;
  for (const opt::ArchiveEntry& e : grid_archive.entries()) {
    grid_front.push_back(e.objectives);
  }
  const double grid_hv = opt::hypervolume(grid_front, reference);

  // --- Seeded optimizer, strictly fewer evaluations -----------------------
  opt::OptimizerConfig config;
  config.population = 10;
  config.generations = 3;  // budget 40 < the grid's 50
  config.survivability.max_elites = 0;  // 3 objectives, like the grid
  config.base_options = base;
  config.sweep = sweep;
  const opt::DesignOptimizer optimizer(spec, space, config);
  const opt::OptimizeReport run = optimizer.run();
  const opt::OptimizeReport replay = optimizer.run();

  bool replay_identical = replay.front.size() == run.front.size();
  for (std::size_t i = 0; replay_identical && i < run.front.size(); ++i) {
    replay_identical =
        replay.front[i].candidate.id == run.front[i].candidate.id &&
        replay.front[i].objectives == run.front[i].objectives;
  }
  const bool fewer_evaluations = run.evaluations < grid.size();
  const bool reaches_grid = run.hypervolume >= grid_hv;

  TextTable table({"method", "evaluations", "front", "hypervolume"});
  table.add_row({"exhaustive grid", std::to_string(grid.size()),
                 std::to_string(grid_front.size()),
                 format_double(grid_hv, 6)});
  table.add_row({"optimizer", std::to_string(run.evaluations),
                 std::to_string(run.front.size()),
                 format_double(run.hypervolume, 6)});

  if (json) {
    benchio::JsonReport out("bench_optimize");
    out.add_table("methods", table);
    io::Value g = io::Value::object();
    g.set("evaluations", grid.size());
    g.set("feasible", grid_feasible);
    g.set("front_size", grid_front.size());
    g.set("hypervolume", grid_hv);
    out.add("grid", std::move(g));
    io::Value o = io::Value::object();
    o.set("evaluations", run.evaluations);
    o.set("candidates", run.candidates);
    o.set("front_size", run.front.size());
    o.set("hypervolume", run.hypervolume);
    out.add("optimizer", std::move(o));
    out.add("fewer_evaluations", fewer_evaluations);
    out.add("reaches_grid_hypervolume", reaches_grid);
    out.add("replay_identical", replay_identical);
    out.set_mesh_cache(cache.stats());
    out.set_observability(run.snapshot());
    out.print();
  } else {
    std::printf("Design-space search: optimizer vs exhaustive grid\n");
    std::printf("(A3@12V + A3@6V, DSCH, 36..60 VRs; grid holds the "
                "allocation knobs at their defaults)\n\n");
    std::printf("%s", table.to_string().c_str());
    std::printf("\nOptimizer: %zu candidates proposed, %zu generations, "
                "%.0f ms\n", run.candidates, run.generations_run,
                1e3 * run.wall_seconds);
    std::printf("Budget   : %zu evaluations vs the grid's %zu (%s)\n",
                run.evaluations, grid.size(),
                fewer_evaluations ? "fewer" : "NOT FEWER");
    std::printf("Quality  : hypervolume %.6f vs grid %.6f (%s)\n",
                run.hypervolume, grid_hv,
                reaches_grid ? "reached" : "NOT REACHED");
    std::printf("Replay   : same seed -> front %s\n",
                replay_identical ? "bit-identical" : "DIFFERS");
  }

  if (!fewer_evaluations || !reaches_grid || !replay_identical) {
    std::fprintf(stderr,
                 "bench_optimize: guarantee violated (fewer=%d reached=%d "
                 "replay=%d)\n",
                 int(fewer_evaluations), int(reaches_grid),
                 int(replay_identical));
    return 1;
  }
  return 0;
}
