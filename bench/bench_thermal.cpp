// Extension bench: electrothermal analysis of below-die conversion (A2).
// Converting a kilowatt directly under the die adds the VR losses to the
// die's own 2 W/mm^2 heat flux; conduction losses rise with temperature,
// closing a feedback loop. This quantifies the thermal cost of the
// paper's most efficient architecture.
#include <cstdio>
#include <iostream>

#include "bench_output.hpp"
#include "vpd/arch/evaluator.hpp"
#include "vpd/common/table.hpp"
#include "vpd/package/mesh_cache.hpp"
#include "vpd/thermal/thermal.hpp"
#include "vpd/workload/power_map.hpp"

int main(int argc, char** argv) {
  using namespace vpd;
  using namespace vpd::literals;

  bool json = false;
  if (!benchio::parse_json_flag(argc, argv, &json)) return 2;

  const PowerDeliverySpec spec = paper_system();

  // A2 / DSCH deployment from the Fig. 7 evaluation.
  MeshSolveCache cache;
  EvaluationOptions options;
  options.below_die_area_fraction = 1.6;
  options.mesh_cache = &cache;
  const ArchitectureEvaluation a2 = evaluate_architecture(
      ArchitectureKind::kA2_InterposerBelowDie, spec, TopologyKind::kDsch,
      DeviceTechnology::kGalliumNitride, options);

  TextTable t({"Cooling (K cm^2/W)", "Coolant", "Max Tj", "Mean Tj",
               "VR loss uplift", "Iterations"});
  for (double theta_cm2 : {0.05, 0.10, 0.15, 0.25}) {
    ThermalStack stack;
    stack.lateral_sheet_k_per_w = 9.5;
    stack.theta_to_coolant = theta_cm2 * 1e-4;
    stack.coolant_temperature = 40.0;
    const ThermalSolver solver(spec.die_side(), 21, stack);

    const Vector load = uniform_power_map(
        solver.mesh(), Current{spec.total_power.value});  // W per node
    std::vector<ThermalVr> vrs;
    const double per_vr_loss =
        a2.conversion_loss().value / a2.vr_count_stage2;
    for (unsigned k = 0; k < a2.vr_count_stage2; ++k) {
      ThermalVr vr;
      vr.node = (k * 53) % solver.mesh().node_count();
      vr.base_loss = Power{per_vr_loss};
      vr.tempco_per_k = 0.006;  // GaN Rds_on tempco
      vr.conduction_fraction = 0.8;
      vrs.push_back(vr);
    }
    const ElectrothermalResult r =
        solve_electrothermal(solver, load, vrs);
    t.add_row({format_double(theta_cm2, 2), "40 C",
               format_double(r.max_temperature, 1) + " C",
               format_double(r.mean_temperature, 1) + " C",
               format_percent(r.loss_uplift),
               std::to_string(r.iterations)});
  }

  if (json) {
    benchio::JsonReport report("bench_thermal");
    report.add("below_die_vrs", io::Value(a2.vr_count_stage2));
    report.add("conversion_loss_w", io::Value(a2.conversion_loss().value));
    report.add("die_power_w", io::Value(spec.total_power.value));
    report.add_table("cooling_sweep", t);
    report.set_mesh_cache(cache.stats());
    report.print();
    return 0;
  }

  std::printf("=== Extension: electrothermal view of A2 ===\n\n");
  std::printf("A2/DSCH: %u below-die VRs dissipating %.0f W beneath a "
              "%.0f W die.\n\n",
              a2.vr_count_stage2, a2.conversion_loss().value,
              spec.total_power.value);
  std::cout << t << '\n';

  std::printf(
      "Reading: with cold-plate-class cooling (<= 0.15 K cm^2/W) the "
      "below-die VRs stay\nwithin junction limits, but their conduction "
      "loss already runs 15-27%% above the\n25 C datasheet point; weaker "
      "cooling compounds quickly (and 0.25 K cm^2/W\nbreaches 120 C). The "
      "Fig. 7 loss budget should therefore be read as a cool-die\n"
      "bound — thermal co-design is the practical gate on A2's "
      "efficiency win.\n");
  return 0;
}
