// Micro-benchmarks (google-benchmark) of the numeric substrates: dense LU
// for the circuit engine, conjugate gradient on PDN meshes, full IR-drop
// solves at Fig. 7 scale, and transient stepping throughput.
#include <benchmark/benchmark.h>

#include "vpd/circuit/pwm.hpp"
#include "vpd/circuit/transient.hpp"
#include "vpd/common/matrix.hpp"
#include "vpd/common/rng.hpp"
#include "vpd/common/sparse.hpp"
#include "vpd/converters/netlist_builder.hpp"
#include "vpd/package/irdrop.hpp"
#include "vpd/package/mesh.hpp"

namespace {

using namespace vpd;
using namespace vpd::literals;

void BM_DenseLuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(42);
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  Vector b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_dense(a, b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DenseLuSolve)->RangeMultiplier(2)->Range(8, 128)->Complexity();

void BM_CgMeshSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const GridMesh mesh(22.36_mm, 22.36_mm, n, n, 2e-3);
  const CsrMatrix a = [&] {
    TripletList t = mesh.laplacian();
    t.add(0, 0, 1.0);
    return CsrMatrix(t);
  }();
  Vector b(mesh.node_count(), 1e-3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_cg(a, b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CgMeshSolve)->RangeMultiplier(2)->Range(8, 64)->Complexity();

void BM_IrDropFigureSevenScale(benchmark::State& state) {
  // The Fig. 7 A1 solve: 41x41 mesh, 48 periphery patch attachments.
  const GridMesh mesh(22.36_mm, 22.36_mm, 41, 41, 2e-3);
  std::vector<VrAttachment> vrs;
  for (int k = 0; k < 48; ++k) {
    const double s = 4.0 * 22.36e-3 * (k + 0.5) / 48.0;
    double x = 0.0, y = 0.0;
    const double side = 22.36e-3;
    if (s < side) {
      x = s;
    } else if (s < 2 * side) {
      x = side;
      y = s - side;
    } else if (s < 3 * side) {
      x = 3 * side - s;
      y = side;
    } else {
      y = 4 * side - s;
    }
    const auto patch = patch_attachment(mesh, Length{x}, Length{y},
                                        Length{1.4e-3}, 1.0_V,
                                        Resistance{100e-6});
    vrs.insert(vrs.end(), patch.begin(), patch.end());
  }
  const Vector sinks = uniform_sinks(mesh, Current{1000.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_irdrop(mesh, vrs, sinks));
  }
}
BENCHMARK(BM_IrDropFigureSevenScale);

void BM_TransientBuckCycle(benchmark::State& state) {
  // Cost of simulating one switching cycle of the Fig. 6 buck at 500
  // steps/cycle (LU cache warm after the first iteration).
  BuckCircuitParams p;
  p.f_sw = 1.0_MHz;
  const SimulatableConverter sim = build_buck_circuit(p);
  TransientOptions opts;
  opts.t_stop = Seconds{1.0 / 1e6};
  opts.dt = Seconds{1.0 / 1e6 / 500.0};
  opts.controller = sim.controller;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(sim.netlist, opts));
  }
}
BENCHMARK(BM_TransientBuckCycle);

void BM_SparseAssembly(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const GridMesh mesh(22.36_mm, 22.36_mm, n, n, 2e-3);
  for (auto _ : state) {
    TripletList t = mesh.laplacian();
    benchmark::DoNotOptimize(CsrMatrix(t));
  }
}
BENCHMARK(BM_SparseAssembly)->Arg(41)->Arg(81);

}  // namespace
