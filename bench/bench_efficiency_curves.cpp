// Efficiency-vs-load curves of the Table II converters — the data behind
// the published prototype plots the paper's characterization rests on
// ([8] Fig. 12, [9] Fig. 7, [10] Fig. 4). Each model passes exactly
// through its published peak point; the rest of the curve follows from
// the quadratic loss decomposition. Both the as-published device
// technology and the paper's all-GaN variants are shown.
#include <cstdio>
#include <iostream>

#include "bench_output.hpp"
#include "vpd/common/table.hpp"
#include "vpd/converters/catalog.hpp"

int main(int argc, char** argv) {
  using namespace vpd;
  using namespace vpd::literals;

  bool json = false;
  if (!benchio::parse_json_flag(argc, argv, &json)) return 2;
  benchio::JsonReport report("bench_efficiency_curves");

  if (!json) std::printf("=== Converter efficiency curves (48V-to-1V) ===\n\n");

  const double currents[] = {1.0, 3.0, 5.0, 10.0, 20.0, 30.0,
                             50.0, 70.0, 100.0};

  for (TopologyKind kind : all_topologies()) {
    const HybridConverterData data = topology_data(kind);
    const auto published =
        std::make_shared<HybridSwitchedConverter>(data);
    const auto gan = make_topology(kind, DeviceTechnology::kGalliumNitride);

    if (!json) {
      std::printf("%s (published: %s, peak %.1f%% @ %.0f A, max %.0f A):\n",
                  data.name.c_str(), to_string(data.reference_tech),
                  100.0 * data.peak_efficiency, data.current_at_peak.value,
                  data.max_current.value);
    }
    TextTable t({"Load", "as published", "all-GaN variant"});
    for (double i : currents) {
      const Current load{i};
      auto cell = [&](const Converter& c) -> std::string {
        if (!c.supports(load)) return "-";
        return format_percent(c.efficiency(load));
      };
      t.add_row({format_double(i, 0) + " A", cell(*published),
                 cell(*gan)});
    }
    if (json) {
      report.add_table(data.name, t);
    } else {
      std::cout << t << '\n';
    }
  }

  if (json) {
    report.print();
    return 0;
  }

  std::printf(
      "Check points: DPMIH 90.9%% at 30 A, DSCH 91.5%% at 10 A, 3LHD "
      "90.4%% at 3 A\nmatch the published peaks exactly (the calibration "
      "constraint); the GaN\nvariants shift the peak to lower current and "
      "raise it, as Section III\nanticipates for wide-bandgap devices.\n");
  return 0;
}
