// Fault-tolerance comparison of the paper's vertical architectures.
//
// For each of A1, A2, A3@12V, A3@6V (DSCH final stage, GaN) this bench
// runs a fault campaign on the sweep thread pool: the exhaustive N-1 set
// over every modeled fault site (VR dropout / derate / attach cluster /
// below-die stage-2 dropout / mesh-region damage) plus a Monte-Carlo
// sample of N-2 scenarios, then scores every fault state against the
// default resilience spec (5% DC droop budget, 1.2x VR overload
// allowance, per-site via-field EM capacity).
//
// `--json` switches the output to a machine-readable JSON document with
// the same numbers plus the per-architecture margin histograms.
//
// `--check` adds the batch-evaluation regression guard (exit 1 on
// violation): the campaigns must route scenarios through the batch
// engine with at least one block panel launched, and a loop-mode rerun
// of the A3@12V campaign (batch on, block off) must reproduce the
// pre-batch scalar loop bit for bit.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_output.hpp"
#include "vpd/common/table.hpp"
#include "vpd/fault/campaign.hpp"
#include "vpd/io/schema.hpp"

namespace {

/// Bit-exact campaign comparison: scenario populations are seeded, so
/// two runs of the same campaign see identical scenarios; the outcomes
/// must match on their full wire dumps, not within a tolerance.
bool campaigns_bit_identical(const vpd::FaultCampaignReport& a,
                             const vpd::FaultCampaignReport& b) {
  using vpd::io::dump;
  using vpd::io::to_json;
  if (a.outcomes.size() != b.outcomes.size()) return false;
  if (dump(to_json(a.nominal)) != dump(to_json(b.nominal))) return false;
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    const vpd::FaultScenarioOutcome& x = a.outcomes[i];
    const vpd::FaultScenarioOutcome& y = b.outcomes[i];
    if (x.evaluated != y.evaluated || x.survives() != y.survives())
      return false;
    if (x.evaluation.has_value() != y.evaluation.has_value()) return false;
    if (x.evaluation &&
        dump(to_json(*x.evaluation)) != dump(to_json(*y.evaluation))) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vpd;

  bool json = false;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      std::fprintf(stderr, "usage: %s [--json] [--check]\n", argv[0]);
      return 2;
    }
  }

  const PowerDeliverySpec spec = paper_system();
  MeshSolveCache cache;
  EvaluationOptions options;
  options.below_die_area_fraction = 1.6;  // paper mode (A2's 48 VRs)
  options.mesh_cache = &cache;

  FaultCampaignConfig config;
  config.nk_samples = 32;
  config.nk_order = 2;

  const ArchitectureKind architectures[] = {
      ArchitectureKind::kA1_InterposerPeriphery,
      ArchitectureKind::kA2_InterposerBelowDie,
      ArchitectureKind::kA3_TwoStage12V,
      ArchitectureKind::kA3_TwoStage6V,
  };

  const FaultCampaignRunner runner(spec, config);
  std::vector<FaultCampaignReport> reports;
  for (ArchitectureKind arch : architectures) {
    reports.push_back(
        runner.run(arch, TopologyKind::kDsch,
                   DeviceTechnology::kGalliumNitride, options));
  }

  // --- Batch-engine regression guards (--check) -----------------------------
  // The campaigns run with the default batch-first sweep: across the four
  // architectures the stage-2 dropouts and the order-2 Monte-Carlo samples
  // must produce same-operator groups with at least one multi-column block
  // panel, and the accounting must agree between the campaign reports and
  // the solver's own counters.
  bool guard_ok = true;
  if (check) {
    std::size_t panel_columns = 0;
    std::uint64_t block_panels = 0;
    for (const FaultCampaignReport& r : reports) {
      panel_columns += r.batch.panel_columns;
      block_panels += r.solver.cg_block_panels;
    }
    if (panel_columns == 0) {
      guard_ok = false;
      std::fprintf(stderr, "bench_fault_tolerance: no campaign routed a "
                           "multi-column panel through the batch engine\n");
    }
    if (block_panels == 0) {
      guard_ok = false;
      std::fprintf(stderr, "bench_fault_tolerance: solver.cg_block_panels "
                           "stayed 0 across every campaign\n");
    }

    // Loop mode (batch on, block off) must reproduce the pre-batch scalar
    // loop (batch off) bit for bit on the A3@12V campaign — the tightest
    // architecture with both stage-1 and stage-2 fault families.
    FaultCampaignConfig loop_config = config;
    loop_config.sweep.batch = true;
    loop_config.sweep.batch_block = false;
    FaultCampaignConfig scalar_config = config;
    scalar_config.sweep.batch = false;
    const FaultCampaignReport loop_report =
        FaultCampaignRunner(spec, loop_config)
            .run(ArchitectureKind::kA3_TwoStage12V, TopologyKind::kDsch,
                 DeviceTechnology::kGalliumNitride, options);
    const FaultCampaignReport scalar_report =
        FaultCampaignRunner(spec, scalar_config)
            .run(ArchitectureKind::kA3_TwoStage12V, TopologyKind::kDsch,
                 DeviceTechnology::kGalliumNitride, options);
    if (!campaigns_bit_identical(loop_report, scalar_report)) {
      guard_ok = false;
      std::fprintf(stderr, "bench_fault_tolerance: the loop-mode A3@12V "
                           "campaign diverges from the scalar loop\n");
    }
    if (loop_report.batch.grouped_points == 0) {
      guard_ok = false;
      std::fprintf(stderr, "bench_fault_tolerance: the loop-mode campaign "
                           "bypassed the batch engine entirely\n");
    }
  }

  constexpr std::size_t kHistogramBins = 8;

  if (json) {
    benchio::JsonReport out("bench_fault_tolerance");
    io::Value resilience = io::Value::object();
    resilience.set("droop_tolerance", config.resilience.droop_tolerance);
    resilience.set("vr_overcurrent_factor",
                   config.resilience.vr_overcurrent_factor);
    resilience.set("interconnect_stress_margin",
                   config.resilience.interconnect_stress_margin);
    out.add("spec", std::move(resilience));
    out.add("nk_samples", config.nk_samples);
    out.add("nk_order", config.nk_order);
    io::Value campaigns = io::Value::array();
    for (const FaultCampaignReport& r : reports) {
      const MarginHistogram h = r.margin_histogram(kHistogramBins);
      io::Value c = io::Value::object();
      c.set("architecture", to_string(r.architecture));
      c.set("topology", "DSCH");
      c.set("vr_count_stage1", r.nominal.vr_count_stage1);
      c.set("vr_count_stage2", r.nominal.vr_count_stage2);
      c.set("scenarios", r.scenario_count());
      c.set("survivors", r.survivor_count());
      c.set("survivability", r.survivability());
      c.set("nominal_droop_fraction",
            r.outcomes.front().resilience.droop_fraction);
      c.set("worst_droop_fraction", r.worst_droop_fraction());
      c.set("worst_load_shed_fraction", r.worst_load_shed_fraction());
      io::Value hist = io::Value::object();
      hist.set("lo", h.lo);
      hist.set("hi", h.hi);
      hist.set("unevaluated", h.unevaluated);
      io::Value counts = io::Value::array();
      for (std::size_t count : h.counts) counts.push_back(count);
      hist.set("counts", std::move(counts));
      c.set("margin_histogram", std::move(hist));
      io::Value batch = io::Value::object();
      batch.set("groups", r.batch.groups);
      batch.set("grouped_points", r.batch.grouped_points);
      batch.set("scalar_points", r.batch.scalar_points);
      batch.set("panel_columns", r.batch.panel_columns);
      batch.set("deduped_solves", r.batch.deduped_solves);
      c.set("batch", std::move(batch));
      c.set("wall_seconds", r.wall_seconds);
      campaigns.push_back(std::move(c));
    }
    out.add("campaigns", std::move(campaigns));
    if (check) out.add("guard_ok", guard_ok);
    out.set_mesh_cache(cache.stats());
    // Merge the per-architecture campaign snapshots: counters accumulate
    // per campaign; the merged document keeps the last architecture's
    // gauges, so expose only the aggregate counters here.
    obs::Snapshot merged;
    for (const FaultCampaignReport& r : reports) {
      const obs::Snapshot s = r.snapshot();
      const auto acc = [&](const char* name) {
        const std::uint64_t* prev = merged.counter(name);
        const std::uint64_t* cur = s.counter(name);
        merged.set_counter(name, (prev ? *prev : 0) + (cur ? *cur : 0));
      };
      acc("fault.scenarios");
      acc("fault.survivors");
      acc("fault.batch_groups");
      acc("fault.batch_grouped_points");
      acc("fault.batch_scalar_points");
      acc("fault.batch_panel_columns");
      acc("fault.batch_deduped_solves");
      acc("solver.cg_solves");
      acc("solver.cg_iterations");
      acc("solver.precond_factorizations");
      acc("solver.precond_reuses");
      acc("solver.cg_block_panels");
      acc("solver.cg_block_columns");
    }
    out.set_observability(merged);
    out.print();
    return guard_ok ? 0 : 1;
  }

  std::printf("=== Fault campaigns: N-1 exhaustive + %zu sampled N-%zu "
              "(DSCH final stage, GaN) ===\n\n",
              config.nk_samples, config.nk_order);
  TextTable t({"Architecture", "VRs", "Scenarios", "Survive", "Nominal droop",
               "Worst droop", "Worst shed", "Min margin", "Wall"});
  for (const FaultCampaignReport& r : reports) {
    const MarginHistogram h = r.margin_histogram(kHistogramBins);
    const std::string vrs =
        r.nominal.vr_count_stage1 > 0
            ? std::to_string(r.nominal.vr_count_stage1) + "+" +
                  std::to_string(r.nominal.vr_count_stage2)
            : std::to_string(r.nominal.vr_count_stage2);
    t.add_row({to_string(r.architecture), vrs,
               std::to_string(r.scenario_count()),
               format_double(100.0 * r.survivability(), 1) + " %",
               format_double(
                   100.0 * r.outcomes.front().resilience.droop_fraction, 2) +
                   " %",
               format_double(100.0 * r.worst_droop_fraction(), 2) + " %",
               format_double(100.0 * r.worst_load_shed_fraction(), 1) + " %",
               format_double(h.lo, 3),
               format_double(1e3 * r.wall_seconds, 0) + " ms"});
  }
  std::cout << t << '\n';

  std::printf(
      "Observations:\n"
      " * A1 fails the 5%% DC droop budget even fault-free: periphery-only\n"
      "   lateral distribution at 1 V droops ~14%% at the die center — the\n"
      "   paper's core argument for vertical power delivery. Its\n"
      "   survivability is 0 by definition; the shed column shows how much\n"
      "   load a power-cap policy must drop to recover.\n"
      " * A2 survives most single faults: 48 below-die VRs leave ~2%% load\n"
      "   swing per dropout, but die-center dropouts concentrate current\n"
      "   onto already-hot neighbours (the Section IV 1.5x spread) and\n"
      "   exhaust the 1.2x overload allowance first.\n"
      " * The two-stage A3s regulate at the die with an intermediate-rail\n"
      "   mesh at 12 V / 6 V, so the same absolute droop costs 12x / 6x\n"
      "   less margin; stage-1 dropouts are their dominant vulnerability,\n"
      "   and the 6 V variant's doubled rail current makes it the tighter\n"
      "   of the two.\n");
  if (check) {
    std::printf("\nGuard: %s (batch panels engaged, loop mode bit-identical "
                "to the scalar loop).\n",
                guard_ok ? "OK" : "VIOLATED - see stderr");
  }
  return guard_ok ? 0 : 1;
}
