// Ablation: sensitivity of the Fig. 7 conclusions to the one calibrated
// parameter of the PPDN model — the effective POL-rail distribution sheet
// resistance. The paper's qualitative ordering should be robust across a
// plausible range; this sweep verifies it.
#include <cstdio>
#include <iostream>

#include "vpd/arch/evaluator.hpp"
#include "vpd/common/table.hpp"

int main() {
  using namespace vpd;

  const PowerDeliverySpec spec = paper_system();

  std::printf("=== Ablation: distribution sheet resistance sensitivity "
              "===\n\n");
  std::printf("Loss fraction per architecture (DSCH, GaN) as the 1 V rail "
              "metal quality varies:\n\n");

  TextTable t({"Sheet (mOhm/sq)", "A1", "A2", "A3@12V", "A3@6V",
               "ordering holds"});
  for (double rs : {0.5e-3, 1e-3, 2e-3, 4e-3, 8e-3}) {
    EvaluationOptions options;
    options.below_die_area_fraction = 1.6;
    options.distribution_sheet_ohms = rs;
    auto loss = [&](ArchitectureKind arch) {
      return evaluate_architecture(arch, spec, TopologyKind::kDsch,
                                   DeviceTechnology::kGalliumNitride,
                                   options)
          .loss_fraction(spec.total_power);
    };
    const double a1 = loss(ArchitectureKind::kA1_InterposerPeriphery);
    const double a2 = loss(ArchitectureKind::kA2_InterposerBelowDie);
    const double a3_12 = loss(ArchitectureKind::kA3_TwoStage12V);
    const double a3_6 = loss(ArchitectureKind::kA3_TwoStage6V);
    const bool ordering =
        a2 < a1 && a1 < a3_12 && a3_12 < a3_6;  // paper's Fig. 7 order
    t.add_row({format_double(rs * 1e3, 1), format_percent(a1),
               format_percent(a2), format_percent(a3_12),
               format_percent(a3_6), ordering ? "yes" : "no"});
  }
  std::cout << t << '\n';

  std::printf("The single-stage-beats-two-stage conclusion and the "
              "A2 < A1 ordering are\nstable across a 16x range of the "
              "calibration parameter; only the absolute\npercentages "
              "move.\n");
  return 0;
}
