// Ablation: sensitivity of the Fig. 7 conclusions to the one calibrated
// parameter of the PPDN model — the effective POL-rail distribution sheet
// resistance. The paper's qualitative ordering should be robust across a
// plausible range; this sweep verifies it.
//
// The 5 x 4 grid (sheet variants x architectures) runs as one
// SweepRunner batch; each sheet value is a distinct mesh operator, so the
// cache reports exactly five misses regardless of thread scheduling.
#include <cstdio>
#include <iostream>

#include "bench_output.hpp"
#include "vpd/common/table.hpp"
#include "vpd/sweep/sweep.hpp"

int main(int argc, char** argv) {
  using namespace vpd;

  bool json = false;
  if (!benchio::parse_json_flag(argc, argv, &json)) return 2;

  const PowerDeliverySpec spec = paper_system();
  const double sheets[] = {0.5e-3, 1e-3, 2e-3, 4e-3, 8e-3};
  const ArchitectureKind archs[] = {
      ArchitectureKind::kA1_InterposerPeriphery,
      ArchitectureKind::kA2_InterposerBelowDie,
      ArchitectureKind::kA3_TwoStage12V,
      ArchitectureKind::kA3_TwoStage6V,
  };

  SweepGridBuilder builder;
  builder.architectures({archs[0], archs[1], archs[2], archs[3]})
      .topologies({TopologyKind::kDsch});
  for (const double rs : sheets) {
    EvaluationOptions options;
    options.below_die_area_fraction = 1.6;
    options.distribution_sheet_ohms = rs;
    builder.add_option_variant(options,
                               format_double(rs * 1e3, 1) + " mOhm/sq");
  }
  const std::vector<SweepPoint> points = builder.build();

  const SweepRunner runner(spec);
  const SweepReport report = runner.run(points);

  TextTable t({"Sheet (mOhm/sq)", "A1", "A2", "A3@12V", "A3@6V",
               "ordering holds"});
  const std::size_t per_variant = std::size(archs);
  for (std::size_t v = 0; v < std::size(sheets); ++v) {
    // Excluded entries (rating exceeded at extreme sheet values) fall
    // back to the flagged extrapolated estimate, marked with '*'.
    double loss[std::size(archs)];
    bool flagged[std::size(archs)] = {};
    for (std::size_t a = 0; a < per_variant; ++a) {
      const SweepOutcome& o = report.outcomes[v * per_variant + a];
      const auto& e =
          o.entry.evaluation ? o.entry.evaluation : o.entry.extrapolated;
      loss[a] = e ? e->loss_fraction(spec.total_power) : 1.0;
      flagged[a] = o.entry.excluded();
    }
    const bool ordering = loss[1] < loss[0] && loss[0] < loss[2] &&
                          loss[2] < loss[3];  // paper's Fig. 7 order
    auto cell = [&](std::size_t a) {
      return format_percent(loss[a]) + (flagged[a] ? "*" : "");
    };
    t.add_row({format_double(sheets[v] * 1e3, 1), cell(0), cell(1),
               cell(2), cell(3), ordering ? "yes" : "no"});
  }

  if (json) {
    benchio::JsonReport out("bench_ablation_sheet");
    out.add_table("sensitivity", t);
    io::Value sweep = io::Value::object();
    sweep.set("points", report.outcomes.size());
    sweep.set("threads", report.threads_used);
    sweep.set("wall_seconds", report.wall_seconds);
    out.add("sweep", std::move(sweep));
    out.set_mesh_cache(report.cache_stats);
    out.print();
    return 0;
  }

  std::printf("=== Ablation: distribution sheet resistance sensitivity "
              "===\n\n");
  std::printf("Loss fraction per architecture (DSCH, GaN) as the 1 V rail "
              "metal quality varies:\n\n");
  std::cout << t << '\n';
  std::printf("(* = over the converter rating at that corner; flagged "
              "extrapolation, excluded from Fig. 7.)\n\n");

  std::printf(
      "Sweep engine: %zu points on %zu threads in %.1f ms; mesh cache "
      "%zu hits / %zu misses (one per sheet value).\n\n",
      report.outcomes.size(), report.threads_used,
      1e3 * report.wall_seconds, report.cache_stats.hits,
      report.cache_stats.misses);

  std::printf("The single-stage-beats-two-stage conclusion and the "
              "A2 < A1 ordering are\nstable across a 16x range of the "
              "calibration parameter; only the absolute\npercentages "
              "move.\n");
  return 0;
}
