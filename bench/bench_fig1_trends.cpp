// Fig. 1 reproduction: power and current-density demand of state-of-the-art
// HPC chips (left) and server systems (right), with power-delivery-system
// efficiency as the marker-size dimension. The paper's reading: chips are
// rapidly approaching 1 kW / ~1 A/mm^2, servers ~20 kW, while PDS
// efficiency erodes ([1] reports >30% loss on leading AI hardware).
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_output.hpp"
#include "vpd/common/table.hpp"
#include "vpd/core/trends.hpp"

int main(int argc, char** argv) {
  using namespace vpd;

  bool json = false;
  if (!benchio::parse_json_flag(argc, argv, &json)) return 2;

  auto make_table = [](const std::vector<HpcSystemPoint>& points) {
    TextTable t({"System", "Year", "Power", "Silicon", "J (A/mm^2)",
                 "PDS eff"});
    for (const HpcSystemPoint& p : points) {
      t.add_row({p.name, std::to_string(p.year),
                 format_si(p.power.value) + "W",
                 format_double(as_mm2(p.silicon_area), 0) + " mm^2",
                 format_double(as_A_per_mm2(p.current_density()), 2),
                 format_percent(p.pds_efficiency, 0)});
    }
    return t;
  };

  const TextTable chip_table = make_table(hpc_chip_dataset());
  const TextTable server_table = make_table(hpc_server_dataset());

  const auto chips = hpc_chip_dataset();
  const auto servers = hpc_server_dataset();
  double max_chip_w = 0.0, max_density = 0.0, max_server_w = 0.0;
  double min_eff = 1.0;
  for (const auto& c : chips) {
    max_chip_w = std::max(max_chip_w, c.power.value);
    max_density =
        std::max(max_density, as_A_per_mm2(c.current_density()));
    min_eff = std::min(min_eff, c.pds_efficiency);
  }
  for (const auto& s : servers)
    max_server_w = std::max(max_server_w, s.power.value);

  if (json) {
    benchio::JsonReport report("bench_fig1_trends");
    report.add_table("chips", chip_table);
    report.add_table("servers", server_table);
    report.add("max_chip_power_w", io::Value(max_chip_w));
    report.add("max_current_density_a_per_mm2", io::Value(max_density));
    report.add("max_server_power_w", io::Value(max_server_w));
    report.add("worst_chip_pds_efficiency", io::Value(min_eff));
    report.print();
    return 0;
  }

  std::printf("=== Figure 1: HPC power and current-density demand ===\n\n");
  std::printf("Individual chips (Fig. 1, left):\n");
  std::cout << chip_table << '\n';
  std::printf("Server systems (Fig. 1, right):\n");
  std::cout << server_table << '\n';

  std::printf("Headline readings (paper claims in brackets):\n");
  std::printf("  max chip power      : %4.0f W    [approaching 1000 W]\n",
              max_chip_w);
  std::printf("  max current density : %4.2f A/mm^2 [approaching 1 A/mm^2]\n",
              max_density);
  std::printf("  max server power    : %4.1f kW  [~20 kW]\n",
              max_server_w / 1000.0);
  std::printf("  worst chip PDS eff  : %4.0f%%    [>30%% loss reported, [1]]\n",
              100.0 * min_eff);
  return 0;
}
