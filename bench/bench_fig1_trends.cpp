// Fig. 1 reproduction: power and current-density demand of state-of-the-art
// HPC chips (left) and server systems (right), with power-delivery-system
// efficiency as the marker-size dimension. The paper's reading: chips are
// rapidly approaching 1 kW / ~1 A/mm^2, servers ~20 kW, while PDS
// efficiency erodes ([1] reports >30% loss on leading AI hardware).
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "vpd/common/table.hpp"
#include "vpd/core/trends.hpp"

int main() {
  using namespace vpd;

  std::printf("=== Figure 1: HPC power and current-density demand ===\n\n");

  auto print_dataset = [](const char* title,
                          const std::vector<HpcSystemPoint>& points) {
    std::printf("%s\n", title);
    TextTable t({"System", "Year", "Power", "Silicon", "J (A/mm^2)",
                 "PDS eff"});
    for (const HpcSystemPoint& p : points) {
      t.add_row({p.name, std::to_string(p.year),
                 format_si(p.power.value) + "W",
                 format_double(as_mm2(p.silicon_area), 0) + " mm^2",
                 format_double(as_A_per_mm2(p.current_density()), 2),
                 format_percent(p.pds_efficiency, 0)});
    }
    std::cout << t << '\n';
  };

  print_dataset("Individual chips (Fig. 1, left):", hpc_chip_dataset());
  print_dataset("Server systems (Fig. 1, right):", hpc_server_dataset());

  const auto chips = hpc_chip_dataset();
  const auto servers = hpc_server_dataset();
  double max_chip_w = 0.0, max_density = 0.0, max_server_w = 0.0;
  double min_eff = 1.0;
  for (const auto& c : chips) {
    max_chip_w = std::max(max_chip_w, c.power.value);
    max_density =
        std::max(max_density, as_A_per_mm2(c.current_density()));
    min_eff = std::min(min_eff, c.pds_efficiency);
  }
  for (const auto& s : servers)
    max_server_w = std::max(max_server_w, s.power.value);

  std::printf("Headline readings (paper claims in brackets):\n");
  std::printf("  max chip power      : %4.0f W    [approaching 1000 W]\n",
              max_chip_w);
  std::printf("  max current density : %4.2f A/mm^2 [approaching 1 A/mm^2]\n",
              max_density);
  std::printf("  max server power    : %4.1f kW  [~20 kW]\n",
              max_server_w / 1000.0);
  std::printf("  worst chip PDS eff  : %4.0f%%    [>30%% loss reported, [1]]\n",
              100.0 * min_eff);
  return 0;
}
