// Ablation: single-stage vs two-stage conversion across intermediate rail
// voltages. The paper evaluates A3 at 12 V and 6 V; this sweep extends the
// axis to show where (if anywhere) a two-stage split would win, and how
// the intermediate-rail current drives the horizontal loss.
#include <cstdio>
#include <iostream>

#include "bench_output.hpp"
#include "vpd/common/table.hpp"
#include "vpd/sweep/sweep.hpp"

int main(int argc, char** argv) {
  using namespace vpd;

  bool json = false;
  if (!benchio::parse_json_flag(argc, argv, &json)) return 2;

  const PowerDeliverySpec spec = paper_system();
  EvaluationOptions options;
  options.below_die_area_fraction = 1.6;

  const std::vector<SweepPoint> points =
      SweepGridBuilder(options)
          .architectures({ArchitectureKind::kA1_InterposerPeriphery,
                          ArchitectureKind::kA2_InterposerBelowDie,
                          ArchitectureKind::kA3_TwoStage12V,
                          ArchitectureKind::kA3_TwoStage6V})
          .topologies({TopologyKind::kDsch})
          .build();
  const SweepRunner runner(spec);
  const SweepReport report = runner.run(points);

  TextTable t({"Scheme", "Intermediate", "I_mid", "Horizontal",
               "VR stage 1", "VR stage 2", "Total loss"});
  for (const SweepOutcome& o : report.outcomes) {
    const ArchitectureEvaluation& ev =
        o.entry.evaluation ? *o.entry.evaluation : *o.entry.extrapolated;
    const ArchitectureKind arch = o.point.architecture;
    const bool two_stage = arch == ArchitectureKind::kA3_TwoStage12V ||
                           arch == ArchitectureKind::kA3_TwoStage6V;
    if (!two_stage) {
      t.add_row({std::string("single-stage (") + to_string(arch) + ")", "-",
                 "-", format_double(ev.horizontal_loss.value, 1) + " W", "-",
                 format_double(ev.conversion_stage2.value, 1) + " W",
                 format_percent(ev.loss_fraction(spec.total_power))});
      continue;
    }
    const double v_mid = intermediate_voltage(arch).value;
    t.add_row({std::string("two-stage (") + to_string(arch) + ")",
               format_double(v_mid, 0) + " V",
               format_double((spec.total_power.value +
                              ev.conversion_stage2.value) /
                                 v_mid,
                             0) +
                   " A",
               format_double(ev.horizontal_loss.value, 1) + " W",
               format_double(ev.conversion_stage1.value, 1) + " W",
               format_double(ev.conversion_stage2.value, 1) + " W",
               format_percent(ev.loss_fraction(spec.total_power))});
  }

  if (json) {
    benchio::JsonReport out("bench_ablation_stages");
    out.add_table("staging", t);
    io::Value sweep = io::Value::object();
    sweep.set("points", report.outcomes.size());
    sweep.set("threads", report.threads_used);
    sweep.set("wall_seconds", report.wall_seconds);
    out.add("sweep", std::move(sweep));
    out.set_mesh_cache(report.cache_stats);
    out.print();
    return 0;
  }

  std::printf("=== Ablation: conversion staging (DSCH final stage) ===\n\n");
  std::cout << t << '\n';

  std::printf(
      "Sweep engine: %zu points on %zu threads in %.1f ms; mesh cache "
      "%zu hits / %zu misses.\n\n",
      report.outcomes.size(), report.threads_used,
      1e3 * report.wall_seconds, report.cache_stats.hits,
      report.cache_stats.misses);

  std::printf(
      "Reading: with the paper's methodology (a converter's published\n"
      "efficiency curve applies to whatever power it processes), the "
      "first stage\nadds ~10%% of throughput as loss while saving only a "
      "few watts of\nhorizontal loss — single-stage conversion wins, as "
      "Fig. 7 concludes. The\n12 V intermediate rail beats 6 V because it "
      "quarters the rail's I^2 R.\n");
  return 0;
}
