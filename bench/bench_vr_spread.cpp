// Section IV per-VR load-sharing reproduction: "With A1, the current
// delivered by various converters varies between 16 and 27 amperes.
// Alternatively, with A2, the individual converters placed below the
// center of the die provide as much as 93 amperes per VR while others
// provide as little as 10 amperes per VR."
//
// The library computes these from the mesh IR-drop solve. Uniform load
// reproduces A1's band and A2's high-end; the paper's full 10..93 A A2
// range additionally requires a non-uniform (hotspot) workload, which the
// paper does not specify — shown here explicitly. The four scenarios run
// as one SweepRunner batch: they share the die mesh, so the sweep cache
// assembles it once for all four points.
#include <cstdio>
#include <iostream>

#include "bench_output.hpp"
#include "vpd/common/table.hpp"
#include "vpd/sweep/sweep.hpp"
#include "vpd/workload/power_map.hpp"

int main(int argc, char** argv) {
  using namespace vpd;

  bool json = false;
  if (!benchio::parse_json_flag(argc, argv, &json)) return 2;

  const PowerDeliverySpec spec = paper_system();
  EvaluationOptions base;
  base.below_die_area_fraction = 1.6;

  struct Case {
    const char* label;
    ArchitectureKind arch;
    TopologyKind topo;
    bool hotspot;
    unsigned fixed_vrs;  // 0 = automatic allocation
    const char* paper;
  };
  const Case cases[] = {
      {"A1 / DSCH, uniform load", ArchitectureKind::kA1_InterposerPeriphery,
       TopologyKind::kDsch, false, 0, "16..27 A"},
      {"A2 / DPMIH, uniform load", ArchitectureKind::kA2_InterposerBelowDie,
       TopologyKind::kDpmih, false, 0, "up to 93 A"},
      {"A2 / 48 VRs, center hotspot",
       ArchitectureKind::kA2_InterposerBelowDie, TopologyKind::kDsch, true,
       48, "10..93 A"},
      {"A1 / DPMIH, uniform load", ArchitectureKind::kA1_InterposerPeriphery,
       TopologyKind::kDpmih, false, 0, "(not reported)"},
  };

  std::vector<SweepPoint> points;
  for (const Case& c : cases) {
    SweepPoint p;
    p.architecture = c.arch;
    p.topology = c.topo;
    p.options = base;
    p.options.fixed_final_stage_vrs = c.fixed_vrs;
    if (c.hotspot) {
      p.options.sink_map = [](const GridMesh& mesh, Current total) {
        return hotspot_power_map(mesh, total, 0.5, 0.5, 0.15, 0.33);
      };
    }
    p.label = c.label;
    points.push_back(std::move(p));
  }

  const SweepRunner runner(spec);
  const SweepReport report = runner.run(points);

  TextTable t({"Scenario", "VRs", "Min", "Mean", "Max", "Max/Min",
               "Paper", "Within rating"});
  for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
    const SweepOutcome& o = report.outcomes[i];
    // Over-rating scenarios still carry their flagged extrapolation; the
    // spread itself is what this bench reports.
    const ArchitectureEvaluation& ev =
        o.entry.evaluation ? *o.entry.evaluation : *o.entry.extrapolated;
    const Summary s = *ev.vr_current_spread;
    t.add_row({cases[i].label, std::to_string(ev.vr_count_stage2),
               format_double(s.min, 1) + " A",
               format_double(s.mean, 1) + " A",
               format_double(s.max, 1) + " A",
               format_double(s.max / s.min, 1) + "x", cases[i].paper,
               ev.within_rating ? "yes" : "NO"});
  }

  if (json) {
    benchio::JsonReport out("bench_vr_spread");
    out.add_table("scenarios", t);
    io::Value sweep = io::Value::object();
    sweep.set("points", report.outcomes.size());
    sweep.set("threads", report.threads_used);
    sweep.set("wall_seconds", report.wall_seconds);
    out.add("sweep", std::move(sweep));
    out.set_mesh_cache(report.cache_stats);
    out.print();
    return 0;
  }

  std::printf("=== Section IV: per-VR current spread ===\n\n");
  std::cout << t << '\n';

  std::printf(
      "Sweep engine: %zu points on %zu threads in %.1f ms; mesh cache "
      "%zu hits / %zu misses (one shared die mesh).\n\n",
      report.outcomes.size(), report.threads_used,
      1e3 * report.wall_seconds, report.cache_stats.hits,
      report.cache_stats.misses);

  std::printf(
      "Observations:\n"
      " * A1's mid-edge VRs carry the most current and corner VRs the "
      "least; the max\n   stays inside the DSCH 30 A rating, as the paper "
      "requires for Fig. 7.\n"
      " * A2's below-die DPMIH VRs approach their 100 A rating near the "
      "die center —\n   the paper's 93 A observation. The low tail (10 A) "
      "appears once the load is\n   non-uniform, supporting the paper's "
      "remark that A2 converters must support\n   a much broader load "
      "range than A1's.\n");
  return 0;
}
