// Fig. 7 reproduction — the paper's headline result: PCB-to-POL power
// loss of the proposed vertical power delivery architectures, split into
// vertical interconnect, horizontal interconnect, and VR conversion loss,
// normalized to the 1 kW available at the PCB.
//
// The grid is evaluated twice: once serially through ArchitectureExplorer
// (the reference path) and once through the parallel SweepRunner with the
// shared mesh-operator cache. The two must agree bit for bit — the sweep
// engine's determinism contract — and the timing comparison is printed.
//
// Paper claims checked at the bottom:
//  * A0 loses >40%; the proposed architectures reach ~80% efficiency;
//  * loss is dominated by VRs (>10%) and horizontal interconnect, with
//    vertical interconnect negligible and total PPDN <10%;
//  * two-stage conversion (A3) is less efficient than single-stage A1/A2;
//  * 3LHD rows are N/A: the ~21 A per-VR load exceeds its 12 A rating;
//  * horizontal loss shrinks ~19x / ~7x for A3@12V / A3@6V vs A0.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "bench_output.hpp"
#include "vpd/common/table.hpp"
#include "vpd/core/explorer.hpp"
#include "vpd/sweep/sweep.hpp"

namespace {

bool entries_identical(const vpd::ExplorationEntry& a,
                       const vpd::ExplorationEntry& b) {
  if (a.excluded() != b.excluded()) return false;
  const auto same = [](const vpd::ArchitectureEvaluation& x,
                       const vpd::ArchitectureEvaluation& y) {
    return x.total_loss().value == y.total_loss().value &&
           x.vertical_loss.value == y.vertical_loss.value &&
           x.horizontal_loss.value == y.horizontal_loss.value &&
           x.input_power.value == y.input_power.value &&
           x.cg_iterations == y.cg_iterations;
  };
  if (a.evaluation && !same(*a.evaluation, *b.evaluation)) return false;
  if (a.extrapolated.has_value() != b.extrapolated.has_value()) return false;
  if (a.extrapolated && !same(*a.extrapolated, *b.extrapolated)) {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vpd;

  bool json = false;
  if (!benchio::parse_json_flag(argc, argv, &json)) return 2;

  const PowerDeliverySpec spec = paper_system();
  EvaluationOptions options;
  options.below_die_area_fraction = 1.6;  // paper mode, see EXPERIMENTS.md

  // --- Before: serial explorer, one mesh assembly per point ------------------
  const auto serial_start = std::chrono::steady_clock::now();
  const ArchitectureExplorer explorer(spec, options);
  const ExplorationResult serial = explorer.explore();
  const double serial_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    serial_start)
          .count();

  // --- After: parallel sweep over the same grid, cached mesh operators -------
  const std::vector<SweepPoint> points = SweepGridBuilder(options).build();
  SweepConfig config;  // threads = hardware concurrency, cache on
  const SweepRunner runner(spec, config);
  const SweepReport sweep = runner.run(points);

  ExplorationResult result;
  result.spec = spec;
  for (const SweepOutcome& o : sweep.outcomes) result.entries.push_back(o.entry);

  if (serial.entries.size() != result.entries.size()) {
    std::fprintf(stderr, "sweep grid does not match the explorer grid\n");
    return EXIT_FAILURE;
  }
  for (std::size_t i = 0; i < serial.entries.size(); ++i) {
    if (!entries_identical(serial.entries[i], result.entries[i])) {
      std::fprintf(stderr,
                   "parallel sweep diverged from the serial explorer at "
                   "point %zu (%s)\n",
                   i, sweep.outcomes[i].point.label.c_str());
      return EXIT_FAILURE;
    }
  }

  TextTable t({"Architecture", "Converter", "Vertical", "Horizontal",
               "VR stage 1", "VR stage 2", "Total", "Efficiency"});
  for (const ExplorationEntry& entry : result.entries) {
    const std::string topo =
        entry.topology ? to_string(*entry.topology) : "PCB VR";
    if (entry.excluded()) {
      t.add_row({to_string(entry.architecture), topo, "-", "-", "-", "-",
                 "N/A", "-"});
      continue;
    }
    const ArchitectureEvaluation& ev = *entry.evaluation;
    const double budget = spec.total_power.value;
    t.add_row({to_string(entry.architecture), topo,
               format_percent(ev.vertical_loss.value / budget, 2),
               format_percent(ev.horizontal_loss.value / budget),
               format_percent(ev.conversion_stage1.value / budget),
               format_percent(ev.conversion_stage2.value / budget),
               format_percent(ev.loss_fraction(spec.total_power)),
               format_percent(ev.efficiency(spec.total_power))});
  }

  if (json) {
    benchio::JsonReport out("bench_fig7_loss");
    out.add_table("loss_breakdown", t);
    io::Value sweep_info = io::Value::object();
    sweep_info.set("points", points.size());
    sweep_info.set("threads", sweep.threads_used);
    sweep_info.set("serial_seconds", serial_seconds);
    sweep_info.set("wall_seconds", sweep.wall_seconds);
    sweep_info.set("speedup", serial_seconds / sweep.wall_seconds);
    sweep_info.set("cg_iterations", sweep.total_cg_iterations());
    out.add("sweep", std::move(sweep_info));
    io::Value extrapolated = io::Value::array();
    for (ArchitectureKind arch : {ArchitectureKind::kA1_InterposerPeriphery,
                                  ArchitectureKind::kA2_InterposerBelowDie}) {
      const auto& entry = result.find(arch, TopologyKind::kDickson);
      if (!entry.extrapolated) continue;
      io::Value e = io::Value::object();
      e.set("architecture", to_string(arch));
      e.set("loss_fraction",
            entry.extrapolated->loss_fraction(spec.total_power));
      e.set("per_vr_current_a",
            entry.extrapolated->vr_current_spread
                ? entry.extrapolated->vr_current_spread->mean
                : 0.0);
      extrapolated.push_back(std::move(e));
    }
    out.add("dickson_extrapolated", std::move(extrapolated));
    out.set_mesh_cache(sweep.cache_stats);
    out.set_observability(sweep.snapshot());
    out.print();
    return 0;
  }

  std::printf("=== Figure 7: PCB-to-POL loss breakdown (%% of 1 kW) ===\n\n");
  std::cout << t << '\n';

  std::printf(
      "Sweep engine: %zu points, %zu threads — serial explorer %.1f ms, "
      "parallel+cached sweep %.1f ms (%.2fx); mesh cache %zu hits / %zu "
      "misses; %zu CG iterations; parallel results bit-identical to "
      "serial.\n\n",
      points.size(), sweep.threads_used, 1e3 * serial_seconds,
      1e3 * sweep.wall_seconds, serial_seconds / sweep.wall_seconds,
      sweep.cache_stats.hits, sweep.cache_stats.misses,
      sweep.total_cg_iterations());

  // --- Claim-by-claim verification against the paper --------------------------
  const auto& a0 = *result.find(ArchitectureKind::kA0_PcbConversion)
                        .evaluation;
  const auto& a1 = *result.find(ArchitectureKind::kA1_InterposerPeriphery,
                                TopologyKind::kDsch)
                        .evaluation;
  const auto& a2 = *result.find(ArchitectureKind::kA2_InterposerBelowDie,
                                TopologyKind::kDsch)
                        .evaluation;
  const auto& a3_12 = *result.find(ArchitectureKind::kA3_TwoStage12V,
                                   TopologyKind::kDsch)
                           .evaluation;
  const auto& a3_6 = *result.find(ArchitectureKind::kA3_TwoStage6V,
                                  TopologyKind::kDsch)
                          .evaluation;

  auto check = [](bool ok, const char* text) {
    std::printf("  [%s] %s\n", ok ? "ok" : "!!", text);
  };
  std::printf("Paper claims (DSCH columns):\n");
  check(a0.loss_fraction(spec.total_power) > 0.40,
        "A0 (traditional) loses over 40%");
  check(a1.efficiency(spec.total_power) > 0.78 &&
            a2.efficiency(spec.total_power) > 0.78,
        "proposed single-stage architectures reach ~80% efficiency");
  check(a0.vertical_loss.value < 5.0 && a1.vertical_loss.value < 10.0,
        "vertical interconnect loss is negligible");
  check(a1.conversion_loss().value > 100.0 &&
            a3_12.conversion_loss().value > 100.0,
        "converters account for >10% loss in every proposed architecture");
  check(a1.ppdn_loss().value < 100.0 && a2.ppdn_loss().value < 100.0 &&
            a3_12.ppdn_loss().value < 100.0,
        "PPDN loss stays below 10% in the proposed architectures");
  check(a3_12.total_loss().value > a1.total_loss().value &&
            a3_12.total_loss().value > a2.total_loss().value,
        "two-stage conversion is less efficient than single-stage A1/A2");
  check(a1.input_power.value ==
            spec.total_power.value + a1.total_loss().value,
        "input power balances delivered power plus every modeled loss");
  std::printf(
      "  [--] horizontal-loss reduction vs A0: %.0fx (A3@12V, paper 19x), "
      "%.0fx (A3@6V, paper 7x)\n",
      a0.horizontal_loss.value / a3_12.horizontal_loss.value,
      a0.horizontal_loss.value / a3_6.horizontal_loss.value);
  std::printf("  [--] per-VR currents: A1 %.0f..%.0f A (paper 16..27), "
              "A2/DPMIH see bench_vr_spread\n",
              a1.vr_current_spread->min, a1.vr_current_spread->max);

  std::printf(
      "\nNote on 3LHD: the paper deploys 48 VRs per architecture, putting "
      "3LHD at\n~21 A per VR (beyond its 12 A rating) and excluding it "
      "from Fig. 7 entirely.\nOur allocator reaches the same exclusion for "
      "A1/A2; for the two-stage A3 it\nfinds a denser feasible deployment "
      "(88 VRs at ~11 A), so those rows carry a\nmodel-derived estimate "
      "the paper does not report.\n");

  // Extrapolated 3LHD estimates, clearly flagged (the paper omits them).
  std::printf("\n3LHD extrapolated estimates (not in the paper's figure):\n");
  for (ArchitectureKind arch : {ArchitectureKind::kA1_InterposerPeriphery,
                                ArchitectureKind::kA2_InterposerBelowDie}) {
    const auto& entry = result.find(arch, TopologyKind::kDickson);
    if (entry.extrapolated) {
      std::printf("  %-7s: ~%.1f%% total loss at %.1f A per VR "
                  "(beyond the 12 A rating)\n",
                  to_string(arch),
                  100.0 * entry.extrapolated->loss_fraction(
                              spec.total_power),
                  entry.extrapolated->vr_current_spread
                      ? entry.extrapolated->vr_current_spread->mean
                      : 0.0);
    }
  }
  return 0;
}
