# Empty compiler generated dependencies file for vpd_report.
# This may be replaced when dependencies are built.
