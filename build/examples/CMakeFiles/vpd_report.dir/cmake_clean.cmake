file(REMOVE_RECURSE
  "CMakeFiles/vpd_report.dir/vpd_report.cpp.o"
  "CMakeFiles/vpd_report.dir/vpd_report.cpp.o.d"
  "vpd_report"
  "vpd_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpd_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
