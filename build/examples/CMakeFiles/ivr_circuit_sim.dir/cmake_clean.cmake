file(REMOVE_RECURSE
  "CMakeFiles/ivr_circuit_sim.dir/ivr_circuit_sim.cpp.o"
  "CMakeFiles/ivr_circuit_sim.dir/ivr_circuit_sim.cpp.o.d"
  "ivr_circuit_sim"
  "ivr_circuit_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ivr_circuit_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
