# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ivr_circuit_sim.
