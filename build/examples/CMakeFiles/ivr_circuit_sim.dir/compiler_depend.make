# Empty compiler generated dependencies file for ivr_circuit_sim.
# This may be replaced when dependencies are built.
