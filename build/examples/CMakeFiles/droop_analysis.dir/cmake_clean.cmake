file(REMOVE_RECURSE
  "CMakeFiles/droop_analysis.dir/droop_analysis.cpp.o"
  "CMakeFiles/droop_analysis.dir/droop_analysis.cpp.o.d"
  "droop_analysis"
  "droop_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droop_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
