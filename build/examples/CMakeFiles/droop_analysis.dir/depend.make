# Empty dependencies file for droop_analysis.
# This may be replaced when dependencies are built.
