
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vpd/arch/architecture.cpp" "src/CMakeFiles/vpd.dir/vpd/arch/architecture.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/arch/architecture.cpp.o.d"
  "/root/repo/src/vpd/arch/evaluator.cpp" "src/CMakeFiles/vpd.dir/vpd/arch/evaluator.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/arch/evaluator.cpp.o.d"
  "/root/repo/src/vpd/arch/placement.cpp" "src/CMakeFiles/vpd.dir/vpd/arch/placement.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/arch/placement.cpp.o.d"
  "/root/repo/src/vpd/arch/report.cpp" "src/CMakeFiles/vpd.dir/vpd/arch/report.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/arch/report.cpp.o.d"
  "/root/repo/src/vpd/arch/transient_model.cpp" "src/CMakeFiles/vpd.dir/vpd/arch/transient_model.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/arch/transient_model.cpp.o.d"
  "/root/repo/src/vpd/arch/vr_allocation.cpp" "src/CMakeFiles/vpd.dir/vpd/arch/vr_allocation.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/arch/vr_allocation.cpp.o.d"
  "/root/repo/src/vpd/circuit/ac_solver.cpp" "src/CMakeFiles/vpd.dir/vpd/circuit/ac_solver.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/circuit/ac_solver.cpp.o.d"
  "/root/repo/src/vpd/circuit/dc_solver.cpp" "src/CMakeFiles/vpd.dir/vpd/circuit/dc_solver.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/circuit/dc_solver.cpp.o.d"
  "/root/repo/src/vpd/circuit/mna.cpp" "src/CMakeFiles/vpd.dir/vpd/circuit/mna.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/circuit/mna.cpp.o.d"
  "/root/repo/src/vpd/circuit/netlist.cpp" "src/CMakeFiles/vpd.dir/vpd/circuit/netlist.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/circuit/netlist.cpp.o.d"
  "/root/repo/src/vpd/circuit/pwm.cpp" "src/CMakeFiles/vpd.dir/vpd/circuit/pwm.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/circuit/pwm.cpp.o.d"
  "/root/repo/src/vpd/circuit/spice_export.cpp" "src/CMakeFiles/vpd.dir/vpd/circuit/spice_export.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/circuit/spice_export.cpp.o.d"
  "/root/repo/src/vpd/circuit/transient.cpp" "src/CMakeFiles/vpd.dir/vpd/circuit/transient.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/circuit/transient.cpp.o.d"
  "/root/repo/src/vpd/circuit/waveform.cpp" "src/CMakeFiles/vpd.dir/vpd/circuit/waveform.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/circuit/waveform.cpp.o.d"
  "/root/repo/src/vpd/common/complex_linear.cpp" "src/CMakeFiles/vpd.dir/vpd/common/complex_linear.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/common/complex_linear.cpp.o.d"
  "/root/repo/src/vpd/common/interpolation.cpp" "src/CMakeFiles/vpd.dir/vpd/common/interpolation.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/common/interpolation.cpp.o.d"
  "/root/repo/src/vpd/common/matrix.cpp" "src/CMakeFiles/vpd.dir/vpd/common/matrix.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/common/matrix.cpp.o.d"
  "/root/repo/src/vpd/common/rng.cpp" "src/CMakeFiles/vpd.dir/vpd/common/rng.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/common/rng.cpp.o.d"
  "/root/repo/src/vpd/common/sparse.cpp" "src/CMakeFiles/vpd.dir/vpd/common/sparse.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/common/sparse.cpp.o.d"
  "/root/repo/src/vpd/common/statistics.cpp" "src/CMakeFiles/vpd.dir/vpd/common/statistics.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/common/statistics.cpp.o.d"
  "/root/repo/src/vpd/common/table.cpp" "src/CMakeFiles/vpd.dir/vpd/common/table.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/common/table.cpp.o.d"
  "/root/repo/src/vpd/converters/buck.cpp" "src/CMakeFiles/vpd.dir/vpd/converters/buck.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/converters/buck.cpp.o.d"
  "/root/repo/src/vpd/converters/catalog.cpp" "src/CMakeFiles/vpd.dir/vpd/converters/catalog.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/converters/catalog.cpp.o.d"
  "/root/repo/src/vpd/converters/control.cpp" "src/CMakeFiles/vpd.dir/vpd/converters/control.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/converters/control.cpp.o.d"
  "/root/repo/src/vpd/converters/converter.cpp" "src/CMakeFiles/vpd.dir/vpd/converters/converter.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/converters/converter.cpp.o.d"
  "/root/repo/src/vpd/converters/dickson.cpp" "src/CMakeFiles/vpd.dir/vpd/converters/dickson.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/converters/dickson.cpp.o.d"
  "/root/repo/src/vpd/converters/dpmih.cpp" "src/CMakeFiles/vpd.dir/vpd/converters/dpmih.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/converters/dpmih.cpp.o.d"
  "/root/repo/src/vpd/converters/dsch.cpp" "src/CMakeFiles/vpd.dir/vpd/converters/dsch.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/converters/dsch.cpp.o.d"
  "/root/repo/src/vpd/converters/fcml.cpp" "src/CMakeFiles/vpd.dir/vpd/converters/fcml.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/converters/fcml.cpp.o.d"
  "/root/repo/src/vpd/converters/hybrid.cpp" "src/CMakeFiles/vpd.dir/vpd/converters/hybrid.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/converters/hybrid.cpp.o.d"
  "/root/repo/src/vpd/converters/loss_model.cpp" "src/CMakeFiles/vpd.dir/vpd/converters/loss_model.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/converters/loss_model.cpp.o.d"
  "/root/repo/src/vpd/converters/netlist_builder.cpp" "src/CMakeFiles/vpd.dir/vpd/converters/netlist_builder.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/converters/netlist_builder.cpp.o.d"
  "/root/repo/src/vpd/converters/series_cap_buck.cpp" "src/CMakeFiles/vpd.dir/vpd/converters/series_cap_buck.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/converters/series_cap_buck.cpp.o.d"
  "/root/repo/src/vpd/converters/switched_capacitor.cpp" "src/CMakeFiles/vpd.dir/vpd/converters/switched_capacitor.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/converters/switched_capacitor.cpp.o.d"
  "/root/repo/src/vpd/converters/transformer_stage.cpp" "src/CMakeFiles/vpd.dir/vpd/converters/transformer_stage.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/converters/transformer_stage.cpp.o.d"
  "/root/repo/src/vpd/core/advisor.cpp" "src/CMakeFiles/vpd.dir/vpd/core/advisor.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/core/advisor.cpp.o.d"
  "/root/repo/src/vpd/core/explorer.cpp" "src/CMakeFiles/vpd.dir/vpd/core/explorer.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/core/explorer.cpp.o.d"
  "/root/repo/src/vpd/core/spec.cpp" "src/CMakeFiles/vpd.dir/vpd/core/spec.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/core/spec.cpp.o.d"
  "/root/repo/src/vpd/core/trends.cpp" "src/CMakeFiles/vpd.dir/vpd/core/trends.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/core/trends.cpp.o.d"
  "/root/repo/src/vpd/core/variation.cpp" "src/CMakeFiles/vpd.dir/vpd/core/variation.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/core/variation.cpp.o.d"
  "/root/repo/src/vpd/devices/power_fet.cpp" "src/CMakeFiles/vpd.dir/vpd/devices/power_fet.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/devices/power_fet.cpp.o.d"
  "/root/repo/src/vpd/devices/switching_loss.cpp" "src/CMakeFiles/vpd.dir/vpd/devices/switching_loss.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/devices/switching_loss.cpp.o.d"
  "/root/repo/src/vpd/devices/technology.cpp" "src/CMakeFiles/vpd.dir/vpd/devices/technology.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/devices/technology.cpp.o.d"
  "/root/repo/src/vpd/package/interconnect.cpp" "src/CMakeFiles/vpd.dir/vpd/package/interconnect.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/package/interconnect.cpp.o.d"
  "/root/repo/src/vpd/package/irdrop.cpp" "src/CMakeFiles/vpd.dir/vpd/package/irdrop.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/package/irdrop.cpp.o.d"
  "/root/repo/src/vpd/package/layers.cpp" "src/CMakeFiles/vpd.dir/vpd/package/layers.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/package/layers.cpp.o.d"
  "/root/repo/src/vpd/package/mesh.cpp" "src/CMakeFiles/vpd.dir/vpd/package/mesh.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/package/mesh.cpp.o.d"
  "/root/repo/src/vpd/package/stacked_mesh.cpp" "src/CMakeFiles/vpd.dir/vpd/package/stacked_mesh.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/package/stacked_mesh.cpp.o.d"
  "/root/repo/src/vpd/package/stackup.cpp" "src/CMakeFiles/vpd.dir/vpd/package/stackup.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/package/stackup.cpp.o.d"
  "/root/repo/src/vpd/package/utilization.cpp" "src/CMakeFiles/vpd.dir/vpd/package/utilization.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/package/utilization.cpp.o.d"
  "/root/repo/src/vpd/passives/capacitor.cpp" "src/CMakeFiles/vpd.dir/vpd/passives/capacitor.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/passives/capacitor.cpp.o.d"
  "/root/repo/src/vpd/passives/inductor.cpp" "src/CMakeFiles/vpd.dir/vpd/passives/inductor.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/passives/inductor.cpp.o.d"
  "/root/repo/src/vpd/passives/sizing.cpp" "src/CMakeFiles/vpd.dir/vpd/passives/sizing.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/passives/sizing.cpp.o.d"
  "/root/repo/src/vpd/thermal/thermal.cpp" "src/CMakeFiles/vpd.dir/vpd/thermal/thermal.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/thermal/thermal.cpp.o.d"
  "/root/repo/src/vpd/workload/load_transient.cpp" "src/CMakeFiles/vpd.dir/vpd/workload/load_transient.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/workload/load_transient.cpp.o.d"
  "/root/repo/src/vpd/workload/power_map.cpp" "src/CMakeFiles/vpd.dir/vpd/workload/power_map.cpp.o" "gcc" "src/CMakeFiles/vpd.dir/vpd/workload/power_map.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
