file(REMOVE_RECURSE
  "libvpd.a"
)
