# Empty compiler generated dependencies file for vpd.
# This may be replaced when dependencies are built.
