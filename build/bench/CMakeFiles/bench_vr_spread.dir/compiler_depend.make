# Empty compiler generated dependencies file for bench_vr_spread.
# This may be replaced when dependencies are built.
