file(REMOVE_RECURSE
  "CMakeFiles/bench_vr_spread.dir/bench_vr_spread.cpp.o"
  "CMakeFiles/bench_vr_spread.dir/bench_vr_spread.cpp.o.d"
  "bench_vr_spread"
  "bench_vr_spread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vr_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
