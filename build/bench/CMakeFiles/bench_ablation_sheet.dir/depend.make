# Empty dependencies file for bench_ablation_sheet.
# This may be replaced when dependencies are built.
