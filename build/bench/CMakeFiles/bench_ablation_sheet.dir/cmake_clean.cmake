file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sheet.dir/bench_ablation_sheet.cpp.o"
  "CMakeFiles/bench_ablation_sheet.dir/bench_ablation_sheet.cpp.o.d"
  "bench_ablation_sheet"
  "bench_ablation_sheet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sheet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
