# Empty compiler generated dependencies file for bench_fig3_savings.
# This may be replaced when dependencies are built.
