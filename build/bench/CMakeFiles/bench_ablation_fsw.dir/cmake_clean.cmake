file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fsw.dir/bench_ablation_fsw.cpp.o"
  "CMakeFiles/bench_ablation_fsw.dir/bench_ablation_fsw.cpp.o.d"
  "bench_ablation_fsw"
  "bench_ablation_fsw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fsw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
