# Empty compiler generated dependencies file for bench_ablation_fsw.
# This may be replaced when dependencies are built.
