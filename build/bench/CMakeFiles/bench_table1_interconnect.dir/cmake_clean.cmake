file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_interconnect.dir/bench_table1_interconnect.cpp.o"
  "CMakeFiles/bench_table1_interconnect.dir/bench_table1_interconnect.cpp.o.d"
  "bench_table1_interconnect"
  "bench_table1_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
