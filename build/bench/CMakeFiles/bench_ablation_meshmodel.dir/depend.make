# Empty dependencies file for bench_ablation_meshmodel.
# This may be replaced when dependencies are built.
