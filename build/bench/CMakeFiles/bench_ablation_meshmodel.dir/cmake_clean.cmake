file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_meshmodel.dir/bench_ablation_meshmodel.cpp.o"
  "CMakeFiles/bench_ablation_meshmodel.dir/bench_ablation_meshmodel.cpp.o.d"
  "bench_ablation_meshmodel"
  "bench_ablation_meshmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_meshmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
