# Empty compiler generated dependencies file for bench_efficiency_curves.
# This may be replaced when dependencies are built.
