file(REMOVE_RECURSE
  "CMakeFiles/bench_efficiency_curves.dir/bench_efficiency_curves.cpp.o"
  "CMakeFiles/bench_efficiency_curves.dir/bench_efficiency_curves.cpp.o.d"
  "bench_efficiency_curves"
  "bench_efficiency_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_efficiency_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
