# Empty dependencies file for bench_droop.
# This may be replaced when dependencies are built.
