file(REMOVE_RECURSE
  "CMakeFiles/bench_droop.dir/bench_droop.cpp.o"
  "CMakeFiles/bench_droop.dir/bench_droop.cpp.o.d"
  "bench_droop"
  "bench_droop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_droop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
