file(REMOVE_RECURSE
  "CMakeFiles/bench_section3_topologies.dir/bench_section3_topologies.cpp.o"
  "CMakeFiles/bench_section3_topologies.dir/bench_section3_topologies.cpp.o.d"
  "bench_section3_topologies"
  "bench_section3_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_section3_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
