file(REMOVE_RECURSE
  "CMakeFiles/bench_pdn_impedance.dir/bench_pdn_impedance.cpp.o"
  "CMakeFiles/bench_pdn_impedance.dir/bench_pdn_impedance.cpp.o.d"
  "bench_pdn_impedance"
  "bench_pdn_impedance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pdn_impedance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
