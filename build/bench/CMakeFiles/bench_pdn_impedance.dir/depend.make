# Empty dependencies file for bench_pdn_impedance.
# This may be replaced when dependencies are built.
