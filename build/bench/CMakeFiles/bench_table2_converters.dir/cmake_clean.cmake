file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_converters.dir/bench_table2_converters.cpp.o"
  "CMakeFiles/bench_table2_converters.dir/bench_table2_converters.cpp.o.d"
  "bench_table2_converters"
  "bench_table2_converters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_converters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
