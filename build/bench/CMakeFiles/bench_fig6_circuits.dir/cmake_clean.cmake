file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_circuits.dir/bench_fig6_circuits.cpp.o"
  "CMakeFiles/bench_fig6_circuits.dir/bench_fig6_circuits.cpp.o.d"
  "bench_fig6_circuits"
  "bench_fig6_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
