# Empty compiler generated dependencies file for bench_fig6_circuits.
# This may be replaced when dependencies are built.
