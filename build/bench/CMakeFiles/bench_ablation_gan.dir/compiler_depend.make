# Empty compiler generated dependencies file for bench_ablation_gan.
# This may be replaced when dependencies are built.
