file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_gan.dir/bench_ablation_gan.cpp.o"
  "CMakeFiles/bench_ablation_gan.dir/bench_ablation_gan.cpp.o.d"
  "bench_ablation_gan"
  "bench_ablation_gan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
