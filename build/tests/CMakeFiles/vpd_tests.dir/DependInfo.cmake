
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ac_solver.cpp" "tests/CMakeFiles/vpd_tests.dir/test_ac_solver.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_ac_solver.cpp.o.d"
  "/root/repo/tests/test_architecture.cpp" "tests/CMakeFiles/vpd_tests.dir/test_architecture.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_architecture.cpp.o.d"
  "/root/repo/tests/test_buck_converter.cpp" "tests/CMakeFiles/vpd_tests.dir/test_buck_converter.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_buck_converter.cpp.o.d"
  "/root/repo/tests/test_control.cpp" "tests/CMakeFiles/vpd_tests.dir/test_control.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_control.cpp.o.d"
  "/root/repo/tests/test_converter_circuits.cpp" "tests/CMakeFiles/vpd_tests.dir/test_converter_circuits.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_converter_circuits.cpp.o.d"
  "/root/repo/tests/test_cross_validation.cpp" "tests/CMakeFiles/vpd_tests.dir/test_cross_validation.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_cross_validation.cpp.o.d"
  "/root/repo/tests/test_dc_solver.cpp" "tests/CMakeFiles/vpd_tests.dir/test_dc_solver.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_dc_solver.cpp.o.d"
  "/root/repo/tests/test_devices.cpp" "tests/CMakeFiles/vpd_tests.dir/test_devices.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_devices.cpp.o.d"
  "/root/repo/tests/test_evaluator.cpp" "tests/CMakeFiles/vpd_tests.dir/test_evaluator.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_evaluator.cpp.o.d"
  "/root/repo/tests/test_evaluator_properties.cpp" "tests/CMakeFiles/vpd_tests.dir/test_evaluator_properties.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_evaluator_properties.cpp.o.d"
  "/root/repo/tests/test_explorer_advisor.cpp" "tests/CMakeFiles/vpd_tests.dir/test_explorer_advisor.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_explorer_advisor.cpp.o.d"
  "/root/repo/tests/test_fit_shedding.cpp" "tests/CMakeFiles/vpd_tests.dir/test_fit_shedding.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_fit_shedding.cpp.o.d"
  "/root/repo/tests/test_golden_results.cpp" "tests/CMakeFiles/vpd_tests.dir/test_golden_results.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_golden_results.cpp.o.d"
  "/root/repo/tests/test_hybrid_converters.cpp" "tests/CMakeFiles/vpd_tests.dir/test_hybrid_converters.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_hybrid_converters.cpp.o.d"
  "/root/repo/tests/test_interconnect.cpp" "tests/CMakeFiles/vpd_tests.dir/test_interconnect.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_interconnect.cpp.o.d"
  "/root/repo/tests/test_interpolation.cpp" "tests/CMakeFiles/vpd_tests.dir/test_interpolation.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_interpolation.cpp.o.d"
  "/root/repo/tests/test_layers_stackup.cpp" "tests/CMakeFiles/vpd_tests.dir/test_layers_stackup.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_layers_stackup.cpp.o.d"
  "/root/repo/tests/test_loss_model.cpp" "tests/CMakeFiles/vpd_tests.dir/test_loss_model.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_loss_model.cpp.o.d"
  "/root/repo/tests/test_matrix.cpp" "tests/CMakeFiles/vpd_tests.dir/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_matrix.cpp.o.d"
  "/root/repo/tests/test_mesh_irdrop.cpp" "tests/CMakeFiles/vpd_tests.dir/test_mesh_irdrop.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_mesh_irdrop.cpp.o.d"
  "/root/repo/tests/test_mna.cpp" "tests/CMakeFiles/vpd_tests.dir/test_mna.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_mna.cpp.o.d"
  "/root/repo/tests/test_netlist.cpp" "tests/CMakeFiles/vpd_tests.dir/test_netlist.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_netlist.cpp.o.d"
  "/root/repo/tests/test_optimizer.cpp" "tests/CMakeFiles/vpd_tests.dir/test_optimizer.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_optimizer.cpp.o.d"
  "/root/repo/tests/test_passives.cpp" "tests/CMakeFiles/vpd_tests.dir/test_passives.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_passives.cpp.o.d"
  "/root/repo/tests/test_pwm.cpp" "tests/CMakeFiles/vpd_tests.dir/test_pwm.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_pwm.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/vpd_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_scb_fcml.cpp" "tests/CMakeFiles/vpd_tests.dir/test_scb_fcml.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_scb_fcml.cpp.o.d"
  "/root/repo/tests/test_sparse.cpp" "tests/CMakeFiles/vpd_tests.dir/test_sparse.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_sparse.cpp.o.d"
  "/root/repo/tests/test_spec.cpp" "tests/CMakeFiles/vpd_tests.dir/test_spec.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_spec.cpp.o.d"
  "/root/repo/tests/test_stacked_mesh.cpp" "tests/CMakeFiles/vpd_tests.dir/test_stacked_mesh.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_stacked_mesh.cpp.o.d"
  "/root/repo/tests/test_statistics.cpp" "tests/CMakeFiles/vpd_tests.dir/test_statistics.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_statistics.cpp.o.d"
  "/root/repo/tests/test_switched_capacitor.cpp" "tests/CMakeFiles/vpd_tests.dir/test_switched_capacitor.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_switched_capacitor.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/vpd_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_thermal.cpp" "tests/CMakeFiles/vpd_tests.dir/test_thermal.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_thermal.cpp.o.d"
  "/root/repo/tests/test_transient.cpp" "tests/CMakeFiles/vpd_tests.dir/test_transient.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_transient.cpp.o.d"
  "/root/repo/tests/test_transient_model.cpp" "tests/CMakeFiles/vpd_tests.dir/test_transient_model.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_transient_model.cpp.o.d"
  "/root/repo/tests/test_trends.cpp" "tests/CMakeFiles/vpd_tests.dir/test_trends.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_trends.cpp.o.d"
  "/root/repo/tests/test_umbrella.cpp" "tests/CMakeFiles/vpd_tests.dir/test_umbrella.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_umbrella.cpp.o.d"
  "/root/repo/tests/test_units.cpp" "tests/CMakeFiles/vpd_tests.dir/test_units.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_units.cpp.o.d"
  "/root/repo/tests/test_utilization.cpp" "tests/CMakeFiles/vpd_tests.dir/test_utilization.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_utilization.cpp.o.d"
  "/root/repo/tests/test_variation_spice.cpp" "tests/CMakeFiles/vpd_tests.dir/test_variation_spice.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_variation_spice.cpp.o.d"
  "/root/repo/tests/test_waveform.cpp" "tests/CMakeFiles/vpd_tests.dir/test_waveform.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_waveform.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/vpd_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/vpd_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vpd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
