# Empty dependencies file for vpd_tests.
# This may be replaced when dependencies are built.
