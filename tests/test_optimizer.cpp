#include <gtest/gtest.h>

#include "vpd/common/error.hpp"
#include "vpd/core/advisor.hpp"

namespace vpd {
namespace {

EvaluationOptions paper_mode() {
  EvaluationOptions o;
  o.below_die_area_fraction = 1.6;
  o.mesh_nodes = 31;  // keep the scan quick; trends are resolution-stable
  return o;
}

TEST(VrCountOptimizer, FindsInteriorOptimumForA2Dsch) {
  const VrCountChoice choice = optimize_vr_count(
      paper_system(), ArchitectureKind::kA2_InterposerBelowDie,
      TopologyKind::kDsch, 36, 52, paper_mode());
  EXPECT_TRUE(choice.within_rating);
  EXPECT_GE(choice.count, 36u);
  EXPECT_LE(choice.count, 52u);
  EXPECT_GT(choice.loss_fraction, 0.08);
  EXPECT_LT(choice.loss_fraction, 0.14);
  EXPECT_EQ(choice.curve.size(), 17u);
  // The winner is at least as good as every feasible candidate.
  for (const ParameterSweepPoint& p : choice.curve) {
    if (p.feasible) {
      EXPECT_LE(choice.loss_fraction, p.loss_fraction + 1e-12);
    }
  }
}

TEST(VrCountOptimizer, FewVrsAreWorseOrInfeasible) {
  // Too few DSCH VRs cannot carry 1 kA (> 30 A each): infeasible points
  // stay in the curve but never win.
  const VrCountChoice choice = optimize_vr_count(
      paper_system(), ArchitectureKind::kA2_InterposerBelowDie,
      TopologyKind::kDsch, 30, 50, paper_mode());
  const ParameterSweepPoint& smallest = choice.curve.front();
  EXPECT_FALSE(smallest.feasible);  // 30 VRs -> 33 A per VR
  EXPECT_GT(choice.count, 30u);
}

TEST(VrCountOptimizer, NoFeasibleCountThrows) {
  // 3LHD cannot deliver 1 kA with 20 VRs (50 A each, rating 12 A).
  EXPECT_THROW(
      optimize_vr_count(paper_system(),
                        ArchitectureKind::kA2_InterposerBelowDie,
                        TopologyKind::kDickson, 10, 20, paper_mode()),
      InfeasibleDesign);
}

TEST(VrCountOptimizer, Validation) {
  EXPECT_THROW(optimize_vr_count(paper_system(),
                                 ArchitectureKind::kA0_PcbConversion,
                                 TopologyKind::kDsch, 1, 10, paper_mode()),
               InvalidArgument);
  EXPECT_THROW(
      optimize_vr_count(paper_system(),
                        ArchitectureKind::kA2_InterposerBelowDie,
                        TopologyKind::kDsch, 10, 5, paper_mode()),
      InvalidArgument);
}

}  // namespace
}  // namespace vpd
