// Evaluation service: the acceptance bit-identity property (concurrent
// service responses match serial evaluate_with_exclusion exactly),
// coalescing, result-LRU behaviour, bounded-queue backpressure, error
// paths, service metrics, and the ThreadPool exception-rethrow contract
// the service relies on.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <stdexcept>
#include <string>
#include <vector>

#include "vpd/core/explorer.hpp"
#include "vpd/io/schema.hpp"
#include "vpd/serve/service.hpp"
#include "vpd/sweep/thread_pool.hpp"

namespace vpd {
namespace {

// A 31-node mesh keeps each evaluation cheap while A1/DSCH stays
// feasible (21 nodes is coarse enough to trip the exclusion rule); a
// 161-node mesh makes one request deliberately slow (hundreds of
// milliseconds) so in-flight states are observable without sleeps.
io::EvaluationRequest make_request(
    ArchitectureKind arch, std::optional<TopologyKind> topo,
    std::size_t mesh_nodes = 31) {
  io::EvaluationRequest request;
  request.architecture = arch;
  request.topology = topo;
  request.options.mesh_nodes = mesh_nodes;
  return request;
}

io::EvaluationRequest slow_request() {
  return make_request(ArchitectureKind::kA2_InterposerBelowDie,
                      TopologyKind::kDsch, 161);
}

std::string serial_dump(const io::EvaluationRequest& request) {
  const ExplorationEntry entry =
      evaluate_with_exclusion(request.spec, request.architecture,
                              request.topology, request.tech, request.options);
  return io::dump(io::to_json(entry));
}

// --- Acceptance: concurrent responses are bit-identical to serial ----------

TEST(EvaluationService, ConcurrentResponsesBitIdenticalToSerial) {
  std::vector<io::EvaluationRequest> distinct;
  distinct.push_back(
      make_request(ArchitectureKind::kA1_InterposerPeriphery,
                   TopologyKind::kDsch));
  distinct.push_back(
      make_request(ArchitectureKind::kA2_InterposerBelowDie,
                   TopologyKind::kDpmih));
  distinct.push_back(
      make_request(ArchitectureKind::kA3_TwoStage12V, TopologyKind::kDsch));
  distinct.push_back(
      make_request(ArchitectureKind::kA3_TwoStage6V, TopologyKind::kDpmih));
  distinct.push_back(
      make_request(ArchitectureKind::kA0_PcbConversion, std::nullopt));
  // Excluded by the paper's rule (Dickson ladder over-rates here).
  distinct.push_back(
      make_request(ArchitectureKind::kA1_InterposerPeriphery,
                   TopologyKind::kDickson));
  // A fault scenario rides the same path.
  {
    io::EvaluationRequest faulted =
        make_request(ArchitectureKind::kA2_InterposerBelowDie,
                     TopologyKind::kDsch);
    faulted.options.faults.dropped_sites = {1};
    distinct.push_back(faulted);
  }

  // Duplicate-heavy stream: every distinct point appears several times,
  // interleaved.
  std::vector<io::EvaluationRequest> stream;
  for (std::size_t i = 0; i < 4 * distinct.size(); ++i) {
    stream.push_back(distinct[(i * 3) % distinct.size()]);
  }

  std::vector<std::string> expected;
  expected.reserve(stream.size());
  for (const auto& request : stream) expected.push_back(serial_dump(request));

  serve::ServiceConfig config;
  config.threads = 4;
  serve::EvaluationService service(config);
  std::vector<std::shared_future<serve::ServiceResponse>> futures;
  for (const auto& request : stream) futures.push_back(service.submit(request));

  for (std::size_t i = 0; i < futures.size(); ++i) {
    const serve::ServiceResponse response = futures[i].get();
    ASSERT_NE(response.entry, nullptr) << "request " << i;
    EXPECT_TRUE(response.status == serve::ResponseStatus::kOk ||
                response.status == serve::ResponseStatus::kExcluded);
    EXPECT_EQ(io::dump(io::to_json(*response.entry)), expected[i])
        << "request " << i;
  }

  const serve::ServiceMetrics metrics = service.metrics();
  EXPECT_EQ(metrics.requests, stream.size());
  EXPECT_EQ(metrics.completed, stream.size());
  EXPECT_EQ(metrics.evaluated, distinct.size());
  EXPECT_EQ(metrics.coalesced + metrics.result_cache_hits,
            stream.size() - distinct.size());
  EXPECT_EQ(metrics.rejected, 0u);
  EXPECT_EQ(metrics.errors, 0u);
}

TEST(EvaluationService, ExcludedCombinationReportsStatusAndReason) {
  serve::EvaluationService service;
  const serve::ServiceResponse response = service.evaluate(
      make_request(ArchitectureKind::kA1_InterposerPeriphery,
                   TopologyKind::kDickson));
  EXPECT_EQ(response.status, serve::ResponseStatus::kExcluded);
  ASSERT_NE(response.entry, nullptr);
  EXPECT_TRUE(response.entry->excluded());
  EXPECT_FALSE(response.entry->exclusion_reason.empty());
}

// --- Result cache ----------------------------------------------------------

TEST(EvaluationService, RepeatedRequestIsServedFromResultCache) {
  serve::EvaluationService service;
  const io::EvaluationRequest request =
      make_request(ArchitectureKind::kA1_InterposerPeriphery,
                   TopologyKind::kDsch);
  const serve::ServiceResponse first = service.evaluate(request);
  const serve::ServiceResponse second = service.evaluate(request);
  EXPECT_FALSE(first.from_cache);
  EXPECT_TRUE(second.from_cache);
  // The cached response shares the one result object evaluation produced.
  EXPECT_EQ(first.entry.get(), second.entry.get());

  const serve::ServiceMetrics metrics = service.metrics();
  EXPECT_EQ(metrics.evaluated, 1u);
  EXPECT_EQ(metrics.result_cache_hits, 1u);
  EXPECT_EQ(metrics.result_cache_size, 1u);
}

TEST(EvaluationService, LruEvictsLeastRecentlyUsedResult) {
  serve::ServiceConfig config;
  config.result_cache_capacity = 2;
  serve::EvaluationService service(config);

  const io::EvaluationRequest a = make_request(
      ArchitectureKind::kA1_InterposerPeriphery, TopologyKind::kDsch);
  const io::EvaluationRequest b = make_request(
      ArchitectureKind::kA2_InterposerBelowDie, TopologyKind::kDsch);
  const io::EvaluationRequest c = make_request(
      ArchitectureKind::kA3_TwoStage12V, TopologyKind::kDsch);

  service.evaluate(a);
  service.evaluate(b);
  service.evaluate(a);  // refresh a: b is now least recent
  service.evaluate(c);  // evicts b
  EXPECT_TRUE(service.evaluate(a).from_cache);
  EXPECT_TRUE(service.evaluate(c).from_cache);
  EXPECT_FALSE(service.evaluate(b).from_cache);  // evicted: re-evaluated
  EXPECT_LE(service.metrics().result_cache_size, 2u);
}

TEST(EvaluationService, ZeroCapacityDisablesResultCache) {
  serve::ServiceConfig config;
  config.result_cache_capacity = 0;
  serve::EvaluationService service(config);
  const io::EvaluationRequest request = make_request(
      ArchitectureKind::kA1_InterposerPeriphery, TopologyKind::kDsch);
  service.evaluate(request);
  EXPECT_FALSE(service.evaluate(request).from_cache);
  EXPECT_EQ(service.metrics().evaluated, 2u);
  EXPECT_EQ(service.metrics().result_cache_size, 0u);
}

// --- Coalescing ------------------------------------------------------------

TEST(EvaluationService, DuplicateInFlightSubmitsCoalesce) {
  serve::ServiceConfig config;
  config.threads = 1;
  serve::EvaluationService service(config);

  // The slow request occupies the single worker, so the duplicates are
  // guaranteed to find it in flight.
  const io::EvaluationRequest request = slow_request();
  auto first = service.submit(request);
  auto second = service.submit(request);
  auto third = service.submit(request);

  const serve::ServiceResponse r1 = first.get();
  const serve::ServiceResponse r2 = second.get();
  const serve::ServiceResponse r3 = third.get();
  ASSERT_NE(r1.entry, nullptr);
  EXPECT_EQ(r1.entry.get(), r2.entry.get());
  EXPECT_EQ(r1.entry.get(), r3.entry.get());

  const serve::ServiceMetrics metrics = service.metrics();
  EXPECT_EQ(metrics.evaluated, 1u);
  EXPECT_EQ(metrics.coalesced, 2u);
  EXPECT_EQ(metrics.completed, 3u);
  EXPECT_EQ(metrics.latency_samples, 3u);
}

// --- Backpressure ----------------------------------------------------------

TEST(EvaluationService, FullQueueRejectsImmediatelyWithoutBlocking) {
  serve::ServiceConfig config;
  config.threads = 1;
  config.queue_capacity = 1;
  serve::EvaluationService service(config);

  auto slow = service.submit(slow_request());
  // The queue (capacity 1) is now full with the in-flight slow request; a
  // distinct submit must resolve immediately with kRejected.
  const io::EvaluationRequest light = make_request(
      ArchitectureKind::kA1_InterposerPeriphery, TopologyKind::kDsch);
  auto rejected = service.submit(light);
  ASSERT_EQ(rejected.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const serve::ServiceResponse response = rejected.get();
  EXPECT_EQ(response.status, serve::ResponseStatus::kRejected);
  EXPECT_FALSE(response.error.empty());
  EXPECT_EQ(response.entry, nullptr);

  // A duplicate of the in-flight request still coalesces (no queue slot
  // needed), and the slot frees once the evaluation completes.
  auto coalesced = service.submit(slow_request());
  EXPECT_EQ(coalesced.get().status, slow.get().status);
  service.wait_idle();
  EXPECT_EQ(service.evaluate(light).status, serve::ResponseStatus::kOk);

  const serve::ServiceMetrics metrics = service.metrics();
  EXPECT_EQ(metrics.rejected, 1u);
  EXPECT_EQ(metrics.coalesced, 1u);
  EXPECT_EQ(metrics.queue_high_water, 1u);
}

// --- Error path ------------------------------------------------------------

TEST(EvaluationService, EvaluationFailureYieldsStructuredErrorAndServiceSurvives) {
  serve::EvaluationService service;
  io::EvaluationRequest bad = make_request(
      ArchitectureKind::kA2_InterposerBelowDie, TopologyKind::kDsch);
  bad.options.faults.dropped_sites = {9999};  // out of range at evaluation
  const serve::ServiceResponse response = service.evaluate(bad);
  EXPECT_EQ(response.status, serve::ResponseStatus::kError);
  EXPECT_FALSE(response.error.empty());
  EXPECT_EQ(response.entry, nullptr);

  // Errors are not cached; the service keeps serving.
  const serve::ServiceResponse again = service.evaluate(bad);
  EXPECT_EQ(again.status, serve::ResponseStatus::kError);
  EXPECT_EQ(service.evaluate(make_request(
                                 ArchitectureKind::kA1_InterposerPeriphery,
                                 TopologyKind::kDsch))
                .status,
            serve::ResponseStatus::kOk);

  const serve::ServiceMetrics metrics = service.metrics();
  EXPECT_EQ(metrics.errors, 2u);
  EXPECT_EQ(metrics.result_cache_size, 1u);  // only the good result
}

// --- Metrics ---------------------------------------------------------------

TEST(EvaluationService, MetricsAreInternallyConsistent) {
  serve::ServiceConfig config;
  config.threads = 2;
  serve::EvaluationService service(config);
  const io::EvaluationRequest a = make_request(
      ArchitectureKind::kA1_InterposerPeriphery, TopologyKind::kDsch);
  const io::EvaluationRequest b = make_request(
      ArchitectureKind::kA2_InterposerBelowDie, TopologyKind::kDpmih);
  service.evaluate(a);
  service.evaluate(b);
  service.evaluate(a);  // cache hit

  const serve::ServiceMetrics metrics = service.metrics();
  EXPECT_EQ(metrics.threads, 2u);
  EXPECT_EQ(metrics.requests, 3u);
  EXPECT_EQ(metrics.completed, 3u);
  EXPECT_EQ(metrics.latency_samples, 3u);
  EXPECT_GT(metrics.latency_min_seconds, 0.0);
  EXPECT_LE(metrics.latency_min_seconds, metrics.latency_mean_seconds);
  EXPECT_LE(metrics.latency_mean_seconds, metrics.latency_max_seconds);
  EXPECT_LE(metrics.latency_p99_seconds, metrics.latency_max_seconds);
  EXPECT_GE(metrics.queue_high_water, 1u);
  EXPECT_DOUBLE_EQ(metrics.result_cache_hit_rate(), 1.0 / 3.0);

  // The JSON export is exactly the unified telemetry snapshot; the pre-v2
  // flat aliases are gone after their deprecation window.
  const io::Value v = service.metrics_json();
  EXPECT_EQ(v.at("counters").at("serve.requests").as_number(), 3.0);
  EXPECT_EQ(v.at("counters").at("serve.result_cache_hits").as_number(), 1.0);
  EXPECT_EQ(v.at("counters").at("mesh_cache.misses").as_number(),
            static_cast<double>(metrics.mesh_cache.misses));
  EXPECT_GT(v.at("histograms").at("serve.latency_seconds").at("p99")
                .as_number(),
            0.0);
  EXPECT_EQ(v.find("requests"), nullptr);
  EXPECT_EQ(v.find("latency"), nullptr);
  EXPECT_EQ(v.find("mesh_cache"), nullptr);
  EXPECT_EQ(v.find("solver"), nullptr);
}

TEST(EvaluationService, ResponseJsonCarriesStatusAndResult) {
  serve::EvaluationService service;
  const io::Value ok = serve::to_json(service.evaluate(make_request(
      ArchitectureKind::kA1_InterposerPeriphery, TopologyKind::kDsch)));
  EXPECT_EQ(ok.at("status").as_string(), "ok");
  EXPECT_NE(ok.find("result"), nullptr);

  io::EvaluationRequest bad = make_request(
      ArchitectureKind::kA2_InterposerBelowDie, TopologyKind::kDsch);
  bad.options.faults.dropped_sites = {9999};
  const io::Value err = serve::to_json(service.evaluate(bad));
  EXPECT_EQ(err.at("status").as_string(), "error");
  EXPECT_FALSE(err.at("error").as_string().empty());
  EXPECT_EQ(err.find("result"), nullptr);
}

// --- ThreadPool exception contract (the service depends on it) -------------

TEST(ThreadPoolExceptions, FirstExceptionPerEpochRethrownByWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  pool.submit([] { throw std::runtime_error("task exploded"); });
  for (int i = 0; i < 8; ++i) {
    pool.submit([&completed] { ++completed; });
  }
  try {
    pool.wait_idle();
    FAIL() << "expected wait_idle to rethrow the task exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task exploded");
  }
  // The exception did not kill the workers; the other tasks all ran.
  EXPECT_EQ(completed.load(), 8);
  // The epoch was cleared by the rethrow.
  EXPECT_NO_THROW(pool.wait_idle());
}

TEST(ThreadPoolExceptions, OnlyFirstExceptionOfAnEpochIsKept) {
  ThreadPool pool(1);  // single worker serializes the tasks
  pool.submit([] { throw std::runtime_error("first"); });
  pool.submit([] { throw std::runtime_error("second"); });
  try {
    pool.wait_idle();
    FAIL() << "expected wait_idle to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  EXPECT_NO_THROW(pool.wait_idle());

  // A fresh epoch reports its own first exception.
  pool.submit([] { throw std::runtime_error("third"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
}

}  // namespace
}  // namespace vpd
