#include "vpd/circuit/transient.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "vpd/circuit/pwm.hpp"
#include "vpd/common/error.hpp"

namespace vpd {
namespace {

using namespace vpd::literals;

TEST(Transient, OptionsValidation) {
  Netlist nl;
  const NodeId a = nl.add_node("a");
  nl.add_vsource("V1", a, kGround, 1.0_V);
  nl.add_resistor("R1", a, kGround, 1.0_Ohm);
  TransientOptions opts;
  opts.t_stop = Seconds{0.0};
  opts.dt = Seconds{1e-3};
  EXPECT_THROW(simulate(nl, opts), InvalidArgument);
  opts.t_stop = Seconds{1.0};
  opts.dt = Seconds{2.0};
  EXPECT_THROW(simulate(nl, opts), InvalidArgument);
}

TEST(Transient, RcChargeMatchesAnalytic) {
  // 1 V step into R = 1k, C = 1uF; tau = 1 ms.
  Netlist nl;
  const NodeId in = nl.add_node("in");
  const NodeId out = nl.add_node("out");
  nl.add_vsource("V1", in, kGround, 1.0_V);
  nl.add_resistor("R1", in, out, Resistance{1000.0});
  nl.add_capacitor("C1", out, kGround, 1.0_uF);

  TransientOptions opts;
  opts.t_stop = Seconds{5e-3};
  opts.dt = Seconds{1e-6};
  opts.method = IntegrationMethod::kTrapezoidal;
  const TransientResult r = simulate(nl, opts);
  const Trace v = r.voltage("out");
  const double tau = 1e-3;
  for (double t : {0.5e-3, 1e-3, 2e-3, 4e-3}) {
    const double expected = 1.0 - std::exp(-t / tau);
    EXPECT_NEAR(v.at(t), expected, 2e-4) << "t=" << t;
  }
}

TEST(Transient, BackwardEulerAlsoConverges) {
  Netlist nl;
  const NodeId in = nl.add_node("in");
  const NodeId out = nl.add_node("out");
  nl.add_vsource("V1", in, kGround, 1.0_V);
  nl.add_resistor("R1", in, out, Resistance{1000.0});
  nl.add_capacitor("C1", out, kGround, 1.0_uF);
  TransientOptions opts;
  opts.t_stop = Seconds{3e-3};
  opts.dt = Seconds{5e-7};
  opts.method = IntegrationMethod::kBackwardEuler;
  const TransientResult r = simulate(nl, opts);
  EXPECT_NEAR(r.voltage("out").at(1e-3), 1.0 - std::exp(-1.0), 2e-3);
}

TEST(Transient, CapacitorInitialConditionHonored) {
  // C charged to 2 V discharging through R.
  Netlist nl;
  const NodeId out = nl.add_node("out");
  nl.add_capacitor("C1", out, kGround, 1.0_uF, 2.0_V);
  nl.add_resistor("R1", out, kGround, Resistance{1000.0});
  TransientOptions opts;
  opts.t_stop = Seconds{3e-3};
  opts.dt = Seconds{1e-6};
  const TransientResult r = simulate(nl, opts);
  const Trace v = r.voltage("out");
  EXPECT_NEAR(v.at(0.0), 2.0, 1e-6);
  EXPECT_NEAR(v.at(1e-3), 2.0 * std::exp(-1.0), 2e-3);
}

TEST(Transient, RlCurrentRiseMatchesAnalytic) {
  // 1 V into L = 1 mH + R = 1 Ohm: tau = 1 ms, i_final = 1 A.
  Netlist nl;
  const NodeId in = nl.add_node("in");
  const NodeId mid = nl.add_node("mid");
  nl.add_vsource("V1", in, kGround, 1.0_V);
  nl.add_inductor("L1", in, mid, Inductance{1e-3});
  nl.add_resistor("R1", mid, kGround, 1.0_Ohm);
  TransientOptions opts;
  opts.t_stop = Seconds{5e-3};
  opts.dt = Seconds{1e-6};
  const TransientResult r = simulate(nl, opts);
  const Trace i = r.current("L1");
  for (double t : {1e-3, 2e-3, 4e-3}) {
    EXPECT_NEAR(i.at(t), 1.0 - std::exp(-t / 1e-3), 2e-4) << "t=" << t;
  }
}

TEST(Transient, InductorInitialConditionHonored) {
  Netlist nl;
  const NodeId out = nl.add_node("out");
  nl.add_inductor("L1", out, kGround, Inductance{1e-3}, Current{2.0});
  nl.add_resistor("R1", out, kGround, 1.0_Ohm);
  TransientOptions opts;
  opts.t_stop = Seconds{2e-3};
  opts.dt = Seconds{1e-6};
  const TransientResult r = simulate(nl, opts);
  EXPECT_NEAR(r.current("L1").at(0.0), 2.0, 1e-9);
  // L discharges through R... the loop current decays with tau = L/R = 1ms.
  EXPECT_NEAR(std::fabs(r.current("L1").at(1e-3)), 2.0 * std::exp(-1.0),
              5e-3);
}

TEST(Transient, LcOscillatorPeriodAndEnergy) {
  // C = 1 uF charged to 1 V ringing into L = 1 mH.
  // f = 1/(2 pi sqrt(LC)) ~ 5.03 kHz; trapezoidal preserves amplitude.
  Netlist nl;
  const NodeId out = nl.add_node("out");
  nl.add_capacitor("C1", out, kGround, 1.0_uF, 1.0_V);
  nl.add_inductor("L1", out, kGround, Inductance{1e-3});
  TransientOptions opts;
  opts.t_stop = Seconds{1e-3};
  opts.dt = Seconds{2e-7};
  opts.method = IntegrationMethod::kTrapezoidal;
  const TransientResult r = simulate(nl, opts);
  const Trace v = r.voltage("out");
  const double period = 2.0 * M_PI * std::sqrt(1e-3 * 1e-6);
  // After one full period the capacitor voltage returns to ~1 V.
  EXPECT_NEAR(v.at(period), 1.0, 0.01);
  // Amplitude preserved after 4 periods (no numerical damping for trap).
  EXPECT_NEAR(v.at(4.0 * period), 1.0, 0.02);
  // Backward Euler, by contrast, damps the oscillation measurably: the
  // amplitude over the last period is visibly below 1 and below trap's.
  opts.method = IntegrationMethod::kBackwardEuler;
  const TransientResult rbe = simulate(nl, opts);
  const double amp_be = rbe.voltage("out").tail(period).max();
  const double amp_trap = v.tail(period).max();
  EXPECT_LT(amp_be, 0.97);
  EXPECT_LT(amp_be, amp_trap - 0.02);
}

TEST(Transient, EnergyConservationAudit) {
  // Source energy = resistor dissipation + capacitor stored energy.
  Netlist nl;
  const NodeId in = nl.add_node("in");
  const NodeId out = nl.add_node("out");
  nl.add_vsource("V1", in, kGround, 1.0_V);
  nl.add_resistor("R1", in, out, Resistance{100.0});
  nl.add_capacitor("C1", out, kGround, 1.0_uF);
  TransientOptions opts;
  opts.t_stop = Seconds{2e-3};
  opts.dt = Seconds{5e-7};
  const TransientResult r = simulate(nl, opts);
  const double e_source = -r.energy("V1").value;  // delivered
  const double e_r = r.energy("R1").value;
  const double e_c = r.energy("C1").value;
  EXPECT_GT(e_source, 0.0);
  EXPECT_NEAR(e_source, e_r + e_c, 1e-3 * e_source);
  // Stored energy approaches C V^2 / 2.
  const double v_end = r.voltage("out").back();
  EXPECT_NEAR(e_c, 0.5 * 1e-6 * v_end * v_end, 2e-9);
}

TEST(Transient, InitializeFromDcStartsSettled) {
  Netlist nl;
  const NodeId in = nl.add_node("in");
  const NodeId out = nl.add_node("out");
  nl.add_vsource("V1", in, kGround, 2.0_V);
  nl.add_resistor("R1", in, out, Resistance{100.0});
  nl.add_capacitor("C1", out, kGround, 1.0_uF);
  TransientOptions opts;
  opts.t_stop = Seconds{1e-3};
  opts.dt = Seconds{1e-6};
  opts.initialize_from_dc = true;
  const TransientResult r = simulate(nl, opts);
  const Trace v = r.voltage("out");
  EXPECT_NEAR(v.at(0.0), 2.0, 1e-3);
  EXPECT_NEAR(v.peak_to_peak(), 0.0, 1e-3);  // already at equilibrium
}

TEST(Transient, SwitchControllerTogglesCircuit) {
  // Switch connects a source to an RC at t >= 0.5 ms.
  Netlist nl;
  const NodeId in = nl.add_node("in");
  const NodeId out = nl.add_node("out");
  nl.add_vsource("V1", in, kGround, 1.0_V);
  nl.add_switch("S1", in, out, Resistance{1e-3}, Resistance{1e9}, false);
  nl.add_resistor("R1", out, kGround, Resistance{100.0});
  TransientOptions opts;
  opts.t_stop = Seconds{1e-3};
  opts.dt = Seconds{1e-6};
  opts.controller = [](double t, SwitchStates& s) { s[0] = t >= 0.5e-3; };
  const TransientResult r = simulate(nl, opts);
  const Trace v = r.voltage("out");
  EXPECT_LT(v.at(0.4e-3), 1e-3);
  EXPECT_NEAR(v.at(0.9e-3), 1.0, 1e-3);
}

TEST(Transient, SynchronousBuckRegulatesToDutyRatio) {
  // Ideal synchronous buck: Vin = 12 V, duty 0.5, L = 10 uH, C = 100 uF,
  // load 1 Ohm, f = 500 kHz. Steady-state Vout ~ 6 V (minus switch drops).
  Netlist nl;
  const NodeId vin = nl.add_node("vin");
  const NodeId sw = nl.add_node("sw");
  const NodeId out = nl.add_node("out");
  nl.add_vsource("Vin", vin, kGround, 12.0_V);
  nl.add_switch("S_hi", vin, sw, Resistance{1e-3}, Resistance{1e8});
  nl.add_switch("S_lo", sw, kGround, Resistance{1e-3}, Resistance{1e8});
  // Start at the analytic steady state (v = 6 V, i_L = i_load = 6 A); the
  // output LC is underdamped with ~800 us settling, far longer than the
  // simulated span, so a cold start would still be ringing.
  nl.add_inductor("L1", sw, out, 10.0_uH, Current{6.0});
  nl.add_capacitor("Cout", out, kGround, 100.0_uF, 6.0_V);
  nl.add_resistor("Rload", out, kGround, 1.0_Ohm);

  // Exact complementary drive (no dead time): the switch model has no body
  // diode, so a both-off interval would leave the inductor without a
  // freewheel path.
  GateDrive drive(nl);
  const PwmSignal pwm(500.0_kHz, 0.5);
  drive.assign_pair("S_hi", "S_lo", pwm, 0.0_ns);

  TransientOptions opts;
  opts.t_stop = Seconds{200e-6};  // 100 cycles
  opts.dt = Seconds{4e-9};        // 500 points per cycle
  opts.controller = drive.controller();
  const TransientResult r = simulate(nl, opts);

  const Trace vout = r.voltage("out");
  const double avg = vout.tail(20e-6).average();
  EXPECT_NEAR(avg, 6.0, 0.1);

  // Inductor current ripple ~ Vout * (1-D) / (L * f) = 0.6 A.
  const Trace il = r.current("L1");
  EXPECT_NEAR(il.tail(2e-6).peak_to_peak(), 0.6, 0.12);

  // Average inductor current equals the load current (up to the residual
  // slow LC oscillation that is still decaying).
  EXPECT_NEAR(il.tail(20e-6).average(), avg / 1.0, 0.2);
}

TEST(Transient, CycleAveragesDetectSteadyState) {
  std::vector<double> ts, vs;
  // Exponential settling toward 5.0 with cycles of length 1.
  for (int i = 0; i <= 1000; ++i) {
    const double t = i * 0.01;
    ts.push_back(t);
    vs.push_back(5.0 * (1.0 - std::exp(-t / 1.5)));
  }
  const Trace trace("x", std::move(ts), std::move(vs));
  const auto averages = cycle_averages(trace, 1.0);
  EXPECT_EQ(averages.size(), 10u);
  EXPECT_LT(averages.front(), averages.back());
  const auto steady = first_steady_cycle(trace, 1.0, 0.05);
  ASSERT_TRUE(steady.has_value());
  EXPECT_GT(*steady, 0u);
  EXPECT_FALSE(first_steady_cycle(trace, 1.0, 1e-12).has_value());
}

TEST(Transient, FinalSampleLandsExactlyOnStopTime) {
  // Regression: dt does not divide t_stop. The engine must take one
  // shortened final step so the record ends exactly at t_stop, not at the
  // last full multiple of dt below it.
  Netlist nl;
  const NodeId in = nl.add_node("in");
  const NodeId out = nl.add_node("out");
  nl.add_vsource("V1", in, kGround, 1.0_V);
  nl.add_resistor("R1", in, out, Resistance{1000.0});
  nl.add_capacitor("C1", out, kGround, 1.0_uF);

  TransientOptions opts;
  opts.t_stop = Seconds{1.05e-3};  // 10 full steps + a half step
  opts.dt = Seconds{1e-4};
  opts.method = IntegrationMethod::kTrapezoidal;
  const TransientResult r = simulate(nl, opts);
  ASSERT_EQ(r.sample_count(), 12u);
  EXPECT_EQ(r.times().front(), 0.0);
  EXPECT_EQ(r.times()[10], 10.0 * 1e-4);
  EXPECT_EQ(r.times().back(), 1.05e-3);  // exact, not approximate
  // The partial step is a real integration step, not padding: the final
  // sample tracks the analytic RC charge at t_stop.
  const double expected = 1.0 - std::exp(-1.05e-3 / 1e-3);
  EXPECT_NEAR(r.voltage("out").back(), expected, 5e-3);
}

TEST(Transient, StepScheduleAbsorbsFloatingPointSlop) {
  Netlist nl;
  const NodeId out = nl.add_node("out");
  nl.add_vsource("V1", out, kGround, 1.0_V);
  nl.add_resistor("R1", out, kGround, 1.0_Ohm);

  TransientOptions opts;
  // 0.7e-6 / 1e-7 = 6.999... in floating point; floor() lands one step
  // short of the exact multiple. The schedule must recognize this as 7
  // full steps, not 6 plus a dt-sized "partial".
  opts.t_stop = Seconds{0.7e-6};
  opts.dt = Seconds{1e-7};
  const TransientResult slop = simulate(nl, opts);
  EXPECT_EQ(slop.sample_count(), 8u);
  EXPECT_EQ(slop.times().back(), 0.7e-6);

  // And a clean divide stays a clean divide.
  opts.t_stop = Seconds{0.5e-6};
  const TransientResult clean = simulate(nl, opts);
  EXPECT_EQ(clean.sample_count(), 6u);
  EXPECT_EQ(clean.times().back(), 0.5e-6);
}

TEST(Transient, CycleAveragesDoNotDriftOverThousandsOfCycles) {
  // Regression: the cycle windows are anchored at t0 + i * period, not
  // accumulated (t += period), so thousands of cycles cannot drift a
  // window boundary across a sample. A ramp makes any drift visible in
  // the per-window means.
  const double period = 1e-6;
  const std::size_t cycles = 4000;
  const std::size_t per_cycle = 50;
  std::vector<double> ts, vs;
  ts.reserve(cycles * per_cycle + 1);
  for (std::size_t i = 0; i <= cycles * per_cycle; ++i) {
    const double t = static_cast<double>(i) * (period / per_cycle);
    ts.push_back(t);
    vs.push_back(t);  // value == time: window i averages (i + 0.5) * period
  }
  const Trace trace("x", std::move(ts), std::move(vs));
  const auto averages = cycle_averages(trace, period);
  ASSERT_EQ(averages.size(), cycles);
  for (std::size_t i : {std::size_t{0}, cycles / 2, cycles - 1}) {
    // Time-weighted average of the ramp over [i*p, (i+1)*p) is exactly the
    // window midpoint; a drifted window boundary would shift it by a
    // sample spacing or drop the window entirely.
    const double expected = (static_cast<double>(i) + 0.5) * period;
    EXPECT_NEAR(averages[i], expected, 1e-12) << "cycle " << i;
  }
  // Consecutive window averages of the ramp differ by exactly one period,
  // so it never reads as steady.
  EXPECT_FALSE(first_steady_cycle(trace, period, 1e-12).has_value());
}

TEST(Transient, SharedFactorCacheIsBitIdenticalAndDeterministic) {
  // Two simulations of the same netlist under different load waveforms
  // share step matrices (sources enter the RHS only): the second run's
  // lookups all hit. Cached results are bit-identical to uncached ones.
  const auto make_netlist = [](SourceFn load) {
    Netlist nl;
    const NodeId in = nl.add_node("in");
    const NodeId out = nl.add_node("out");
    nl.add_vsource("V1", in, kGround, 1.0_V);
    nl.add_resistor("R1", in, out, Resistance{10.0});
    nl.add_capacitor("C1", out, kGround, 1.0_uF);
    nl.add_isource("Iload", out, kGround, std::move(load));
    return nl;
  };
  const Netlist quiet = make_netlist([](double) { return 0.01; });
  const Netlist stepping =
      make_netlist([](double t) { return t < 0.5e-3 ? 0.01 : 0.05; });

  TransientOptions opts;
  opts.t_stop = Seconds{1e-3};
  opts.dt = Seconds{1e-6};
  opts.method = IntegrationMethod::kTrapezoidal;
  const TransientResult baseline = simulate(quiet, opts);

  TransientFactorCache cache;
  opts.factor_cache = &cache;
  const TransientResult cached = simulate(quiet, opts);
  // First-step backward Euler + trapezoidal full steps: two distinct
  // matrices, each missed exactly once.
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.size(), 2u);

  const TransientResult other = simulate(stepping, opts);
  EXPECT_EQ(cache.stats().misses, 2u);  // same matrices, different RHS
  EXPECT_EQ(cache.stats().hits, 2u);

  ASSERT_EQ(cached.sample_count(), baseline.sample_count());
  const Trace vb = baseline.voltage("out");
  const Trace vc = cached.voltage("out");
  for (std::size_t i = 0; i < vb.sample_count(); ++i) {
    EXPECT_EQ(vc.values()[i], vb.values()[i]) << "sample " << i;
  }

  // A shortened final step stamps its own matrix: one more distinct key.
  opts.t_stop = Seconds{1.0005e-3};
  (void)simulate(quiet, opts);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(Transient, CurrentSourceLoadDrawsFromNode) {
  Netlist nl;
  const NodeId out = nl.add_node("out");
  nl.add_vsource("V1", out, kGround, 1.0_V);
  nl.add_isource("Iload", out, kGround, 5.0_A);
  TransientOptions opts;
  opts.t_stop = Seconds{1e-4};
  opts.dt = Seconds{1e-6};
  const TransientResult r = simulate(nl, opts);
  // Load absorbs 5 W continuously.
  EXPECT_NEAR(r.power("Iload").back(), 5.0, 1e-9);
  EXPECT_NEAR(r.power("V1").back(), -5.0, 1e-9);
}

}  // namespace
}  // namespace vpd
