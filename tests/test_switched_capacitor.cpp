#include "vpd/converters/switched_capacitor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "vpd/common/error.hpp"

namespace vpd {
namespace {

using namespace vpd::literals;

ScDesignInputs standard_4to1() {
  ScDesignInputs in;
  in.name = "sc-4to1";
  in.device_tech = gan_technology();
  in.capacitor_tech = mlcc_technology();
  in.v_in = 48.0_V;
  in.ratio = 4;
  in.rated_current = 20.0_A;
  in.f_sw = 500.0_kHz;
  in.fly_capacitance = 10.0_uF;
  in.switch_resistance = 5.0_mOhm;
  return in;
}

TEST(Sc, IdealOutputVoltageIsVinOverN) {
  const SeriesParallelSc sc(standard_4to1());
  EXPECT_NEAR(sc.spec().v_out.value, 12.0, 1e-12);
}

TEST(Sc, SslMatchesClosedForm) {
  const SeriesParallelSc sc(standard_4to1());
  // SSL = (n-1) / (n^2 C f) = 3 / (16 * 10u * 500k).
  EXPECT_NEAR(sc.ssl_resistance().value, 3.0 / (16.0 * 10e-6 * 5e5), 1e-12);
}

TEST(Sc, FslMatchesClosedForm) {
  const SeriesParallelSc sc(standard_4to1());
  // FSL = 2 * (3n-2) * R / n^2 = 2 * 10 * 5m / 16.
  EXPECT_NEAR(sc.fsl_resistance().value, 2.0 * 10.0 * 5e-3 / 16.0, 1e-12);
}

TEST(Sc, OutputResistanceCombinesLimits) {
  const SeriesParallelSc sc(standard_4to1());
  EXPECT_NEAR(sc.output_resistance().value,
              std::hypot(sc.ssl_resistance().value,
                         sc.fsl_resistance().value),
              1e-15);
}

TEST(Sc, HigherFrequencyMovesTowardFsl) {
  ScDesignInputs slow = standard_4to1();
  slow.f_sw = 100.0_kHz;
  ScDesignInputs fast = standard_4to1();
  fast.f_sw = 10.0_MHz;
  const SeriesParallelSc sc_slow(slow);
  const SeriesParallelSc sc_fast(fast);
  EXPECT_GT(sc_slow.ssl_resistance().value, sc_slow.fsl_resistance().value);
  EXPECT_LT(sc_fast.ssl_resistance().value, sc_fast.fsl_resistance().value);
  EXPECT_LT(sc_fast.output_resistance().value,
            sc_slow.output_resistance().value);
}

TEST(Sc, LoadedVoltageDroopsWithCurrent) {
  const SeriesParallelSc sc(standard_4to1());
  const double droop =
      sc.spec().v_out.value - sc.loaded_output_voltage(20.0_A).value;
  EXPECT_NEAR(droop, 20.0 * sc.output_resistance().value, 1e-12);
}

TEST(Sc, SwitchCounts) {
  EXPECT_EQ(SeriesParallelSc::switch_count_for_ratio(2), 4u);
  EXPECT_EQ(SeriesParallelSc::switch_count_for_ratio(4), 10u);
  EXPECT_THROW(SeriesParallelSc::switch_count_for_ratio(1), InvalidArgument);
}

TEST(Sc, EfficiencyDegradesAtHighLoad) {
  const SeriesParallelSc sc(standard_4to1());
  EXPECT_GT(sc.efficiency(2.0_A), sc.efficiency(20.0_A));
  EXPECT_GT(sc.efficiency(20.0_A), 0.9);  // 12 V out, small Rout
}

TEST(Sc, Validation) {
  ScDesignInputs in = standard_4to1();
  in.ratio = 1;
  EXPECT_THROW(SeriesParallelSc{in}, InvalidArgument);
  in = standard_4to1();
  in.fly_capacitance = Capacitance{0.0};
  EXPECT_THROW(SeriesParallelSc{in}, InvalidArgument);
  in = standard_4to1();
  in.switch_resistance = Resistance{0.0};
  EXPECT_THROW(SeriesParallelSc{in}, InvalidArgument);
}

// Ratio sweep: SSL/FSL formulas stay consistent and the area grows with n.
class ScRatioSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ScRatioSweep, ClosedFormsAndMonotonicity) {
  ScDesignInputs in = standard_4to1();
  in.ratio = GetParam();
  const SeriesParallelSc sc(in);
  const double n = GetParam();
  EXPECT_NEAR(sc.ssl_resistance().value,
              (n - 1.0) / (n * n * 10e-6 * 5e5), 1e-12);
  EXPECT_EQ(sc.spec().switch_count, 3 * GetParam() - 2);
  EXPECT_EQ(sc.spec().capacitor_count, GetParam() - 1);
  EXPECT_NEAR(sc.spec().v_out.value, 48.0 / n, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Ratios, ScRatioSweep,
                         ::testing::Values(2u, 3u, 4u, 6u, 8u));

}  // namespace
}  // namespace vpd
