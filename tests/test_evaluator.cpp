// The reproduction's core assertions: the architecture evaluator must
// recover the paper's Section IV / Fig. 7 claims.
#include "vpd/arch/evaluator.hpp"

#include <gtest/gtest.h>

#include "vpd/common/error.hpp"
#include "vpd/workload/power_map.hpp"

namespace vpd {
namespace {

using namespace vpd::literals;

EvaluationOptions paper_mode() {
  EvaluationOptions o;
  o.below_die_area_fraction = 1.6;  // Fig. 7 includes A2+DPMIH (see docs)
  return o;
}

ArchitectureEvaluation eval(ArchitectureKind arch,
                            TopologyKind topo = TopologyKind::kDsch,
                            EvaluationOptions opts = paper_mode()) {
  return evaluate_architecture(arch, paper_system(), topo,
                               DeviceTechnology::kGalliumNitride, opts);
}

TEST(Evaluator, A0LosesMoreThanFortyPercent) {
  const auto a0 = eval(ArchitectureKind::kA0_PcbConversion);
  const double f = a0.loss_fraction(Power{1000.0});
  EXPECT_GT(f, 0.40);
  EXPECT_LT(f, 0.50);
  // Converter contributes its 10%-of-throughput; the rest is horizontal.
  EXPECT_NEAR(a0.conversion_stage1.value, 111.0, 2.0);
  EXPECT_GT(a0.horizontal_loss.value, 250.0);
}

TEST(Evaluator, A0VerticalLossIsNegligible) {
  const auto a0 = eval(ArchitectureKind::kA0_PcbConversion);
  EXPECT_LT(a0.vertical_loss.value, 5.0);  // the paper: negligible
}

TEST(Evaluator, A0FlagsDieSizeInfeasibility) {
  const auto a0 = eval(ArchitectureKind::kA0_PcbConversion);
  ASSERT_FALSE(a0.notes.empty());
  EXPECT_NE(a0.notes.front().find("1176"), std::string::npos);
}

TEST(Evaluator, VerticalDeliveryReachesEightyPercentEfficiency) {
  for (ArchitectureKind arch : {ArchitectureKind::kA1_InterposerPeriphery,
                                ArchitectureKind::kA2_InterposerBelowDie}) {
    const auto e = eval(arch, TopologyKind::kDsch);
    EXPECT_GT(e.efficiency(Power{1000.0}), 0.80) << to_string(arch);
    EXPECT_TRUE(e.within_rating) << to_string(arch);
  }
}

TEST(Evaluator, VpdConverterLossExceedsTenPercent) {
  // Paper conclusion: all proposed architectures show >10% converter loss.
  for (ArchitectureKind arch :
       {ArchitectureKind::kA1_InterposerPeriphery,
        ArchitectureKind::kA2_InterposerBelowDie,
        ArchitectureKind::kA3_TwoStage12V,
        ArchitectureKind::kA3_TwoStage6V}) {
    const auto e = eval(arch, TopologyKind::kDsch);
    EXPECT_GT(e.conversion_loss().value, 100.0) << to_string(arch);
  }
}

TEST(Evaluator, VpdPpdnLossBelowTenPercent) {
  // Paper conclusion: <10% loss in the PPDN for all proposed archs.
  for (ArchitectureKind arch :
       {ArchitectureKind::kA1_InterposerPeriphery,
        ArchitectureKind::kA2_InterposerBelowDie,
        ArchitectureKind::kA3_TwoStage12V,
        ArchitectureKind::kA3_TwoStage6V}) {
    const auto e = eval(arch, TopologyKind::kDsch);
    EXPECT_LT(e.ppdn_loss().value, 100.0) << to_string(arch);
  }
}

TEST(Evaluator, TwoStageLessEfficientThanSingleStage) {
  // The paper: dual-stage conversion yields lower efficiency than the
  // single-stage A1/A2 with DSCH.
  const double a1 = eval(ArchitectureKind::kA1_InterposerPeriphery)
                        .total_loss()
                        .value;
  const double a2 =
      eval(ArchitectureKind::kA2_InterposerBelowDie).total_loss().value;
  const double a3_12 =
      eval(ArchitectureKind::kA3_TwoStage12V).total_loss().value;
  const double a3_6 =
      eval(ArchitectureKind::kA3_TwoStage6V).total_loss().value;
  EXPECT_GT(a3_12, a1);
  EXPECT_GT(a3_12, a2);
  EXPECT_GT(a3_6, a3_12);  // lower intermediate rail carries more current
}

TEST(Evaluator, HorizontalLossShrinksDramaticallyWithTwoStage) {
  // Paper: up to 19x and 7x horizontal reduction for A3@12V / A3@6V
  // relative to A0. Our model reproduces double-digit reduction factors.
  const double a0 =
      eval(ArchitectureKind::kA0_PcbConversion).horizontal_loss.value;
  const double a3_12 =
      eval(ArchitectureKind::kA3_TwoStage12V).horizontal_loss.value;
  const double a3_6 =
      eval(ArchitectureKind::kA3_TwoStage6V).horizontal_loss.value;
  EXPECT_GT(a0 / a3_12, 10.0);
  EXPECT_GT(a0 / a3_6, 7.0);
  EXPECT_GT(a3_6, a3_12);  // 6 V rail carries 2x the current
}

TEST(Evaluator, A1PerVrCurrentsInPaperBand) {
  // Paper: A1 VR loads range 16-27 A. Our mesh yields the same band for
  // mid-edge VRs with lighter corner VRs; the max stays within the 30 A
  // DSCH rating.
  const auto a1 = eval(ArchitectureKind::kA1_InterposerPeriphery);
  ASSERT_TRUE(a1.vr_current_spread.has_value());
  EXPECT_EQ(a1.vr_count_stage2, 48u);
  EXPECT_GT(a1.vr_current_spread->max, 25.0);
  EXPECT_LT(a1.vr_current_spread->max, 30.0);
  EXPECT_GT(a1.vr_current_spread->mean, 19.0);
  EXPECT_LT(a1.vr_current_spread->mean, 22.5);
}

TEST(Evaluator, A2DpmihPerVrCurrentsApproachRating) {
  // Paper: A2 converters below the die center provide up to 93 A.
  const auto a2 =
      eval(ArchitectureKind::kA2_InterposerBelowDie, TopologyKind::kDpmih);
  ASSERT_TRUE(a2.vr_current_spread.has_value());
  EXPECT_GT(a2.vr_current_spread->max, 80.0);
  EXPECT_LT(a2.vr_current_spread->max, 100.0);
  EXPECT_TRUE(a2.within_rating);
}

TEST(Evaluator, A2SpreadWidensWithHotspotWorkload) {
  EvaluationOptions opts = paper_mode();
  const auto uniform =
      eval(ArchitectureKind::kA2_InterposerBelowDie, TopologyKind::kDpmih,
           opts);
  opts.sink_map = [](const GridMesh& mesh, Current total) {
    return hotspot_power_map(mesh, total, 0.5, 0.5, 0.15, 0.3);
  };
  opts.allow_extrapolation = true;
  const auto hotspot =
      eval(ArchitectureKind::kA2_InterposerBelowDie, TopologyKind::kDpmih,
           opts);
  const double uniform_ratio =
      uniform.vr_current_spread->max / uniform.vr_current_spread->min;
  const double hotspot_ratio =
      hotspot.vr_current_spread->max / hotspot.vr_current_spread->min;
  EXPECT_GT(hotspot_ratio, uniform_ratio);
  EXPECT_GT(hotspot_ratio, 4.0);  // the paper's ~9x band needs a hotspot
}

TEST(Evaluator, DicksonExceedsRatingAtPaperDeployment) {
  EvaluationOptions opts = paper_mode();
  opts.fixed_final_stage_vrs = 48;  // the paper's Table II deployment
  const auto e = eval(ArchitectureKind::kA1_InterposerPeriphery,
                      TopologyKind::kDickson, opts);
  EXPECT_FALSE(e.within_rating);
  EXPECT_TRUE(e.used_extrapolation);
}

TEST(Evaluator, ExtrapolationCanBeDisabled) {
  EvaluationOptions opts = paper_mode();
  opts.fixed_final_stage_vrs = 48;
  opts.allow_extrapolation = false;
  EXPECT_THROW(eval(ArchitectureKind::kA1_InterposerPeriphery,
                    TopologyKind::kDickson, opts),
               InfeasibleDesign);
}

TEST(Evaluator, StagesListCoversPath) {
  const auto a0 = eval(ArchitectureKind::kA0_PcbConversion);
  // PCB lateral, BGA, pkg lateral, C4, interposer lateral, TSV, u-bump.
  EXPECT_EQ(a0.stages.size(), 7u);
  double total = 0.0;
  for (const PathStage& s : a0.stages) total += s.loss().value;
  EXPECT_NEAR(total, a0.ppdn_loss().value, 1e-9);
}

TEST(Evaluator, LossBreakdownAddsUp) {
  const auto e = eval(ArchitectureKind::kA3_TwoStage12V);
  EXPECT_NEAR(e.total_loss().value,
              e.vertical_loss.value + e.horizontal_loss.value +
                  e.conversion_stage1.value + e.conversion_stage2.value,
              1e-9);
  EXPECT_GT(e.vr_count_stage1, 0u);
  EXPECT_GT(e.vr_count_stage2, 0u);
}

// Regression for the 48 V feed sizing: the feed current must cover the
// feed's own conduction loss (fixed point), not just the downstream
// demand. Before the fix the upstream path was sized from the losses
// known *before* the feed stages were added, under-reporting both the
// feed current and its I^2 R.
TEST(Evaluator, InputPowerBalancesEveryModeledLoss) {
  for (ArchitectureKind arch : {ArchitectureKind::kA0_PcbConversion,
                                ArchitectureKind::kA1_InterposerPeriphery,
                                ArchitectureKind::kA2_InterposerBelowDie,
                                ArchitectureKind::kA3_TwoStage12V,
                                ArchitectureKind::kA3_TwoStage6V}) {
    const auto e = eval(arch);
    // Energy balance: what the PCB supplies is the delivered power plus
    // every modeled loss — never less.
    EXPECT_NEAR(e.input_power.value, 1000.0 + e.total_loss().value,
                1e-9 * e.input_power.value)
        << to_string(arch);
    EXPECT_GE(e.input_power.value, 1000.0 + e.total_loss().value - 1e-9)
        << to_string(arch);
  }
}

TEST(Evaluator, FeedCurrentIsSelfConsistentWithInputPower) {
  const auto e = eval(ArchitectureKind::kA1_InterposerPeriphery);
  const PowerDeliverySpec spec = paper_system();
  // The PCB lateral segment carries the whole feed; at the fixed point
  // its current times 48 V equals the reported input power. The naive
  // (pre-fix) sizing from downstream demand alone is strictly smaller.
  const PathStage* pcb = nullptr;
  for (const PathStage& s : e.stages) {
    if (s.name == "pcb-lateral") pcb = &s;
  }
  ASSERT_NE(pcb, nullptr);
  EXPECT_NEAR(pcb->current.value * spec.pcb_voltage.value,
              e.input_power.value, 1e-6 * e.input_power.value);
  double upstream_feed_loss = 0.0;
  for (const PathStage& s : e.stages) {
    if (s.current.value == pcb->current.value) {
      upstream_feed_loss += s.loss().value;
    }
  }
  const double naive_current =
      (e.input_power.value - upstream_feed_loss) / spec.pcb_voltage.value;
  EXPECT_GT(pcb->current.value, naive_current);
}

TEST(Evaluator, IrdropToleranceOptionIsHonoured) {
  EvaluationOptions tight = paper_mode();
  tight.irdrop_relative_tolerance = 1e-12;
  EvaluationOptions loose = paper_mode();
  loose.irdrop_relative_tolerance = 1e-6;
  const auto precise = eval(ArchitectureKind::kA1_InterposerPeriphery,
                            TopologyKind::kDsch, tight);
  const auto coarse = eval(ArchitectureKind::kA1_InterposerPeriphery,
                           TopologyKind::kDsch, loose);
  // A looser solve stops earlier but must land on the same physics.
  EXPECT_LT(coarse.cg_iterations, precise.cg_iterations);
  EXPECT_NEAR(coarse.total_loss().value, precise.total_loss().value,
              1e-3 * precise.total_loss().value);

  EvaluationOptions invalid = paper_mode();
  invalid.irdrop_relative_tolerance = 0.0;
  EXPECT_THROW(eval(ArchitectureKind::kA1_InterposerPeriphery,
                    TopologyKind::kDsch, invalid),
               InvalidArgument);
}

TEST(Evaluator, WarmStartDoesNotChangeThePhysics) {
  // Pinned to Jacobi: under the IC default the preconditioner is strong
  // enough that warm and cold starts can land on the same (small)
  // iteration count, which would make the `<` below vacuous.
  EvaluationOptions warm = paper_mode();
  warm.irdrop_preconditioner = CgPreconditioner::kJacobi;
  EvaluationOptions cold = warm;
  cold.cg_warm_start = false;
  const auto with = eval(ArchitectureKind::kA2_InterposerBelowDie,
                         TopologyKind::kDsch, warm);
  const auto without = eval(ArchitectureKind::kA2_InterposerBelowDie,
                            TopologyKind::kDsch, cold);
  EXPECT_NEAR(with.total_loss().value, without.total_loss().value,
              1e-6 * without.total_loss().value);
  // The flat rail-voltage start is much closer than zero: most of the
  // rail sits within millivolts of nominal.
  EXPECT_LT(with.cg_iterations, without.cg_iterations);
}

TEST(Evaluator, OptionValidation) {
  EvaluationOptions opts;
  opts.mesh_nodes = 2;
  EXPECT_THROW(eval(ArchitectureKind::kA1_InterposerPeriphery,
                    TopologyKind::kDsch, opts),
               InvalidArgument);
  opts = EvaluationOptions{};
  opts.distribution_sheet_ohms = 0.0;
  EXPECT_THROW(eval(ArchitectureKind::kA1_InterposerPeriphery,
                    TopologyKind::kDsch, opts),
               InvalidArgument);
}

// Mesh-resolution robustness of the headline numbers.
class EvaluatorMeshSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EvaluatorMeshSweep, A1LossStableAcrossResolutions) {
  EvaluationOptions opts = paper_mode();
  opts.mesh_nodes = GetParam();
  const auto e = eval(ArchitectureKind::kA1_InterposerPeriphery,
                      TopologyKind::kDsch, opts);
  const double f = e.loss_fraction(Power{1000.0});
  EXPECT_GT(f, 0.14);
  EXPECT_LT(f, 0.21);
}

INSTANTIATE_TEST_SUITE_P(MeshSizes, EvaluatorMeshSweep,
                         ::testing::Values<std::size_t>(21, 31, 41, 61));

}  // namespace
}  // namespace vpd
