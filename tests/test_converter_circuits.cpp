// Integration tests: the converter netlist builders simulated with the
// circuit engine, cross-validated against the analytical models.
#include <gtest/gtest.h>

#include <cmath>

#include "vpd/circuit/transient.hpp"
#include "vpd/common/error.hpp"
#include "vpd/converters/netlist_builder.hpp"
#include "vpd/converters/switched_capacitor.hpp"

namespace vpd {
namespace {

using namespace vpd::literals;

TransientResult run(const SimulatableConverter& sim, double cycles,
                    double steps_per_cycle = 400.0) {
  TransientOptions opts;
  opts.t_stop = Seconds{cycles * sim.switching_period.value};
  opts.dt = Seconds{sim.switching_period.value / steps_per_cycle};
  opts.controller = sim.controller;
  return simulate(sim.netlist, opts);
}

TEST(BuckCircuit, OutputTracksDutyCycle) {
  BuckCircuitParams p;
  p.v_in = 12.0_V;
  p.duty = 0.5;
  p.f_sw = 1.0_MHz;
  const SimulatableConverter sim = build_buck_circuit(p);
  const TransientResult r = run(sim, 40.0);
  const Trace vout = r.voltage(sim.output_node);
  const double avg = vout.tail(10.0 * sim.switching_period.value).average();
  EXPECT_NEAR(avg, 6.0, 0.15);
}

TEST(BuckCircuit, RippleMatchesSizingFormula) {
  BuckCircuitParams p;
  p.v_in = 12.0_V;
  p.duty = 0.5;
  p.f_sw = 1.0_MHz;
  p.inductance = 10.0_uH;
  const SimulatableConverter sim = build_buck_circuit(p);
  const TransientResult r = run(sim, 40.0, 800.0);
  const Trace il = r.current("L1");
  // dI = Vout (1-D) / (L f) = 6 * 0.5 / (10u * 1M) = 0.3 A.
  EXPECT_NEAR(il.tail(2.0 * sim.switching_period.value).peak_to_peak(), 0.3,
              0.05);
}

TEST(BuckCircuit, LowDutyProducesLowVoltage) {
  BuckCircuitParams p;
  p.v_in = 12.0_V;
  p.duty = 1.0 / 12.0;
  p.f_sw = 2.0_MHz;
  p.inductance = 1.0_uH;
  const SimulatableConverter sim = build_buck_circuit(p);
  const TransientResult r = run(sim, 60.0);
  const double avg = r.voltage(sim.output_node)
                         .tail(10.0 * sim.switching_period.value)
                         .average();
  EXPECT_NEAR(avg, 1.0, 0.1);
}

TEST(ScCircuit, TwoToOneConvertsToHalf) {
  ScCircuitParams p;
  p.v_in = 8.0_V;
  p.ratio = 2;
  p.output_capacitance = 4.7_uF;
  const SimulatableConverter sim = build_series_parallel_sc_circuit(p);
  const TransientResult r = run(sim, 60.0);
  const double avg = r.voltage(sim.output_node)
                         .tail(10.0 * sim.switching_period.value)
                         .average();
  // Ideal 4 V minus droop through R_out; expect within ~7% of ideal.
  EXPECT_NEAR(avg, 4.0, 0.3);
  EXPECT_LT(avg, 4.0);  // droop is real
}

TEST(ScCircuit, DroopMatchesSeemanSandersModel) {
  ScCircuitParams p;
  p.v_in = 8.0_V;
  p.ratio = 2;
  p.f_sw = 1.0_MHz;
  p.fly_capacitance = 10.0_uF;
  p.switch_on_resistance = 10.0_mOhm;
  p.output_capacitance = 4.7_uF;
  p.load = 1.0_Ohm;
  const SimulatableConverter sim = build_series_parallel_sc_circuit(p);
  const TransientResult r = run(sim, 80.0, 500.0);
  const double window = 10.0 * sim.switching_period.value;
  const double v_avg = r.voltage(sim.output_node).tail(window).average();
  const double i_avg = r.current(sim.load_element).tail(window).average();
  const double r_out_sim = (4.0 - v_avg) / i_avg;

  // Analytic model for the same design point.
  ScDesignInputs in;
  in.device_tech = gan_technology();
  in.capacitor_tech = mlcc_technology();
  in.v_in = p.v_in;
  in.ratio = p.ratio;
  in.rated_current = 10.0_A;
  in.f_sw = p.f_sw;
  in.fly_capacitance = p.fly_capacitance;
  in.switch_resistance = p.switch_on_resistance;
  const SeriesParallelSc sc(in);
  const double r_out_model = sc.output_resistance().value;

  // Seeman-Sanders sqrt interpolation is accurate to a few tens of percent.
  EXPECT_NEAR(r_out_sim, r_out_model, 0.35 * r_out_model)
      << "sim=" << r_out_sim << " model=" << r_out_model;
}

TEST(ScCircuit, ThreeToOneConvertsToThird) {
  ScCircuitParams p;
  p.v_in = 9.0_V;
  p.ratio = 3;
  p.output_capacitance = 4.7_uF;
  const SimulatableConverter sim = build_series_parallel_sc_circuit(p);
  const TransientResult r = run(sim, 60.0);
  const double avg = r.voltage(sim.output_node)
                         .tail(10.0 * sim.switching_period.value)
                         .average();
  EXPECT_NEAR(avg, 3.0, 0.3);
}

TEST(ScCircuit, EnergyBalanceHolds) {
  ScCircuitParams p;
  p.v_in = 8.0_V;
  p.ratio = 2;
  p.output_capacitance = 4.7_uF;
  const SimulatableConverter sim = build_series_parallel_sc_circuit(p);
  const TransientResult r = run(sim, 40.0, 500.0);
  // Average over whole run: input power >= load power, efficiency < 1 but
  // high for this lightly loaded design.
  const double window = 20.0 * sim.switching_period.value;
  const double p_in = -r.average_power(sim.input_source,
                                       Seconds{window})
                           .value;
  const double p_load =
      r.average_power(sim.load_element, Seconds{window}).value;
  EXPECT_GT(p_in, p_load);
  EXPECT_GT(p_load / p_in, 0.85);
  EXPECT_LT(p_load / p_in, 1.0);
}

TEST(ScCircuit, ColdStartChargesUp) {
  ScCircuitParams p;
  p.v_in = 8.0_V;
  p.ratio = 2;
  p.preload_steady_state = false;
  p.output_capacitance = 2.0_uF;
  const SimulatableConverter sim = build_series_parallel_sc_circuit(p);
  const TransientResult r = run(sim, 80.0);
  const Trace vout = r.voltage(sim.output_node);
  EXPECT_LT(vout.at(0.0), 0.1);
  EXPECT_GT(vout.back(), 3.4);
}

TEST(Fcml3Circuit, RegulatesToDutyTimesVin) {
  FcmlCircuitParams p;
  p.v_in = 48.0_V;
  p.duty = 0.25;
  const SimulatableConverter sim = build_fcml3_circuit(p);
  const TransientResult r = run(sim, 40.0);
  const double avg = r.voltage(sim.output_node)
                         .tail(10.0 * sim.switching_period.value)
                         .average();
  EXPECT_NEAR(avg, 12.0, 0.6);
}

TEST(Fcml3Circuit, FlyingCapStaysBalanced) {
  // Symmetric charge/discharge by the inductor current keeps the flying
  // capacitor at Vin/2 without any balancing controller.
  FcmlCircuitParams p;
  const SimulatableConverter sim = build_fcml3_circuit(p);
  const TransientResult r = run(sim, 60.0);
  const Trace vc = [&] {
    const Trace v1 = r.voltage("n1");
    const Trace v2 = r.voltage("n2");
    std::vector<double> diff(v1.sample_count());
    for (std::size_t i = 0; i < diff.size(); ++i)
      diff[i] = v1.values()[i] - v2.values()[i];
    return Trace("vcfly", v1.times(), std::move(diff));
  }();
  EXPECT_NEAR(vc.tail(10.0 * sim.switching_period.value).average(), 24.0,
              1.0);
}

TEST(Fcml3Circuit, SwitchNodeStressIsHalved) {
  FcmlCircuitParams p;
  const SimulatableConverter sim = build_fcml3_circuit(p);
  const TransientResult r = run(sim, 20.0);
  const Trace vsw =
      r.voltage("sw").tail(4.0 * sim.switching_period.value);
  // The switch node never sees the full 48 V input — only ~Vin/2.
  EXPECT_LT(vsw.max(), 0.55 * 48.0 + 1.0);
  EXPECT_GT(vsw.max(), 0.45 * 48.0 - 1.0);
}

TEST(Fcml3Circuit, RippleFrequencyIsDoubled) {
  // The frequency-multiplication claim: the inductor ripple's dominant
  // component sits at 2 x f_sw, not f_sw.
  FcmlCircuitParams p;
  p.f_sw = 500.0_kHz;
  const SimulatableConverter sim = build_fcml3_circuit(p);
  const TransientResult r = run(sim, 40.0, 500.0);
  const Trace il = r.current("L1").tail(10.0 * sim.switching_period.value);
  const double at_f = il.harmonic_magnitude(500e3);
  const double at_2f = il.harmonic_magnitude(1000e3);
  EXPECT_GT(at_2f, 3.0 * at_f);
}

TEST(Fcml3Circuit, Validation) {
  FcmlCircuitParams p;
  p.duty = 0.6;  // outside the modeled (0, 0.5) band
  EXPECT_THROW(build_fcml3_circuit(p), InvalidArgument);
}

}  // namespace
}  // namespace vpd
