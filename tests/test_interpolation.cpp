#include "vpd/common/interpolation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "vpd/common/error.hpp"

namespace vpd {
namespace {

TEST(PiecewiseLinear, InterpolatesBetweenKnots) {
  const PiecewiseLinear f({0.0, 1.0, 2.0}, {0.0, 10.0, 0.0});
  EXPECT_DOUBLE_EQ(f(0.5), 5.0);
  EXPECT_DOUBLE_EQ(f(1.5), 5.0);
  EXPECT_DOUBLE_EQ(f(1.0), 10.0);
}

TEST(PiecewiseLinear, ExactAtKnots) {
  const PiecewiseLinear f({1.0, 2.0, 4.0}, {3.0, -1.0, 7.0});
  EXPECT_DOUBLE_EQ(f(1.0), 3.0);
  EXPECT_DOUBLE_EQ(f(2.0), -1.0);
  EXPECT_DOUBLE_EQ(f(4.0), 7.0);
}

TEST(PiecewiseLinear, ClampPolicyHoldsBoundary) {
  const PiecewiseLinear f({0.0, 1.0}, {2.0, 4.0}, Extrapolation::kClamp);
  EXPECT_DOUBLE_EQ(f(-5.0), 2.0);
  EXPECT_DOUBLE_EQ(f(9.0), 4.0);
}

TEST(PiecewiseLinear, LinearPolicyExtendsSlope) {
  const PiecewiseLinear f({0.0, 1.0}, {0.0, 2.0}, Extrapolation::kLinear);
  EXPECT_DOUBLE_EQ(f(2.0), 4.0);
  EXPECT_DOUBLE_EQ(f(-1.0), -2.0);
}

TEST(PiecewiseLinear, ThrowPolicyThrows) {
  const PiecewiseLinear f({0.0, 1.0}, {0.0, 1.0}, Extrapolation::kThrow);
  EXPECT_THROW(f(1.5), InvalidArgument);
  EXPECT_THROW(f(-0.1), InvalidArgument);
  EXPECT_NO_THROW(f(0.5));
}

TEST(PiecewiseLinear, RejectsBadKnots) {
  EXPECT_THROW(PiecewiseLinear({1.0, 1.0}, {0.0, 0.0}), InvalidArgument);
  EXPECT_THROW(PiecewiseLinear({2.0, 1.0}, {0.0, 0.0}), InvalidArgument);
  EXPECT_THROW(PiecewiseLinear({1.0}, {0.0}), InvalidArgument);
  EXPECT_THROW(PiecewiseLinear({1.0, 2.0}, {0.0}), InvalidArgument);
}

TEST(PiecewiseLinear, ArgmaxAndMax) {
  const PiecewiseLinear f({0.0, 10.0, 30.0, 100.0}, {0.5, 0.91, 0.88, 0.8});
  EXPECT_DOUBLE_EQ(f.argmax(), 10.0);
  EXPECT_DOUBLE_EQ(f.max_value(), 0.91);
}

TEST(Linspace, EndpointsAndSpacing) {
  const auto v = linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_DOUBLE_EQ(v[1], 0.25);
  EXPECT_THROW(linspace(0.0, 1.0, 1), InvalidArgument);
}

TEST(Logspace, EndpointsAndMonotonicity) {
  const auto v = logspace(1.0, 1000.0, 4);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_NEAR(v[0], 1.0, 1e-12);
  EXPECT_NEAR(v[1], 10.0, 1e-9);
  EXPECT_NEAR(v[2], 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(v[3], 1000.0);
  EXPECT_THROW(logspace(0.0, 1.0, 3), InvalidArgument);
}

TEST(RootBisect, FindsSqrtTwo) {
  const double r =
      find_root_bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_NEAR(r, std::sqrt(2.0), 1e-10);
}

TEST(RootBisect, ReturnsEndpointRoot) {
  EXPECT_DOUBLE_EQ(
      find_root_bisect([](double x) { return x; }, 0.0, 1.0), 0.0);
}

TEST(RootBisect, NoSignChangeThrows) {
  EXPECT_THROW(
      find_root_bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0),
      InvalidArgument);
}

TEST(GoldenSection, FindsParabolaMinimum) {
  const double x =
      minimize_golden([](double t) { return (t - 3.0) * (t - 3.0); }, 0.0,
                      10.0);
  EXPECT_NEAR(x, 3.0, 1e-6);
}

TEST(GoldenSection, FindsEfficiencyPeakShape) {
  // eta(I) = I / (I + k0 + k2 I^2) peaks at sqrt(k0/k2).
  const double k0 = 1.5, k2 = 1.0 / 600.0;
  const auto loss = [&](double i) { return -(i / (i + k0 + k2 * i * i)); };
  const double peak = minimize_golden(loss, 0.1, 100.0, 1e-9);
  EXPECT_NEAR(peak, std::sqrt(k0 / k2), 1e-4);
}

}  // namespace
}  // namespace vpd
