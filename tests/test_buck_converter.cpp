#include "vpd/converters/buck.hpp"

#include <gtest/gtest.h>

#include "vpd/common/error.hpp"

namespace vpd {
namespace {

using namespace vpd::literals;

BuckDesignInputs standard_12to1(unsigned phases = 4) {
  BuckDesignInputs in;
  in.name = "12to1-test";
  in.device_tech = gan_technology();
  in.inductor_tech = embedded_package_inductor_technology();
  in.capacitor_tech = deep_trench_technology();
  in.v_in = 12.0_V;
  in.v_out = 1.0_V;
  in.rated_current = 40.0_A;
  in.phases = phases;
  in.f_sw = 2.0_MHz;
  return in;
}

TEST(Buck, DutyMatchesConversionRatio) {
  const SynchronousBuck buck(standard_12to1());
  EXPECT_NEAR(buck.duty(), 1.0 / 12.0, 1e-12);
}

TEST(Buck, SpecReflectsDesign) {
  const SynchronousBuck buck(standard_12to1(4));
  EXPECT_EQ(buck.spec().switch_count, 8u);
  EXPECT_EQ(buck.spec().inductor_count, 4u);
  EXPECT_NEAR(buck.spec().max_current.value, 40.0, 1e-12);
  EXPECT_GT(as_mm2(buck.spec().area), 0.0);
}

TEST(Buck, ConductionBudgetHonoredAtRatedLoad) {
  BuckDesignInputs in = standard_12to1();
  in.conduction_budget_fraction = 0.02;
  const SynchronousBuck buck(in);
  const BuckLossBreakdown b = buck.loss_breakdown(40.0_A);
  // FET conduction loss should be ~2% of the 40 W output.
  EXPECT_NEAR(b.fet_conduction.value, 0.02 * 40.0, 0.02 * 40.0 * 0.05);
}

TEST(Buck, EfficiencyCurveIsReasonable) {
  const SynchronousBuck buck(standard_12to1());
  // 12->1 GaN buck at 2 MHz: expect peak efficiency somewhere in 85-97%.
  const double peak = buck.loss_model().peak_efficiency(1.0_V);
  EXPECT_GT(peak, 0.85);
  EXPECT_LT(peak, 0.97);
}

TEST(Buck, PhaseCountInvariantsAtFixedConductionBudget) {
  // At a fixed total conduction budget, each phase's allowed on-resistance
  // grows as N (current I/N, budget/N), so per-FET area shrinks as 1/N and
  // the total silicon is invariant. The multiphase win is elsewhere:
  // smaller per-phase ripple and interleaving-cancelled output ripple.
  const SynchronousBuck b1(standard_12to1(1));
  const SynchronousBuck b4(standard_12to1(4));
  const double area1 =
      b1.high_side_fet().area().value + b1.low_side_fet().area().value;
  const double area4 =
      4.0 * (b4.high_side_fet().area().value +
             b4.low_side_fet().area().value);
  EXPECT_NEAR(area4, area1, 1e-9 * area1);
  // FET conduction loss at rated load matches the budget in both designs.
  EXPECT_NEAR(b1.loss_breakdown(40.0_A).fet_conduction.value,
              b4.loss_breakdown(40.0_A).fet_conduction.value, 1e-9);
  // Per-phase inductor ripple current is smaller with more phases.
  EXPECT_LT(b4.inductor_ripple().value, b1.inductor_ripple().value);
  // Interleaving shrinks the required output capacitance.
  EXPECT_LE(b4.output_capacitor().nominal().value,
            b1.output_capacitor().nominal().value);
}

TEST(Buck, HigherFrequencyShrinksInductorButRaisesFixedLoss) {
  BuckDesignInputs slow = standard_12to1();
  slow.f_sw = 1.0_MHz;
  BuckDesignInputs fast = standard_12to1();
  fast.f_sw = 8.0_MHz;
  const SynchronousBuck b_slow(slow);
  const SynchronousBuck b_fast(fast);
  EXPECT_LT(b_fast.inductor().inductance().value,
            b_slow.inductor().inductance().value);
  EXPECT_GT(b_fast.loss_model().k0(), b_slow.loss_model().k0());
}

TEST(Buck, LossBreakdownConsistentWithModel) {
  const SynchronousBuck buck(standard_12to1());
  const Current load = 30.0_A;
  const BuckLossBreakdown b = buck.loss_breakdown(load);
  // The quadratic model and the physical breakdown should agree within a
  // modest margin (the model folds ripple terms into k0).
  const double model_loss = buck.loss(load).value;
  EXPECT_NEAR(b.total().value, model_loss, 0.25 * model_loss);
}

TEST(Buck, InductorRippleMatchesSizingTarget) {
  BuckDesignInputs in = standard_12to1();
  in.ripple_fraction = 0.4;
  const SynchronousBuck buck(in);
  const double i_phase = 40.0 / 4.0;
  EXPECT_NEAR(buck.inductor_ripple().value, 0.4 * i_phase, 1e-9);
}

TEST(Buck, SupportsOnlyUpToRatedCurrent) {
  const SynchronousBuck buck(standard_12to1());
  EXPECT_TRUE(buck.supports(40.0_A));
  EXPECT_FALSE(buck.supports(41.0_A));
  EXPECT_THROW(buck.loss(50.0_A), InfeasibleDesign);
  EXPECT_NO_THROW(buck.loss_extrapolated(50.0_A));
}

TEST(Buck, InputPowerEqualsOutputPlusLoss) {
  const SynchronousBuck buck(standard_12to1());
  const Current load = 20.0_A;
  EXPECT_NEAR(buck.input_power(load).value,
              buck.output_power(load).value + buck.loss(load).value, 1e-12);
  EXPECT_NEAR(buck.efficiency(load),
              buck.output_power(load).value / buck.input_power(load).value,
              1e-12);
}

TEST(Buck, Validation) {
  BuckDesignInputs in = standard_12to1();
  in.phases = 0;
  EXPECT_THROW(SynchronousBuck{in}, InvalidArgument);
  in = standard_12to1();
  in.rated_current = Current{0.0};
  EXPECT_THROW(SynchronousBuck{in}, InvalidArgument);
  in = standard_12to1();
  in.ripple_fraction = 0.0;
  EXPECT_THROW(SynchronousBuck{in}, InvalidArgument);
  in = standard_12to1();
  in.v_out = 13.0_V;  // Vout > Vin
  EXPECT_THROW(SynchronousBuck{in}, InvalidArgument);
}

// Parameterized: across phase counts the design stays self-consistent.
class BuckPhaseSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(BuckPhaseSweep, DesignInvariants) {
  const SynchronousBuck buck(standard_12to1(GetParam()));
  EXPECT_EQ(buck.spec().switch_count, 2 * GetParam());
  EXPECT_GT(buck.efficiency(20.0_A), 0.5);
  // Per-phase inductor saturation rating covers DC + half ripple.
  const double i_phase = 40.0 / GetParam();
  EXPECT_FALSE(buck.inductor().saturates_at(
      Current{i_phase + 0.5 * buck.inductor_ripple().value}));
}

INSTANTIATE_TEST_SUITE_P(Phases, BuckPhaseSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u));

}  // namespace
}  // namespace vpd
