// Design-space optimizer subsystem: DesignSpace validation and lowering,
// ε-dominance Pareto archive semantics (dominance edges, box duels,
// stable ordering), the analytic hypervolume cases, the seeded
// determinism contract (parallel == serial bit-identical, same seed ->
// same front), survivability scoring on elites, and the optimize wire
// schema. Runs in its own ctest executable labelled `opt` so the
// threaded search paths can be exercised under -DVPD_SANITIZE=ON in
// isolation (ctest -L opt).
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "vpd/common/error.hpp"
#include "vpd/io/schema.hpp"
#include "vpd/opt/design_space.hpp"
#include "vpd/opt/optimizer.hpp"
#include "vpd/opt/pareto.hpp"

namespace vpd {
namespace {

/// A cheap, fully feasible slice of the space: the two-stage
/// architectures accept every VR count from 36 up even at the coarse
/// mesh resolution the tests pin (single-stage A1/A2 need 56+ VRs
/// there, which would starve small populations of feasible points).
opt::DesignSpace small_space() {
  opt::DesignSpace space;
  space.architectures = {ArchitectureKind::kA3_TwoStage12V,
                         ArchitectureKind::kA3_TwoStage6V};
  space.topologies = {TopologyKind::kDsch};
  space.vr_count = {36, 48};
  return space;
}

opt::OptimizerConfig small_config() {
  opt::OptimizerConfig config;
  config.population = 6;
  config.generations = 2;
  config.survivability.max_elites = 0;
  config.base_options.mesh_nodes = 11;
  config.sweep.threads = 2;
  return config;
}

// ---------------------------------------------------------------------------
// DesignSpace: validation, membership, lowering
// ---------------------------------------------------------------------------

TEST(DesignSpace, DefaultSpaceValidates) {
  const opt::DesignSpace space;
  EXPECT_NO_THROW(space.validate());
  EXPECT_EQ(space.categorical_combinations(), 4u * 3u * 1u);
}

TEST(DesignSpace, RejectsDegenerateAxes) {
  opt::DesignSpace space;
  space.architectures.clear();
  EXPECT_THROW(space.validate(), InvalidArgument);

  space = opt::DesignSpace{};
  space.architectures.push_back(space.architectures.front());  // duplicate
  EXPECT_THROW(space.validate(), InvalidArgument);

  space = opt::DesignSpace{};
  space.architectures.push_back(ArchitectureKind::kA0_PcbConversion);
  EXPECT_THROW(space.validate(), InvalidArgument);

  space = opt::DesignSpace{};
  space.vr_count = {0, 8};  // the optimizer searches explicit counts
  EXPECT_THROW(space.validate(), InvalidArgument);

  space = opt::DesignSpace{};
  space.vr_attach_series_ohms = {2e-4, 1e-4};  // inverted
  EXPECT_THROW(space.validate(), InvalidArgument);

  space = opt::DesignSpace{};
  space.distribution_sheet_ohms = {0.0, 1e-3};  // non-positive
  EXPECT_THROW(space.validate(), InvalidArgument);
}

TEST(DesignSpace, ContainsAndRepair) {
  const opt::DesignSpace space;
  opt::DesignPoint point;  // defaults sit inside the default space
  EXPECT_TRUE(opt::contains(space, point));

  point.vr_count = 1000;
  EXPECT_FALSE(opt::contains(space, point));
  const opt::DesignPoint repaired = opt::repair(space, point);
  EXPECT_EQ(repaired.vr_count, space.vr_count.hi);
  EXPECT_TRUE(opt::contains(space, repaired));

  // Categorical values off their axis are not repairable.
  opt::DesignSpace narrow = small_space();
  opt::DesignPoint foreign;
  foreign.architecture = ArchitectureKind::kA1_InterposerPeriphery;
  foreign.vr_count = 40;
  EXPECT_THROW(opt::repair(narrow, foreign), InvalidArgument);
}

TEST(DesignSpace, LowerMapsEveryKnobAndPreservesBase) {
  opt::DesignPoint point;
  point.vr_count = 42;
  point.periphery_rings = 3;
  point.below_die_area_fraction = 1.25;
  point.vr_attach_series_ohms = 77e-6;
  point.distribution_sheet_ohms = 3e-3;

  EvaluationOptions base;
  base.mesh_nodes = 17;
  const EvaluationOptions lowered = opt::lower(point, base);
  EXPECT_EQ(lowered.fixed_final_stage_vrs, 42u);
  EXPECT_EQ(lowered.max_periphery_rings, 3u);
  EXPECT_DOUBLE_EQ(lowered.below_die_area_fraction, 1.25);
  EXPECT_DOUBLE_EQ(lowered.vr_attach_series.value, 77e-6);
  EXPECT_DOUBLE_EQ(lowered.distribution_sheet_ohms, 3e-3);
  EXPECT_EQ(lowered.mesh_nodes, 17u);  // base survives untouched

  base.faults.dropped_sites = {0};
  EXPECT_THROW(opt::lower(point, base), InvalidArgument);
}

TEST(DesignSpace, DesignPointKeyIsExactAndDistinct) {
  opt::DesignPoint a;
  const std::string key = opt::design_point_key(a);
  EXPECT_NE(key.find("A1/DSCH/GaN/vrs=48"), std::string::npos);

  opt::DesignPoint b = a;
  b.vr_attach_series_ohms = std::nextafter(a.vr_attach_series_ohms, 1.0);
  // Shortest-round-trip float printing keeps even 1-ulp neighbours
  // distinct — the dedup intern never conflates near-identical points.
  EXPECT_NE(opt::design_point_key(a), opt::design_point_key(b));
}

TEST(DesignSpace, SampleStaysInsideAndIsSeedStable) {
  const opt::DesignSpace space;
  Rng rng(7, 3);
  Rng rng2(7, 3);
  for (int i = 0; i < 64; ++i) {
    const opt::DesignPoint p = opt::sample(space, rng);
    EXPECT_TRUE(opt::contains(space, p));
    EXPECT_EQ(opt::design_point_key(p),
              opt::design_point_key(opt::sample(space, rng2)));
  }
}

// ---------------------------------------------------------------------------
// Pareto dominance and the ε archive
// ---------------------------------------------------------------------------

TEST(Pareto, DominanceEdges) {
  EXPECT_TRUE(opt::dominates({1.0, 1.0}, {2.0, 2.0}));
  EXPECT_TRUE(opt::dominates({1.0, 2.0}, {2.0, 2.0}));  // one axis strict
  EXPECT_FALSE(opt::dominates({1.0, 1.0}, {1.0, 1.0}));  // equal: no
  EXPECT_FALSE(opt::dominates({1.0, 3.0}, {2.0, 2.0}));  // incomparable
  EXPECT_FALSE(opt::dominates({2.0, 2.0}, {1.0, 1.0}));
}

TEST(Pareto, ZeroEpsilonDegradesToPlainDominance) {
  opt::ParetoArchive archive({0.0, 0.0});
  EXPECT_TRUE(archive.insert(0, {1.0, 2.0}));
  EXPECT_TRUE(archive.insert(1, {2.0, 1.0}));   // incomparable: both stay
  EXPECT_FALSE(archive.insert(2, {1.0, 2.0}));  // duplicate loses the duel
  EXPECT_TRUE(archive.insert(3, {0.5, 0.5}));   // dominates both: evicts
  EXPECT_EQ(archive.size(), 1u);
  EXPECT_EQ(archive.entries().front().id, 3u);
}

TEST(Pareto, EpsilonBoxKeepsOneRepresentativePerBox) {
  opt::ParetoArchive archive({1.0, 1.0});
  EXPECT_TRUE(archive.insert(0, {1.9, 1.9}));
  // Same box [1,2)x[1,2): closer to the lower corner wins the duel.
  EXPECT_TRUE(archive.insert(1, {1.2, 1.2}));
  EXPECT_EQ(archive.size(), 1u);
  EXPECT_EQ(archive.entries().front().id, 1u);
  // Farther from the corner: rejected, archive unchanged.
  EXPECT_FALSE(archive.insert(2, {1.8, 1.3}));
  EXPECT_EQ(archive.entries().front().id, 1u);
  // A box-dominated point (box {2,1} vs member box {1,1}) is rejected
  // even though no member plainly dominates it per-coordinate.
  EXPECT_FALSE(archive.insert(3, {2.5, 1.1}));
  // An incomparable box (here {2,0}) survives alongside.
  EXPECT_TRUE(archive.insert(4, {2.5, 0.1}));
  EXPECT_EQ(archive.size(), 2u);
}

TEST(Pareto, SameBoxExactTieBreaksOnSmallerId) {
  opt::ParetoArchive archive({1.0});
  EXPECT_TRUE(archive.insert(5, {0.5}));
  EXPECT_FALSE(archive.insert(9, {0.5}));  // same point, larger id loses
  EXPECT_EQ(archive.entries().front().id, 5u);

  opt::ParetoArchive reversed({1.0});
  EXPECT_TRUE(reversed.insert(9, {0.5}));
  EXPECT_TRUE(reversed.insert(5, {0.5}));  // smaller id wins the duel
  EXPECT_EQ(reversed.entries().front().id, 5u);
}

TEST(Pareto, EntriesHaveStableLexicographicOrder) {
  opt::ParetoArchive archive({0.0, 0.0});
  archive.insert(2, {3.0, 1.0});
  archive.insert(0, {1.0, 3.0});
  archive.insert(1, {2.0, 2.0});
  const std::vector<opt::ArchiveEntry> entries = archive.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].id, 0u);  // (1,3) < (2,2) < (3,1) lexicographically
  EXPECT_EQ(entries[1].id, 1u);
  EXPECT_EQ(entries[2].id, 2u);
}

TEST(Pareto, InsertRejectsWrongArity) {
  opt::ParetoArchive archive({1.0, 1.0});
  EXPECT_THROW(archive.insert(0, {1.0}), InvalidArgument);
  EXPECT_THROW(opt::ParetoArchive({-1.0}), InvalidArgument);
}

TEST(Pareto, HypervolumeAnalyticCases) {
  // 1-D: distance from the best point to the reference.
  EXPECT_DOUBLE_EQ(opt::hypervolume({{2.0}, {3.0}}, {5.0}), 3.0);
  // 2-D single point: the dominated rectangle.
  EXPECT_DOUBLE_EQ(opt::hypervolume({{1.0, 1.0}}, {3.0, 4.0}), 6.0);
  // 2-D staircase: union of two overlapping rectangles.
  // (1,2) spans 2x2, (2,1) spans 1x3, overlap 1x2 -> 2*2 + 1*3 - 1*2 = 5.
  EXPECT_DOUBLE_EQ(opt::hypervolume({{1.0, 2.0}, {2.0, 1.0}}, {3.0, 4.0}),
                   5.0);
  // A point at or beyond the reference contributes nothing.
  EXPECT_DOUBLE_EQ(opt::hypervolume({{3.0, 4.0}}, {3.0, 4.0}), 0.0);
  EXPECT_DOUBLE_EQ(opt::hypervolume({}, {3.0, 4.0}), 0.0);
  // Clipping: a coordinate at or past the reference is clipped to it, so
  // a point worse than the reference on one axis contributes only what
  // the remaining axes dominate inside the box — here nothing.
  EXPECT_DOUBLE_EQ(opt::hypervolume({{1.0, 5.0}, {2.0, 1.0}}, {3.0, 4.0}),
                   3.0);
  // 3-D cube corner.
  EXPECT_DOUBLE_EQ(opt::hypervolume({{0.0, 0.0, 0.0}}, {2.0, 2.0, 2.0}),
                   8.0);
}

// ---------------------------------------------------------------------------
// Optimizer: config validation and the determinism contract
// ---------------------------------------------------------------------------

TEST(Optimizer, ConfigValidation) {
  opt::OptimizerConfig config;
  config.population = 3;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config = {};
  config.generations = 0;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config = {};
  config.mutation_rate = 1.5;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config = {};
  config.base_options.faults.dropped_sites = {0};
  EXPECT_THROW(config.validate(), InvalidArgument);
  config = {};
  EXPECT_NO_THROW(config.validate());
}

TEST(Optimizer, DefaultEpsilonAndReferenceAreSized) {
  EXPECT_EQ(opt::default_epsilon(3).size(), 3u);
  EXPECT_EQ(opt::default_epsilon(4).size(), 4u);
  EXPECT_EQ(opt::default_reference(4).size(), 4u);
  EXPECT_THROW(opt::default_epsilon(2), InvalidArgument);
  EXPECT_THROW(opt::default_reference(5), InvalidArgument);
}

TEST(Optimizer, FrontIsNonDominatedAndWithinSpace) {
  const opt::DesignSpace space = small_space();
  const opt::DesignOptimizer optimizer(paper_system(), space,
                                       small_config());
  const opt::OptimizeReport report = optimizer.run();
  ASSERT_FALSE(report.front.empty());
  EXPECT_GT(report.hypervolume, 0.0);
  EXPECT_LE(report.evaluations, 6u * 3u);
  for (const opt::FrontEntry& entry : report.front) {
    EXPECT_TRUE(entry.candidate.feasible);
    EXPECT_TRUE(opt::contains(space, entry.candidate.point));
    ASSERT_EQ(entry.objectives.size(), 3u);
    for (const opt::FrontEntry& other : report.front) {
      if (&entry == &other) continue;
      EXPECT_FALSE(opt::dominates(other.objectives, entry.objectives));
    }
  }
}

TEST(Optimizer, ParallelMatchesSerialBitIdentically) {
  const opt::DesignSpace space = small_space();
  opt::OptimizerConfig parallel = small_config();
  parallel.sweep.threads = 4;
  opt::OptimizerConfig serial = small_config();
  serial.sweep.threads = 1;

  const opt::OptimizeReport a =
      opt::DesignOptimizer(paper_system(), space, parallel).run();
  const opt::OptimizeReport b =
      opt::DesignOptimizer(paper_system(), space, serial).run();

  ASSERT_EQ(a.front.size(), b.front.size());
  for (std::size_t i = 0; i < a.front.size(); ++i) {
    EXPECT_EQ(a.front[i].candidate.id, b.front[i].candidate.id);
    EXPECT_EQ(a.front[i].objectives, b.front[i].objectives);  // bitwise
  }
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.candidates, b.candidates);
  EXPECT_EQ(a.hypervolume, b.hypervolume);
}

TEST(Optimizer, DifferentSeedsExploreDifferently) {
  const opt::DesignSpace space = small_space();
  opt::OptimizerConfig other = small_config();
  other.seed = 1234;
  const opt::OptimizeReport a =
      opt::DesignOptimizer(paper_system(), space, small_config()).run();
  const opt::OptimizeReport b =
      opt::DesignOptimizer(paper_system(), space, other).run();
  std::set<std::string> keys_a;
  std::set<std::string> keys_b;
  for (const opt::FrontEntry& e : a.front) {
    keys_a.insert(opt::design_point_key(e.candidate.point));
  }
  for (const opt::FrontEntry& e : b.front) {
    keys_b.insert(opt::design_point_key(e.candidate.point));
  }
  EXPECT_NE(keys_a, keys_b);
}

TEST(Optimizer, WarmStartPointsAreEvaluatedFirst) {
  const opt::DesignSpace space = small_space();
  opt::OptimizerConfig config = small_config();
  opt::DesignPoint seed_point;
  seed_point.architecture = ArchitectureKind::kA3_TwoStage12V;
  seed_point.vr_count = 40;
  config.warm_start = {seed_point};
  const opt::OptimizeReport report =
      opt::DesignOptimizer(paper_system(), space, config).run();
  // The warm-start point interns as candidate 0 ahead of the hypercube.
  EXPECT_GE(report.candidates, config.population);

  config.warm_start.front().architecture =
      ArchitectureKind::kA2_InterposerBelowDie;  // off the space's axis
  EXPECT_THROW(opt::DesignOptimizer(paper_system(), space, config).run(),
               InvalidArgument);
}

TEST(Optimizer, EvaluationBudgetIsAHardCap) {
  const opt::DesignSpace space = small_space();
  opt::OptimizerConfig config = small_config();
  config.max_evaluations = 7;
  const opt::OptimizeReport report =
      opt::DesignOptimizer(paper_system(), space, config).run();
  EXPECT_LE(report.evaluations, 7u);
}

TEST(Optimizer, SurvivabilityScoresElitesOnly) {
  const opt::DesignSpace space = small_space();
  opt::OptimizerConfig config = small_config();
  config.survivability.max_elites = 2;
  const opt::DesignOptimizer optimizer(paper_system(), space, config);
  EXPECT_EQ(optimizer.objective_count(), 4u);
  const opt::OptimizeReport report = optimizer.run();
  ASSERT_FALSE(report.front.empty());
  EXPECT_GT(report.fault_campaigns, 0u);
  // Campaigns stay bounded: at most max_elites per scoring pass, one
  // pass per generation plus the final pass.
  EXPECT_LE(report.fault_campaigns,
            config.survivability.max_elites * (config.generations + 2));
  for (const opt::FrontEntry& entry : report.front) {
    // Only scored candidates enter the 4-objective archive.
    ASSERT_TRUE(entry.candidate.survivability.has_value());
    ASSERT_EQ(entry.objectives.size(), 4u);
    EXPECT_DOUBLE_EQ(entry.objectives[opt::kVulnerability],
                     1.0 - *entry.candidate.survivability);
  }
}

TEST(Optimizer, ReportSnapshotCarriesOptCounters) {
  const opt::OptimizeReport report =
      opt::DesignOptimizer(paper_system(), small_space(), small_config())
          .run();
  const obs::Snapshot snapshot = report.snapshot();
  const std::uint64_t* evaluations = snapshot.counter("opt.evaluations");
  ASSERT_NE(evaluations, nullptr);
  EXPECT_EQ(*evaluations, report.evaluations);
  const std::uint64_t* front_size = snapshot.counter("opt.front_size");
  ASSERT_NE(front_size, nullptr);
  EXPECT_EQ(*front_size, report.front.size());
}

// ---------------------------------------------------------------------------
// Wire schema: optimize requests and reports
// ---------------------------------------------------------------------------

io::OptimizeRequest parse_optimize(const std::string& text) {
  return io::optimize_request_from_json(io::parse(text));
}

TEST(OptimizeSchema, RoundTripsThroughJson) {
  io::OptimizeRequest request;
  request.spec = paper_system();
  request.space = small_space();
  request.config = small_config();
  request.config.seed = 987654321;
  opt::DesignPoint warm;
  warm.architecture = ArchitectureKind::kA3_TwoStage6V;
  warm.vr_count = 44;
  request.config.warm_start = {warm};

  const io::Value wire = io::to_json(request);
  const io::OptimizeRequest parsed =
      io::optimize_request_from_json(wire);
  EXPECT_EQ(parsed.config.seed, 987654321u);
  EXPECT_EQ(parsed.config.population, request.config.population);
  EXPECT_EQ(parsed.space.vr_count.lo, request.space.vr_count.lo);
  ASSERT_EQ(parsed.config.warm_start.size(), 1u);
  EXPECT_EQ(opt::design_point_key(parsed.config.warm_start.front()),
            opt::design_point_key(warm));
  // The canonical key is the dump of the canonical form: re-serializing
  // the parsed request reproduces it exactly.
  EXPECT_EQ(io::canonical_optimize_key(request),
            io::canonical_optimize_key(parsed));
}

TEST(OptimizeSchema, DefaultsAreOptionalOnTheWire) {
  const io::OptimizeRequest request = parse_optimize(R"({"cmd":"optimize"})");
  EXPECT_EQ(request.config.population, opt::OptimizerConfig{}.population);
  EXPECT_EQ(request.space.architectures.size(), 4u);
}

TEST(OptimizeSchema, RejectsInvalidRequests) {
  // Bad space bounds.
  EXPECT_THROW(parse_optimize(
                   R"({"space":{"vr_count":{"lo":0,"hi":4}}})"),
               InvalidArgument);
  // Faults may not ride in the base options.
  EXPECT_THROW(
      parse_optimize(R"({"options":{"faults":{"dropped_sites":[0]}}})"),
      InvalidArgument);
  // Warm-start points outside the space are named in the error.
  try {
    parse_optimize(
        R"({"space":{"architectures":["A3@12V"],"topologies":["DSCH"]},)"
        R"("config":{"warm_start":[{"architecture":"A1",)"
        R"("topology":"DSCH"}]}})");
    FAIL() << "outside warm start must throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("A1/DSCH"), std::string::npos);
  }
  // Wrong schema version.
  EXPECT_THROW(parse_optimize(R"({"schema_version":99})"), InvalidArgument);
}

TEST(OptimizeSchema, ReportSerializesDeterministicPrefix) {
  const opt::OptimizeReport report =
      opt::DesignOptimizer(paper_system(), small_space(), small_config())
          .run();
  const std::string line = io::dump(io::to_json(report));
  // Everything before "wall_seconds" is deterministic; the smoke tests
  // strip from there on when diffing fleet outputs.
  const std::size_t cut = line.find(",\"wall_seconds\"");
  ASSERT_NE(cut, std::string::npos);
  EXPECT_NE(line.find("\"front\":["), std::string::npos);
  EXPECT_NE(line.find("\"hypervolume\":"), std::string::npos);
  EXPECT_LT(line.find("\"hypervolume\":"), cut);
  EXPECT_GT(line.find("\"mesh_cache\":"), cut);
}

}  // namespace
}  // namespace vpd
