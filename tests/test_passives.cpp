#include <gtest/gtest.h>

#include <cmath>

#include "vpd/common/error.hpp"
#include "vpd/passives/capacitor.hpp"
#include "vpd/passives/inductor.hpp"
#include "vpd/passives/sizing.hpp"

namespace vpd {
namespace {

using namespace vpd::literals;

TEST(Inductor, EmbeddedCurrentDensityLimitSetsFootprint) {
  // The paper's constraint [14]: embedded inductors support ~1 A/mm^2.
  // A 30 A rated embedded inductor therefore needs >= 30 mm^2.
  const Inductor l(embedded_package_inductor_technology(), 100.0_nH, 30.0_A);
  EXPECT_GE(as_mm2(l.footprint()), 30.0 - 1e-9);
}

TEST(Inductor, InductanceDensityLimitSetsFootprintForBigL) {
  // A large L at small current is inductance-density limited.
  const InductorTechnology tech = embedded_package_inductor_technology();
  const Inductor l(tech, 4.0_uH, 1.0_A);
  EXPECT_NEAR(as_mm2(l.footprint()), 4000.0 / 250.0, 1e-9);
}

TEST(Inductor, DiscreteBeatsEmbeddedDensity) {
  const Inductor embedded(embedded_package_inductor_technology(), 1.0_uH,
                          10.0_A);
  const Inductor discrete(discrete_pcb_inductor_technology(), 1.0_uH,
                          10.0_A);
  EXPECT_LT(discrete.footprint().value, embedded.footprint().value);
}

TEST(Inductor, SaturationCheck) {
  const Inductor l(embedded_package_inductor_technology(), 100.0_nH, 10.0_A);
  EXPECT_FALSE(l.saturates_at(9.0_A));
  EXPECT_TRUE(l.saturates_at(11.0_A));
  EXPECT_TRUE(l.saturates_at(Current{-11.0}));
}

TEST(Inductor, LossHasDcAndAcComponents) {
  const Inductor l(embedded_package_inductor_technology(), 1.0_uH, 10.0_A);
  const double dc_only = l.loss(10.0_A, Current{0.0}).value;
  const double with_ripple = l.loss(10.0_A, 4.0_A).value;
  EXPECT_NEAR(dc_only, 100.0 * l.dcr().value, 1e-12);
  EXPECT_GT(with_ripple, dc_only);
  // AC part: (4 / (2 sqrt 3))^2 * 3.5 * DCR.
  const double i_ac_rms = 4.0 / (2.0 * std::sqrt(3.0));
  EXPECT_NEAR(with_ripple - dc_only,
              i_ac_rms * i_ac_rms * 3.5 * l.dcr().value, 1e-12);
}

TEST(Inductor, Validation) {
  EXPECT_THROW(Inductor(embedded_package_inductor_technology(),
                        Inductance{0.0}, 1.0_A),
               InvalidArgument);
  EXPECT_THROW(Inductor(embedded_package_inductor_technology(), 1.0_uH,
                        Current{0.0}),
               InvalidArgument);
  const Inductor l(embedded_package_inductor_technology(), 1.0_uH, 1.0_A);
  EXPECT_THROW(l.loss(1.0_A, Current{-1.0}), InvalidArgument);
}

TEST(Inductor, IntegrationNames) {
  EXPECT_STREQ(to_string(InductorIntegration::kEmbeddedPackage),
               "embedded-package");
  EXPECT_STREQ(to_string(InductorIntegration::kDiscretePcb), "discrete-pcb");
}

TEST(Capacitor, FootprintFromDensity) {
  const Capacitor c(deep_trench_technology(), 5.0_uF, 6.0_V);
  EXPECT_NEAR(as_mm2(c.footprint()), 5.0, 1e-9);  // 1 uF/mm^2
}

TEST(Capacitor, MlccDeratesUnderBias) {
  const Capacitor mlcc(mlcc_technology(), 22.0_uF, 50.0_V);
  const Capacitor trench(deep_trench_technology(), 1.0_uF, 6.0_V);
  EXPECT_LT(mlcc.effective().value / mlcc.nominal().value, 0.7);
  EXPECT_GT(trench.effective().value / trench.nominal().value, 0.9);
}

TEST(Capacitor, EsrInverselyProportionalToC) {
  const Capacitor small(mlcc_technology(), 1.0_uF, 10.0_V);
  const Capacitor large(mlcc_technology(), 10.0_uF, 10.0_V);
  EXPECT_NEAR(small.esr().value / large.esr().value, 10.0, 1e-9);
}

TEST(Capacitor, LossAndStoredEnergy) {
  const Capacitor c(mlcc_technology(), 22.0_uF, 10.0_V);
  EXPECT_NEAR(c.loss(2.0_A).value, 4.0 * c.esr().value, 1e-12);
  EXPECT_NEAR(c.stored_energy(10.0_V).value,
              0.5 * 22e-6 * 0.55 * 100.0, 1e-9);
}

TEST(Capacitor, RatingLimitEnforced) {
  EXPECT_THROW(Capacitor(deep_trench_technology(), 1.0_uF, 48.0_V),
               InvalidArgument);
  EXPECT_NO_THROW(Capacitor(mlcc_technology(), 1.0_uF, 48.0_V));
}

TEST(Sizing, BuckDuty) {
  EXPECT_NEAR(buck_duty(12.0_V, 1.0_V), 1.0 / 12.0, 1e-12);
  EXPECT_THROW(buck_duty(1.0_V, 1.0_V), InvalidArgument);
  EXPECT_THROW(buck_duty(1.0_V, 2.0_V), InvalidArgument);
}

TEST(Sizing, InductorRippleRoundTrip) {
  const Inductance l =
      buck_inductor_for_ripple(12.0_V, 1.0_V, 1.0_MHz, 2.0_A);
  const Current ripple = buck_inductor_ripple(12.0_V, 1.0_V, 1.0_MHz, l);
  EXPECT_NEAR(ripple.value, 2.0, 1e-9);
  // L = 1 * (1 - 1/12) / (2 * 1e6) ~ 458 nH.
  EXPECT_NEAR(l.value, (1.0 - 1.0 / 12.0) / 2e6, 1e-12);
}

TEST(Sizing, OutputCapacitorRoundTrip) {
  const Capacitance c =
      buck_output_capacitor_for_ripple(2.0_A, 1.0_MHz, 10.0_mV);
  const Voltage ripple = buck_output_ripple(2.0_A, 1.0_MHz, c);
  EXPECT_NEAR(ripple.value, 10e-3, 1e-12);
}

TEST(Sizing, InterleavingCancellation) {
  // At duty = 0.5 with 2 phases the ripple cancels completely.
  EXPECT_NEAR(interleaving_ripple_factor(0.5, 2), 0.0, 1e-12);
  // Single phase: no cancellation.
  EXPECT_DOUBLE_EQ(interleaving_ripple_factor(0.3, 1), 1.0);
  // More phases never increase ripple.
  for (unsigned n : {2u, 3u, 4u, 6u}) {
    EXPECT_LE(interleaving_ripple_factor(0.12, n), 1.0 + 1e-12) << n;
  }
  EXPECT_THROW(interleaving_ripple_factor(0.0, 2), InvalidArgument);
}

}  // namespace
}  // namespace vpd
