// Batch-first evaluation engine (core/batch.hpp): same-operator grouping
// and sink-vector deduplication, the loop-mode bit-identity contract
// (block=false reproduces the scalar path bit for bit), the block
// panels' certified backward error against the scalar reference,
// per-point error transport, and the batch accounting surfaced by the
// sweep / fault-campaign / optimizer reports and the serving layer's
// evaluate_batch. Runs in its own ctest executable labelled `batch` so
// the panel paths join the sanitizer matrix (ctest -L batch).
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "vpd/common/error.hpp"
#include "vpd/common/sparse.hpp"
#include "vpd/core/batch.hpp"
#include "vpd/core/explorer.hpp"
#include "vpd/core/spec.hpp"
#include "vpd/fault/campaign.hpp"
#include "vpd/io/schema.hpp"
#include "vpd/obs/registry.hpp"
#include "vpd/opt/optimizer.hpp"
#include "vpd/serve/service.hpp"
#include "vpd/sweep/sweep.hpp"

namespace vpd {
namespace {

/// The paper-mode options every sweep/explorer test pins (A2's published
/// 48 below-die VRs need the relaxed area budget), at a mesh coarse
/// enough to keep panels cheap.
EvaluationOptions paper_options(std::size_t mesh_nodes = 31) {
  EvaluationOptions o;
  o.below_die_area_fraction = 1.6;
  o.mesh_nodes = mesh_nodes;
  return o;
}

/// A3@12V/DSCH evaluation point; a stage-2 dropout scales the
/// intermediate-rail current — the stage-1 deployment is sized at design
/// time — so faulted variants share the nominal point's stamped operator
/// and differ only in the sink vector. The canonical panel case.
EvaluationPoint a3_point(std::vector<std::size_t> dropped_stage2 = {}) {
  EvaluationPoint p;
  p.architecture = ArchitectureKind::kA3_TwoStage12V;
  p.topology = TopologyKind::kDsch;
  p.options = paper_options();
  p.options.faults.dropped_stage2 = std::move(dropped_stage2);
  return p;
}

ExplorationEntry scalar_reference(const EvaluationPoint& p) {
  return evaluate_with_exclusion(paper_system(), p.architecture, p.topology,
                                 p.tech, p.options);
}

void expect_identical(const ExplorationEntry& a, const ExplorationEntry& b,
                      const std::string& label) {
  ASSERT_EQ(a.excluded(), b.excluded()) << label;
  ASSERT_EQ(a.evaluation.has_value(), b.evaluation.has_value()) << label;
  ASSERT_EQ(a.extrapolated.has_value(), b.extrapolated.has_value()) << label;
  const auto check = [&](const ArchitectureEvaluation& x,
                         const ArchitectureEvaluation& y) {
    // Exact equality on doubles is the point: bit-identical results.
    EXPECT_EQ(x.total_loss().value, y.total_loss().value) << label;
    EXPECT_EQ(x.vertical_loss.value, y.vertical_loss.value) << label;
    EXPECT_EQ(x.horizontal_loss.value, y.horizontal_loss.value) << label;
    EXPECT_EQ(x.input_power.value, y.input_power.value) << label;
    EXPECT_EQ(x.cg_iterations, y.cg_iterations) << label;
    ASSERT_EQ(x.min_distribution_voltage.has_value(),
              y.min_distribution_voltage.has_value())
        << label;
    if (x.min_distribution_voltage) {
      EXPECT_EQ(x.min_distribution_voltage->value,
                y.min_distribution_voltage->value)
          << label;
    }
  };
  if (a.evaluation) check(*a.evaluation, *b.evaluation);
  if (a.extrapolated) check(*a.extrapolated, *b.extrapolated);
}

/// Certified-backward-error comparison for block panels: both solves
/// answer to irdrop_relative_tolerance (1e-12 by default), so derived
/// quantities agree far tighter than this.
void expect_certified(const ExplorationEntry& a, const ExplorationEntry& b,
                      const std::string& label) {
  ASSERT_EQ(a.excluded(), b.excluded()) << label;
  ASSERT_EQ(a.evaluation.has_value(), b.evaluation.has_value()) << label;
  const auto near = [&](double x, double y) {
    EXPECT_NEAR(x, y, 1e-8 * std::abs(y) + 1e-12) << label;
  };
  if (a.evaluation) {
    near(a.evaluation->total_loss().value, b.evaluation->total_loss().value);
    ASSERT_TRUE(a.evaluation->min_distribution_voltage.has_value()) << label;
    ASSERT_TRUE(b.evaluation->min_distribution_voltage.has_value()) << label;
    near(a.evaluation->min_distribution_voltage->value,
         b.evaluation->min_distribution_voltage->value);
  }
}

// ---------------------------------------------------------------------------
// EvaluationBatch: grouping, dedup, loop-mode bit-identity, certification
// ---------------------------------------------------------------------------

TEST(EvaluationBatch, GroupsSameOperatorPointsAndDedupsIdenticalSinks) {
  std::vector<EvaluationPoint> points;
  points.push_back(a3_point());     // group lead
  points.push_back(a3_point({0}));  // same operator, scaled sinks
  points.push_back(a3_point());     // identical sinks -> deduped solve
  {
    EvaluationPoint a1;  // different operator (1 V rail, own legs)
    a1.architecture = ArchitectureKind::kA1_InterposerPeriphery;
    a1.topology = TopologyKind::kDsch;
    a1.options = paper_options();
    points.push_back(a1);
  }
  {
    EvaluationPoint a0;  // never reaches a distribution solve
    a0.architecture = ArchitectureKind::kA0_PcbConversion;
    a0.options = paper_options();
    points.push_back(a0);
  }

  BatchStats stats;
  const std::vector<ExplorationEntry> entries = evaluate_batch_with_exclusion(
      paper_system(), points, BatchConfig{}, &stats);

  ASSERT_EQ(entries.size(), 5u);
  EXPECT_EQ(stats.points, 5u);
  EXPECT_EQ(stats.groups, 1u);
  EXPECT_EQ(stats.grouped_points, 3u);
  EXPECT_EQ(stats.scalar_points, 2u);
  EXPECT_EQ(stats.panel_columns, 2u);
  EXPECT_EQ(stats.deduped_solves, 1u);
  // The deduplicated twin shares its lead's solve bit for bit.
  expect_identical(entries[0], entries[2], "dedup twin");
  EXPECT_FALSE(entries[0].excluded());
  EXPECT_FALSE(entries[4].excluded());  // A0 evaluates fine without a mesh
}

TEST(EvaluationBatch, LoopModeIsBitIdenticalToScalarEvaluation) {
  // Dropping one vs two stage-2 VRs changes the survivor count, hence the
  // intermediate-rail current: three genuinely distinct right-hand sides.
  // (Dropping site 0 vs site 1 would NOT — survivors split uniformly, so
  // those sinks are value-identical and deduplicate.)
  const std::vector<EvaluationPoint> points = {a3_point(), a3_point({0}),
                                               a3_point({0, 1})};
  BatchConfig config;
  config.block = false;
  BatchStats stats;
  const std::vector<ExplorationEntry> entries =
      evaluate_batch_with_exclusion(paper_system(), points, config, &stats);
  EXPECT_EQ(stats.groups, 1u);
  EXPECT_EQ(stats.panel_columns, 3u);
  ASSERT_EQ(entries.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    expect_identical(entries[i], scalar_reference(points[i]),
                     "loop-mode point " + std::to_string(i));
  }
}

TEST(EvaluationBatch, BlockPanelsCertifyEachColumn) {
  const std::vector<EvaluationPoint> points = {a3_point(), a3_point({0}),
                                               a3_point({0, 1})};
  const SolverCounters before = solver_counters();
  BatchStats stats;
  const std::vector<ExplorationEntry> entries = evaluate_batch_with_exclusion(
      paper_system(), points, BatchConfig{}, &stats);
  const SolverCounters delta = solver_counters() - before;

  // The group's three distinct right-hand sides launched as one panel.
  // Near-parallel columns (uniform sink maps under scaling) may detect
  // rank deficiency and finish through scalar CG — those count in
  // cg_solves, not cg_block_columns — so the column split is bounded by
  // the panel width, not pinned to it.
  EXPECT_EQ(stats.panel_columns, 3u);
  EXPECT_GE(delta.cg_block_panels, 1u);
  EXPECT_LE(delta.cg_block_columns, stats.panel_columns);
  EXPECT_GE(delta.cg_solves, stats.panel_columns);

  // Every column answers to the same backward-error tolerance as the
  // scalar reference solve.
  ASSERT_EQ(entries.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    expect_certified(entries[i], scalar_reference(points[i]),
                     "block-mode point " + std::to_string(i));
  }
}

TEST(EvaluationBatch, ErrorsSurfacePerPointFirstInInputOrder) {
  EvaluationPoint bad = a3_point();
  bad.options.irdrop_relative_tolerance = -1.0;  // invalid configuration

  // Per-point API: the bad point's slot carries the error, the good
  // points still group and evaluate.
  std::vector<EvaluationPoint> points = {a3_point(), bad, a3_point({0})};
  EvaluationBatch batch(paper_system(), points, BatchConfig{});
  batch.run();
  EXPECT_EQ(batch.error(0), nullptr);
  EXPECT_NE(batch.error(1), nullptr);
  EXPECT_EQ(batch.error(2), nullptr);
  EXPECT_EQ(batch.stats().grouped_points, 2u);
  EXPECT_FALSE(batch.entry(0).excluded());
  EXPECT_THROW(batch.rethrow_first_error(), InvalidArgument);

  // One-call API: the first error in input order is rethrown.
  EXPECT_THROW(
      evaluate_batch_with_exclusion(paper_system(), points, BatchConfig{}),
      InvalidArgument);
}

TEST(EvaluationBatch, RejectsDegenerateGroupSize) {
  BatchConfig config;
  config.min_group_size = 1;
  EXPECT_THROW(
      evaluate_batch_with_exclusion(paper_system(), {a3_point()}, config),
      InvalidArgument);
}

// ---------------------------------------------------------------------------
// SweepRunner: batch accounting, loop-vs-block, counter deltas
// ---------------------------------------------------------------------------

/// The default grid plus stage-2-dropout variants of the two-stage
/// points: guaranteed same-operator pairs on top of whatever the default
/// grid already groups.
std::vector<SweepPoint> grid_with_fault_variants() {
  std::vector<SweepPoint> points = SweepGridBuilder(paper_options()).build();
  for (ArchitectureKind arch : {ArchitectureKind::kA3_TwoStage12V,
                                ArchitectureKind::kA3_TwoStage6V}) {
    SweepPoint p;
    p.architecture = arch;
    p.topology = TopologyKind::kDsch;
    p.options = paper_options();
    p.options.faults.dropped_stage2 = {0};
    p.label = sweep_point_label(arch, p.topology, p.tech, "stage2-drop");
    points.push_back(p);
  }
  return points;
}

TEST(SweepBatch, LoopModeIsBitIdenticalToTheScalarLoop) {
  const std::vector<SweepPoint> points = grid_with_fault_variants();
  SweepConfig loop;
  loop.threads = 2;
  loop.batch_block = false;
  SweepConfig scalar;
  scalar.threads = 2;
  scalar.batch = false;
  const SweepReport with = SweepRunner(paper_system(), loop).run(points);
  const SweepReport without = SweepRunner(paper_system(), scalar).run(points);
  ASSERT_EQ(with.outcomes.size(), points.size());
  ASSERT_EQ(without.outcomes.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    expect_identical(with.outcomes[i].entry, without.outcomes[i].entry,
                     points[i].label);
  }
  // Loop mode still groups (the accounting is identical to block mode);
  // the scalar loop never touches the batch engine.
  EXPECT_GT(with.batch.grouped_points, 0u);
  EXPECT_EQ(with.solver.cg_block_panels, 0u);
  EXPECT_EQ(without.batch.points, 0u);
}

TEST(SweepBatch, BlockSweepReportsPanelsInReportAndSnapshot) {
  const std::vector<SweepPoint> points = grid_with_fault_variants();
  SweepConfig config;
  config.threads = 2;
  const SweepReport report = SweepRunner(paper_system(), config).run(points);

  EXPECT_EQ(report.batch.points, points.size());
  EXPECT_GT(report.batch.groups, 0u);
  EXPECT_GT(report.batch.grouped_points, 0u);
  EXPECT_GT(report.batch.panel_columns, 0u);
  // The panels actually reached the block solver; columns that deflate to
  // scalar CG on rank deficiency still count as right-hand sides solved.
  EXPECT_GT(report.solver.cg_block_panels, 0u);
  EXPECT_LE(report.solver.cg_block_columns, report.batch.panel_columns);
  EXPECT_GE(report.solver.cg_solves, report.batch.panel_columns);

  const obs::Snapshot snap = report.snapshot();
  const std::uint64_t* grouped = snap.counter("sweep.batch_grouped_points");
  const std::uint64_t* columns = snap.counter("sweep.batch_panel_columns");
  const std::uint64_t* panels = snap.counter("solver.cg_block_panels");
  ASSERT_NE(grouped, nullptr);
  ASSERT_NE(columns, nullptr);
  ASSERT_NE(panels, nullptr);
  EXPECT_EQ(*grouped, report.batch.grouped_points);
  EXPECT_EQ(*columns, report.batch.panel_columns);
  EXPECT_GT(*panels, 0u);
}

TEST(SweepBatch, BatchedParallelIsBitIdenticalToBatchedSerial) {
  const std::vector<SweepPoint> points = grid_with_fault_variants();
  SweepConfig serial;
  serial.threads = 1;
  SweepConfig parallel;
  parallel.threads = 4;
  const SweepReport a = SweepRunner(paper_system(), serial).run(points);
  const SweepReport b = SweepRunner(paper_system(), parallel).run(points);
  for (std::size_t i = 0; i < points.size(); ++i) {
    expect_identical(a.outcomes[i].entry, b.outcomes[i].entry,
                     points[i].label);
  }
  // Grouping is planned single-threaded in input order: the accounting
  // cannot depend on scheduling.
  EXPECT_EQ(a.batch.groups, b.batch.groups);
  EXPECT_EQ(a.batch.grouped_points, b.batch.grouped_points);
  EXPECT_EQ(a.batch.panel_columns, b.batch.panel_columns);
  EXPECT_EQ(a.batch.deduped_solves, b.batch.deduped_solves);
}

// ---------------------------------------------------------------------------
// FaultCampaignRunner: batch accounting and the N-0 bit-exactness rule
// ---------------------------------------------------------------------------

TEST(FaultCampaignBatch, StageTwoCampaignPanelsAndBitExactNominal) {
  FaultCampaignConfig config;
  // Stage-2 dropouts only: every scenario shares the nominal operator, so
  // the whole campaign rides one panel family. All N-1 dropouts leave the
  // same survivor count — value-identical sinks that deduplicate onto one
  // shared solve — so the order-2 samples are what add a second distinct
  // column and force an actual panel.
  config.include_dropouts = false;
  config.include_derates = false;
  config.include_attach_faults = false;
  config.include_mesh_regions = false;
  config.nk_samples = 4;
  config.nk_order = 2;
  config.sweep.threads = 2;
  const FaultCampaignRunner runner(paper_system(), config);
  const FaultCampaignReport report =
      runner.run(ArchitectureKind::kA3_TwoStage12V, TopologyKind::kDsch,
                 DeviceTechnology::kGalliumNitride, paper_options(21));

  ASSERT_GT(report.outcomes.size(), 1u);
  EXPECT_GT(report.batch.grouped_points, 0u);
  EXPECT_GT(report.batch.deduped_solves, 0u);
  EXPECT_GT(report.batch.panel_columns, 0u);
  EXPECT_GT(report.solver.cg_block_panels, 0u);

  // The N-0 outcome reuses the nominal evaluation outright: bit-exact in
  // every batch mode, never routed through a shared panel.
  const FaultScenarioOutcome& baseline = report.outcomes.front();
  ASSERT_TRUE(baseline.evaluation.has_value());
  EXPECT_EQ(baseline.evaluation->total_loss().value,
            report.nominal.total_loss().value);
  EXPECT_EQ(baseline.evaluation->cg_iterations,
            report.nominal.cg_iterations);

  const obs::Snapshot snap = report.snapshot();
  const std::uint64_t* columns = snap.counter("fault.batch_panel_columns");
  ASSERT_NE(columns, nullptr);
  EXPECT_EQ(*columns, report.batch.panel_columns);
}

// ---------------------------------------------------------------------------
// DesignOptimizer: generations ride the batch engine
// ---------------------------------------------------------------------------

TEST(OptimizerBatch, ReportAccumulatesBatchStatsAcrossGenerations) {
  opt::DesignSpace space;
  space.architectures = {ArchitectureKind::kA3_TwoStage12V,
                         ArchitectureKind::kA3_TwoStage6V};
  space.topologies = {TopologyKind::kDsch};
  space.vr_count = {36, 48};
  opt::OptimizerConfig config;
  config.population = 6;
  config.generations = 2;
  config.survivability.max_elites = 0;
  config.base_options.mesh_nodes = 11;
  config.sweep.threads = 2;

  const opt::OptimizeReport report =
      opt::DesignOptimizer(paper_system(), space, config).run();
  // Every generation's sweep flows through the batch engine.
  EXPECT_GT(report.batch.points, 0u);
  const obs::Snapshot snap = report.snapshot();
  const std::uint64_t* groups = snap.counter("opt.batch_groups");
  ASSERT_NE(groups, nullptr);
  EXPECT_EQ(*groups, report.batch.groups);
  const std::uint64_t* columns = snap.counter("opt.batch_panel_columns");
  ASSERT_NE(columns, nullptr);
  EXPECT_EQ(*columns, report.batch.panel_columns);
}

// ---------------------------------------------------------------------------
// EvaluationService::evaluate_batch: dedup, LRU, partitions, errors
// ---------------------------------------------------------------------------

io::EvaluationRequest make_request(ArchitectureKind arch,
                                   std::optional<TopologyKind> topo) {
  io::EvaluationRequest request;
  request.architecture = arch;
  request.topology = topo;
  request.options = paper_options();
  return request;
}

TEST(ServeBatch, DedupsCachesPartitionsAndSurfacesErrors) {
  serve::ServiceConfig config;
  config.threads = 2;
  serve::EvaluationService service(config);

  // Pre-warm the result LRU through the queued path.
  const io::EvaluationRequest warm = make_request(
      ArchitectureKind::kA1_InterposerPeriphery, TopologyKind::kDsch);
  ASSERT_EQ(service.evaluate(warm).status, serve::ResponseStatus::kOk);

  const io::EvaluationRequest a3 =
      make_request(ArchitectureKind::kA3_TwoStage12V, TopologyKind::kDsch);
  io::EvaluationRequest a3_faulted = a3;
  a3_faulted.options.faults.dropped_stage2 = {0};
  io::EvaluationRequest bad = a3;
  bad.options.irdrop_relative_tolerance = -1.0;
  io::EvaluationRequest other_spec = a3;
  other_spec.spec.total_power = Power{900.0};

  const std::vector<io::EvaluationRequest> requests = {
      warm,        // 0: LRU hit
      a3,          // 1: leader, groups with 2
      a3_faulted,  // 2: same operator -> block panel with 1
      a3,          // 3: in-batch duplicate of 1
      bad,         // 4: per-member error
      other_spec,  // 5: second spec partition, evaluated alone
  };
  const std::vector<serve::ServiceResponse> responses =
      service.evaluate_batch(requests);

  ASSERT_EQ(responses.size(), requests.size());
  EXPECT_EQ(responses[0].status, serve::ResponseStatus::kOk);
  EXPECT_TRUE(responses[0].from_cache);
  EXPECT_EQ(responses[1].status, serve::ResponseStatus::kOk);
  EXPECT_EQ(responses[2].status, serve::ResponseStatus::kOk);
  EXPECT_EQ(responses[3].status, serve::ResponseStatus::kOk);
  // The duplicate shares its leader's published entry, like coalescing.
  EXPECT_EQ(responses[3].entry, responses[1].entry);
  EXPECT_EQ(responses[4].status, serve::ResponseStatus::kError);
  EXPECT_FALSE(responses[4].error.empty());
  EXPECT_EQ(responses[5].status, serve::ResponseStatus::kOk);

  // A later lone evaluate() of a batched request is served from the LRU:
  // batch results publish into the same cache.
  EXPECT_TRUE(service.evaluate(a3).from_cache);

  // The serve.batch.* instruments carry the batch accounting.
  const obs::Snapshot snap = service.registry().snapshot();
  const auto counter = [&](const char* name) {
    const std::uint64_t* value = snap.counter(name);
    return value == nullptr ? std::uint64_t{0} : *value;
  };
  EXPECT_EQ(counter("serve.batch.requests"), requests.size());
  EXPECT_EQ(counter("serve.batch.cache_hits"), 1u);
  EXPECT_EQ(counter("serve.batch.errors"), 1u);
  // Leaders evaluated: a3, a3_faulted, bad, other_spec.
  EXPECT_EQ(counter("serve.batch.evaluated"), 4u);
  EXPECT_EQ(counter("serve.batch.groups"), 1u);
  EXPECT_EQ(counter("serve.batch.grouped_points"), 2u);
  EXPECT_EQ(counter("serve.batch.panel_columns"), 2u);
}

TEST(ServeBatch, ResponsesMatchLoneEvaluatesWhereNoPanelEngages) {
  serve::ServiceConfig config;
  config.threads = 2;
  serve::EvaluationService service(config);
  // Distinct operators only: every point solves scalar, so each response
  // is bit-identical to a lone evaluate() of the same request.
  const std::vector<io::EvaluationRequest> requests = {
      make_request(ArchitectureKind::kA1_InterposerPeriphery,
                   TopologyKind::kDsch),
      make_request(ArchitectureKind::kA2_InterposerBelowDie,
                   TopologyKind::kDpmih),
      make_request(ArchitectureKind::kA0_PcbConversion, std::nullopt),
      // Excluded by the paper's rule, not an error.
      make_request(ArchitectureKind::kA1_InterposerPeriphery,
                   TopologyKind::kDickson),
  };
  const std::vector<serve::ServiceResponse> responses =
      service.evaluate_batch(requests);
  ASSERT_EQ(responses.size(), requests.size());
  EXPECT_EQ(responses[3].status, serve::ResponseStatus::kExcluded);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const ExplorationEntry reference = evaluate_with_exclusion(
        requests[i].spec, requests[i].architecture, requests[i].topology,
        requests[i].tech, requests[i].options);
    ASSERT_NE(responses[i].entry, nullptr) << "request " << i;
    EXPECT_EQ(io::dump(io::to_json(*responses[i].entry)),
              io::dump(io::to_json(reference)))
        << "request " << i;
  }
}

}  // namespace
}  // namespace vpd
