#include "vpd/common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "vpd/common/error.hpp"

namespace vpd {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  // Column alignment: "value" starts at the same offset in each line.
  std::istringstream is(s);
  std::string header, underline, row1;
  std::getline(is, header);
  std::getline(is, underline);
  std::getline(is, row1);
  EXPECT_EQ(header.find("value"), row1.find("1"));
}

TEST(TextTable, ArityMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
  EXPECT_THROW(TextTable({}), InvalidArgument);
}

TEST(TextTable, RowCount) {
  TextTable t({"x"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, CsvEscapesSpecialCells) {
  TextTable t({"a", "b"});
  t.add_row({"plain", "has,comma"});
  t.add_row({"has\"quote", "multi\nline"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
  EXPECT_NE(csv.find("\"multi\nline\""), std::string::npos);
  EXPECT_EQ(csv.find("\"plain\""), std::string::npos);
}

TEST(TextTable, StreamOperator) {
  TextTable t({"h"});
  t.add_row({"v"});
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), t.to_string());
}

TEST(Format, Double) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-1.0, 0), "-1");
}

TEST(Format, Percent) {
  EXPECT_EQ(format_percent(0.418), "41.8%");
  EXPECT_EQ(format_percent(0.9, 0), "90%");
  EXPECT_EQ(format_percent(1.0, 2), "100.00%");
}

TEST(Format, SiPrefixes) {
  EXPECT_EQ(format_si(0.0), "0");
  EXPECT_EQ(format_si(3.3e-3), "3.30m");
  EXPECT_EQ(format_si(4.7e-6), "4.70u");
  EXPECT_EQ(format_si(1.5e3), "1.50k");
  EXPECT_EQ(format_si(2.0e6), "2.00M");
  EXPECT_EQ(format_si(42.0), "42.0");
}

TEST(Format, SiNegativeValues) {
  EXPECT_EQ(format_si(-3.3e-3), "-3.30m");
}

}  // namespace
}  // namespace vpd
