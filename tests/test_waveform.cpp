#include "vpd/circuit/waveform.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "vpd/common/error.hpp"
#include "vpd/common/interpolation.hpp"

namespace vpd {
namespace {

Trace ramp() {
  // v(t) = t on [0, 1], 11 samples.
  std::vector<double> ts = linspace(0.0, 1.0, 11);
  std::vector<double> vs = ts;
  return Trace("ramp", std::move(ts), std::move(vs));
}

Trace sine(double cycles, std::size_t samples_per_cycle) {
  const std::size_t n = static_cast<std::size_t>(
      cycles * static_cast<double>(samples_per_cycle)) + 1;
  std::vector<double> ts(n), vs(n);
  for (std::size_t i = 0; i < n; ++i) {
    ts[i] = static_cast<double>(i) /
            static_cast<double>(samples_per_cycle);
    vs[i] = std::sin(2.0 * M_PI * ts[i]);
  }
  return Trace("sine", std::move(ts), std::move(vs));
}

TEST(Trace, ValidationRejectsBadInput) {
  EXPECT_THROW(Trace("t", {0.0, 1.0}, {1.0}), InvalidArgument);
  EXPECT_THROW(Trace("t", {}, {}), InvalidArgument);
  EXPECT_THROW(Trace("t", {0.0, 0.0}, {1.0, 2.0}), InvalidArgument);
  EXPECT_THROW(Trace("t", {1.0, 0.5}, {1.0, 2.0}), InvalidArgument);
}

TEST(Trace, InterpolatedLookup) {
  const Trace t = ramp();
  EXPECT_DOUBLE_EQ(t.at(0.55), 0.55);
  EXPECT_DOUBLE_EQ(t.at(-1.0), 0.0);   // clamped
  EXPECT_DOUBLE_EQ(t.at(2.0), 1.0);    // clamped
  EXPECT_DOUBLE_EQ(t.front(), 0.0);
  EXPECT_DOUBLE_EQ(t.back(), 1.0);
}

TEST(Trace, AverageOfRamp) {
  const Trace t = ramp();
  EXPECT_NEAR(t.average(), 0.5, 1e-12);
  EXPECT_NEAR(t.average(0.0, 0.5), 0.25, 1e-12);
  EXPECT_NEAR(t.average(0.25, 0.75), 0.5, 1e-12);
}

TEST(Trace, RmsOfRamp) {
  // RMS of t on [0,1] = 1/sqrt(3); the quadrature is exact for
  // piecewise-linear signals.
  EXPECT_NEAR(ramp().rms(), 1.0 / std::sqrt(3.0), 1e-12);
}

TEST(Trace, RmsOfSineApproachesInvSqrt2) {
  const Trace s = sine(4.0, 200);
  EXPECT_NEAR(s.rms(), 1.0 / std::sqrt(2.0), 1e-3);
  EXPECT_NEAR(s.average(), 0.0, 1e-9);
}

TEST(Trace, MinMaxPeakToPeak) {
  const Trace s = sine(2.0, 100);
  EXPECT_NEAR(s.max(), 1.0, 1e-3);
  EXPECT_NEAR(s.min(), -1.0, 1e-3);
  EXPECT_NEAR(s.peak_to_peak(), 2.0, 2e-3);
  EXPECT_NEAR(s.max(0.0, 0.5), 1.0, 1e-3);
  EXPECT_NEAR(s.min(0.0, 0.5), 0.0, 1e-9);  // first half-cycle nonnegative
}

TEST(Trace, WindowValidation) {
  const Trace t = ramp();
  EXPECT_THROW(t.average(0.5, 0.5), InvalidArgument);
  EXPECT_THROW(t.average(0.9, 2.0), InvalidArgument);
  EXPECT_THROW(t.rms(-0.5, 0.5), InvalidArgument);
}

TEST(Trace, TailExtractsSuffix) {
  const Trace t = ramp();
  const Trace tl = t.tail(0.3);
  EXPECT_NEAR(tl.times().front(), 0.7, 1e-12);
  EXPECT_DOUBLE_EQ(tl.times().back(), 1.0);
  EXPECT_EQ(tl.name(), "ramp");
  EXPECT_THROW(t.tail(0.0), InvalidArgument);
  // Tail longer than the trace returns the whole trace.
  EXPECT_EQ(t.tail(100.0).sample_count(), t.sample_count());
}

TEST(Trace, SingleSampleBehaviour) {
  const Trace t("dc", {0.0}, {3.0});
  EXPECT_DOUBLE_EQ(t.average(), 3.0);
  EXPECT_DOUBLE_EQ(t.rms(), 3.0);
  EXPECT_DOUBLE_EQ(t.at(5.0), 3.0);
}

}  // namespace
}  // namespace vpd
