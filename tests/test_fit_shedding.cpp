#include <gtest/gtest.h>

#include "vpd/common/error.hpp"
#include "vpd/converters/buck.hpp"
#include "vpd/converters/loss_model.hpp"

namespace vpd {
namespace {

using namespace vpd::literals;

// ---- Least-squares calibration -------------------------------------------------

TEST(LeastSquaresFit, RecoversExactQuadratic) {
  const QuadraticLossModel truth(0.5, 0.02, 3e-3);
  std::vector<QuadraticLossModel::EfficiencyPoint> points;
  for (double i : {2.0, 5.0, 10.0, 20.0, 30.0, 45.0})
    points.push_back({Current{i}, truth.efficiency(Current{i}, 1.0_V)});
  const QuadraticLossModel fit =
      QuadraticLossModel::fit_least_squares(points, 1.0_V);
  EXPECT_NEAR(fit.k0(), 0.5, 1e-9);
  EXPECT_NEAR(fit.k1(), 0.02, 1e-9);
  EXPECT_NEAR(fit.k2(), 3e-3, 1e-12);
}

TEST(LeastSquaresFit, HandlesNoisyDatasheetPoints) {
  // DPMIH-like published curve with 0.2% efficiency jitter.
  const QuadraticLossModel truth =
      QuadraticLossModel::fit_from_peak(0.909, 30.0_A, 1.0_V);
  std::vector<QuadraticLossModel::EfficiencyPoint> points;
  const double jitter[] = {0.002, -0.002, 0.001, -0.001, 0.002, -0.002};
  int j = 0;
  for (double i : {5.0, 10.0, 20.0, 40.0, 70.0, 100.0})
    points.push_back({Current{i},
                      truth.efficiency(Current{i}, 1.0_V) + jitter[j++]});
  const QuadraticLossModel fit =
      QuadraticLossModel::fit_least_squares(points, 1.0_V);
  // Peak location and value land near the truth.
  EXPECT_NEAR(fit.peak_current().value, 30.0, 6.0);
  EXPECT_NEAR(fit.peak_efficiency(1.0_V), 0.909, 0.01);
}

TEST(LeastSquaresFit, PinsCoefficientsWhenDataIsDegenerate) {
  // A perfectly flat-efficiency (loss ~ linear in I) curve drives k0 and
  // k2 toward zero; the fit must still return a valid model.
  std::vector<QuadraticLossModel::EfficiencyPoint> points;
  for (double i : {5.0, 10.0, 20.0, 40.0})
    points.push_back({Current{i}, 0.90});
  const QuadraticLossModel fit =
      QuadraticLossModel::fit_least_squares(points, 1.0_V);
  EXPECT_GT(fit.k0(), 0.0);
  EXPECT_GT(fit.k2(), 0.0);
  EXPECT_NEAR(fit.efficiency(20.0_A, 1.0_V), 0.90, 0.01);
}

TEST(LeastSquaresFit, Validation) {
  std::vector<QuadraticLossModel::EfficiencyPoint> two{
      {Current{1.0}, 0.9}, {Current{2.0}, 0.9}};
  EXPECT_THROW(QuadraticLossModel::fit_least_squares(two, 1.0_V),
               InvalidArgument);
  std::vector<QuadraticLossModel::EfficiencyPoint> bad{
      {Current{1.0}, 0.9}, {Current{2.0}, 1.2}, {Current{3.0}, 0.9}};
  EXPECT_THROW(QuadraticLossModel::fit_least_squares(bad, 1.0_V),
               InvalidArgument);
}

// ---- Phase shedding -------------------------------------------------------------

SynchronousBuck shedding_buck() {
  BuckDesignInputs in;
  in.device_tech = gan_technology();
  in.inductor_tech = embedded_package_inductor_technology();
  in.capacitor_tech = deep_trench_technology();
  in.v_in = 12.0_V;
  in.v_out = 1.0_V;
  in.rated_current = 40.0_A;
  in.phases = 4;
  in.f_sw = 4.0_MHz;  // high f_sw -> meaningful fixed loss per phase
  return SynchronousBuck(in);
}

TEST(PhaseShedding, AllPhasesAtFullLoad) {
  const SynchronousBuck buck = shedding_buck();
  EXPECT_EQ(buck.optimal_active_phases(40.0_A), 4u);
}

TEST(PhaseShedding, FewerPhasesAtLightLoad) {
  const SynchronousBuck buck = shedding_buck();
  EXPECT_LT(buck.optimal_active_phases(2.0_A), 4u);
}

TEST(PhaseShedding, NeverWorseThanFullPhaseCount) {
  const SynchronousBuck buck = shedding_buck();
  for (double i : {1.0, 3.0, 8.0, 15.0, 25.0, 40.0}) {
    const double with = buck.efficiency_with_shedding(Current{i});
    const double without = buck.efficiency(Current{i});
    EXPECT_GE(with, without - 1e-12) << i;
  }
}

TEST(PhaseShedding, FullCountMatchesBaseModel) {
  const SynchronousBuck buck = shedding_buck();
  EXPECT_NEAR(buck.loss_with_phases(30.0_A, 4).value,
              buck.loss(30.0_A).value, 1e-12);
}

TEST(PhaseShedding, Validation) {
  const SynchronousBuck buck = shedding_buck();
  EXPECT_THROW(buck.loss_with_phases(10.0_A, 0), InvalidArgument);
  EXPECT_THROW(buck.loss_with_phases(10.0_A, 5), InvalidArgument);
  EXPECT_THROW(buck.optimal_active_phases(Current{0.0}), InvalidArgument);
}

}  // namespace
}  // namespace vpd
