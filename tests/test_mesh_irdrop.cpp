#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "vpd/common/error.hpp"
#include "vpd/package/irdrop.hpp"
#include "vpd/package/mesh.hpp"
#include "vpd/package/mesh_cache.hpp"

namespace vpd {
namespace {

using namespace vpd::literals;

GridMesh die_mesh(std::size_t n = 15, double sheet = 2e-3) {
  // 22.36 mm square die (500 mm^2) as in the paper.
  return GridMesh(22.36_mm, 22.36_mm, n, n, sheet);
}

TEST(Mesh, NodeIndexingAndPositions) {
  const GridMesh m(10.0_mm, 20.0_mm, 5, 9, 1e-3);
  EXPECT_EQ(m.node_count(), 45u);
  EXPECT_EQ(m.node(0, 0), 0u);
  EXPECT_EQ(m.node(4, 8), 44u);
  EXPECT_NEAR(as_mm(m.x_of(m.node(4, 0))), 10.0, 1e-9);
  EXPECT_NEAR(as_mm(m.y_of(m.node(0, 8))), 20.0, 1e-9);
  EXPECT_EQ(m.nearest_node(Length{0.0}, Length{0.0}), 0u);
  EXPECT_EQ(m.nearest_node(10.0_mm, 20.0_mm), 44u);
  EXPECT_THROW(m.node(5, 0), InvalidArgument);
}

TEST(Mesh, LaplacianIsSymmetricWithZeroRowSums) {
  const GridMesh m = die_mesh(6);
  const CsrMatrix a(m.laplacian());
  EXPECT_TRUE(a.is_symmetric(1e-12));
  // Row sums are zero for a pure Laplacian.
  Vector ones(m.node_count(), 1.0);
  const Vector rs = a.multiply(ones);
  EXPECT_LT(norm_inf(rs), 1e-9);
}

TEST(Mesh, UniformSheetPointToPointResistance) {
  // Two opposite mid-edge nodes on a square sheet: effective resistance is
  // on the order of the sheet resistance (dimensional sanity).
  const GridMesh m(10.0_mm, 10.0_mm, 21, 21, 1e-3);
  std::vector<VrAttachment> vr{{m.node(0, 10), 1.0_V, Resistance{1e-9}}};
  Vector sinks(m.node_count(), 0.0);
  sinks[m.node(20, 10)] = 1.0;  // draw 1 A at the far edge
  const IrDropResult r = solve_irdrop(m, vr, sinks);
  const double drop = 1.0 - r.node_voltages[m.node(20, 10)];
  EXPECT_GT(drop, 0.5e-3);
  EXPECT_LT(drop, 5e-3);
}

TEST(IrDrop, CurrentConservation) {
  const GridMesh m = die_mesh();
  std::vector<VrAttachment> vrs;
  for (std::size_t i : {m.node(0, 0), m.node(14, 0), m.node(0, 14),
                        m.node(14, 14)})
    vrs.push_back({i, 1.0_V, 1.0_mOhm});
  const Vector sinks = uniform_sinks(m, Current{100.0});
  const IrDropResult r = solve_irdrop(m, vrs, sinks);
  double sourced = 0.0;
  for (double i : r.vr_currents) sourced += i;
  EXPECT_NEAR(sourced, 100.0, 1e-6);
}

TEST(IrDrop, SymmetricPlacementSharesEqually) {
  const GridMesh m = die_mesh(15);
  std::vector<VrAttachment> vrs;
  for (std::size_t i : {m.node(0, 0), m.node(14, 0), m.node(0, 14),
                        m.node(14, 14)})
    vrs.push_back({i, 1.0_V, 1.0_mOhm});
  const IrDropResult r = solve_irdrop(m, vrs, uniform_sinks(m, Current{80.0}));
  for (double i : r.vr_currents) EXPECT_NEAR(i, 20.0, 1e-6);
}

TEST(IrDrop, CenterVoltageDroopsWithPeripheralSources) {
  const GridMesh m = die_mesh(15);
  std::vector<VrAttachment> vrs;
  // Sources along the left edge only.
  for (std::size_t iy = 0; iy < 15; iy += 2)
    vrs.push_back({m.node(0, iy), 1.0_V, 1.0_mOhm});
  const IrDropResult r =
      solve_irdrop(m, vrs, uniform_sinks(m, Current{200.0}));
  // Right edge is farthest: lowest voltage there.
  EXPECT_LT(r.node_voltages[m.node(14, 7)], r.node_voltages[m.node(0, 7)]);
  EXPECT_NEAR(r.min_node_voltage.value,
              *std::min_element(r.node_voltages.begin(),
                                r.node_voltages.end()),
              1e-15);
  EXPECT_GT(r.grid_loss.value, 0.0);
}

TEST(IrDrop, EnergyBalance) {
  // Power delivered by sources = grid loss + series loss + power into
  // sinks (at their node voltages).
  const GridMesh m = die_mesh(11);
  std::vector<VrAttachment> vrs{{m.node(0, 5), 1.0_V, 2.0_mOhm},
                                {m.node(10, 5), 1.0_V, 2.0_mOhm}};
  const Vector sinks = uniform_sinks(m, Current{50.0});
  const IrDropResult r = solve_irdrop(m, vrs, sinks);
  double source_power = 0.0;
  for (std::size_t k = 0; k < vrs.size(); ++k)
    source_power += r.vr_currents[k] * vrs[k].source_voltage.value;
  double sink_power = 0.0;
  for (std::size_t i = 0; i < sinks.size(); ++i)
    sink_power += sinks[i] * r.node_voltages[i];
  EXPECT_NEAR(source_power,
              sink_power + r.grid_loss.value + r.series_loss.value,
              1e-6 * source_power);
}

TEST(IrDrop, PeripheryVsCenterSpreadMatchesPaperShape) {
  // The paper: A1 (periphery VRs) sees a moderate per-VR spread; A2
  // (distributed below die) spreads much wider, with center VRs carrying
  // multiples of the edge VRs... in our mesh it is the *edge* placement
  // that concentrates load on VRs nearest the bulk of the sinks. The
  // robust, physical property: spread(max/min) is larger when sources sit
  // asymmetrically relative to the load.
  const GridMesh m = die_mesh(21, 5e-3);
  // Periphery ring of 16 VRs.
  std::vector<VrAttachment> ring;
  for (std::size_t k = 0; k < 21; k += 5) {
    ring.push_back({m.node(k, 0), 1.0_V, 2.0_mOhm});
    ring.push_back({m.node(k, 20), 1.0_V, 2.0_mOhm});
    if (k != 0 && k != 20) {
      ring.push_back({m.node(0, k), 1.0_V, 2.0_mOhm});
      ring.push_back({m.node(20, k), 1.0_V, 2.0_mOhm});
    }
  }
  const IrDropResult r =
      solve_irdrop(m, ring, uniform_sinks(m, Current{1000.0}));
  const Summary s = r.vr_current_summary();
  EXPECT_GT(s.max / s.min, 1.1);  // corners vs mid-edge differ
  EXPECT_LT(s.max / s.min, 4.0);
}

TEST(IrDrop, Validation) {
  const GridMesh m = die_mesh(5);
  EXPECT_THROW(solve_irdrop(m, {}, uniform_sinks(m, 1.0_A)),
               InvalidArgument);
  std::vector<VrAttachment> vrs{{0, 1.0_V, 1.0_mOhm}};
  EXPECT_THROW(solve_irdrop(m, vrs, Vector(3, 0.0)), InvalidArgument);
  std::vector<VrAttachment> bad{{999, 1.0_V, 1.0_mOhm}};
  EXPECT_THROW(solve_irdrop(m, bad, uniform_sinks(m, 1.0_A)),
               InvalidArgument);
}

// Mesh-refinement property: grid loss converges as the mesh refines.
class MeshRefinementSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MeshRefinementSweep, GridLossStableUnderRefinement) {
  // VRs attach over fixed physical footprints (patch_attachment), so the
  // solution converges as the mesh refines — point attachments would show
  // log-divergent spreading resistance instead.
  const std::size_t n = GetParam();
  const GridMesh coarse = die_mesh(n);
  const GridMesh fine = die_mesh(2 * n - 1);
  auto run = [](const GridMesh& m) {
    std::vector<VrAttachment> vrs;
    for (const auto& leg :
         patch_attachment(m, 2.0_mm, 11.18_mm, 4.0_mm, 1.0_V, 1.0_mOhm))
      vrs.push_back(leg);
    for (const auto& leg :
         patch_attachment(m, 20.36_mm, 11.18_mm, 4.0_mm, 1.0_V, 1.0_mOhm))
      vrs.push_back(leg);
    return solve_irdrop(m, vrs, uniform_sinks(m, Current{100.0}))
        .grid_loss.value;
  };
  const double lc = run(coarse);
  const double lf = run(fine);
  EXPECT_NEAR(lf, lc, 0.25 * lc) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, MeshRefinementSweep,
                         ::testing::Values<std::size_t>(9, 13, 17, 21));

// Current-conservation property: for any mesh size, solver tolerance, and
// start vector, the solved VR currents must sum to the total sink current
// (Kirchhoff at the aggregate level — the Laplacian has zero row sums, so
// whatever enters through the VR shunts must leave through the sinks).
class CurrentConservationSweep
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CurrentConservationSweep, VrCurrentsSumToSinkTotal) {
  const std::size_t n = GetParam();
  const GridMesh m = die_mesh(n);
  std::vector<VrAttachment> vrs;
  for (const auto& leg :
       patch_attachment(m, 4.0_mm, 4.0_mm, 3.0_mm, 1.0_V, 2.0_mOhm))
    vrs.push_back(leg);
  for (const auto& leg :
       patch_attachment(m, 18.0_mm, 18.0_mm, 3.0_mm, 1.0_V, 2.0_mOhm))
    vrs.push_back(leg);
  // Non-uniform load: uniform background plus a hotspot node.
  Vector sinks = uniform_sinks(m, Current{150.0});
  sinks[m.node(n / 2, n / 2)] += 50.0;

  for (const double rtol : {1e-8, 1e-12}) {
    for (const bool warm : {false, true}) {
      IrDropOptions opts;
      opts.relative_tolerance = rtol;
      if (warm) opts.warm_start_voltage = 1.0;
      const IrDropResult r = solve_irdrop(m, vrs, sinks, opts);
      EXPECT_GT(r.cg_iterations, 0u);
      double sourced = 0.0;
      for (double i : r.vr_currents) sourced += i;
      // The residual bound transfers to the current sum: tolerance-scaled,
      // not machine-epsilon, at the loose setting.
      EXPECT_NEAR(sourced, 200.0, (rtol == 1e-8 ? 1e-3 : 1e-6) * 200.0)
          << "n=" << n << " rtol=" << rtol << " warm=" << warm;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CurrentConservationSweep,
                         ::testing::Values<std::size_t>(9, 15, 23, 31));

TEST(Mesh, PerturbationScalesEdgeConductancesInsideRegion) {
  // 11x11 nodes on a 10 mm square: 1 mm grid spacing, nodes at integer mm.
  const GridMesh nominal(10.0_mm, 10.0_mm, 11, 11, 2e-3);
  const MeshPerturbation damage{
      EdgeScaleRegion{2.0_mm, 2.0_mm, 5.0_mm, 5.0_mm, 0.25}};
  const GridMesh damaged(10.0_mm, 10.0_mm, 11, 11, 2e-3, damage);
  EXPECT_FALSE(nominal.perturbed());
  EXPECT_TRUE(damaged.perturbed());
  // x-edge (2,3)-(3,3): midpoint (2.5, 3) mm inside the region -> scaled.
  EXPECT_DOUBLE_EQ(damaged.edge_conductance_x_at(2, 3),
                   0.25 * nominal.edge_conductance_x_at(2, 3));
  // y-edge (3,2)-(3,3): midpoint (3, 2.5) mm inside -> scaled.
  EXPECT_DOUBLE_EQ(damaged.edge_conductance_y_at(3, 2),
                   0.25 * nominal.edge_conductance_y_at(3, 2));
  // Edges outside the region keep the nominal conductance exactly.
  EXPECT_EQ(damaged.edge_conductance_x_at(0, 0),
            nominal.edge_conductance_x_at(0, 0));
  EXPECT_EQ(damaged.edge_conductance_y_at(9, 9),
            nominal.edge_conductance_y_at(9, 9));
  // An empty perturbation assembles the nominal operator bit for bit.
  const GridMesh empty_pert(10.0_mm, 10.0_mm, 11, 11, 2e-3,
                            MeshPerturbation{});
  EXPECT_FALSE(empty_pert.perturbed());
  EXPECT_EQ(CsrMatrix(empty_pert.laplacian()).values(),
            CsrMatrix(nominal.laplacian()).values());
  // The damaged operator differs from the nominal one.
  EXPECT_NE(CsrMatrix(damaged.laplacian()).values(),
            CsrMatrix(nominal.laplacian()).values());
}

TEST(IrDrop, DamagedRegionDeepensDownstreamDroop) {
  // Sources along the left edge, a low-conductance band across the middle:
  // the far side of the damage must droop deeper than the nominal mesh.
  const auto solve_with = [](const MeshPerturbation& perturbation) {
    const GridMesh m(10.0_mm, 10.0_mm, 21, 21, 2e-3, perturbation);
    std::vector<VrAttachment> vrs;
    for (std::size_t iy = 0; iy < 21; iy += 2)
      vrs.push_back({m.node(0, iy), 1.0_V, 1.0_mOhm});
    return solve_irdrop(m, vrs, uniform_sinks(m, Current{200.0}));
  };
  const IrDropResult nominal = solve_with({});
  const IrDropResult damaged = solve_with(
      {EdgeScaleRegion{4.0_mm, 0.0_mm, 6.0_mm, 10.0_mm, 0.1}});
  EXPECT_LT(damaged.min_node_voltage.value, nominal.min_node_voltage.value);
  double sourced = 0.0;
  for (double i : damaged.vr_currents) sourced += i;
  EXPECT_NEAR(sourced, 200.0, 1e-6);  // conservation survives the damage
}

TEST(IrDrop, WarmStartCertifiesTrueResidualOnPerturbedOperator) {
  // The CG convergence criterion certifies the normwise backward error
  // ||b - A x||_2 <= rtol * (||A||_inf ||x||_2 + ||b||_2) against the
  // *stamped* operator. A conductance perturbation changes A; both the
  // warm-started and the cold solve must still certify the true residual
  // of the perturbed system, reconstructed here independently.
  const MeshPerturbation damage{
      EdgeScaleRegion{8.0_mm, 8.0_mm, 14.0_mm, 14.0_mm, 0.1}};
  const auto assembled =
      assemble_mesh(22.36_mm, 22.36_mm, 21, 21, 2e-3, damage);
  const GridMesh& m = assembled->mesh;
  std::vector<VrAttachment> legs;
  for (const auto& leg :
       patch_attachment(m, 2.0_mm, 11.0_mm, 3.0_mm, 1.0_V, 1.0_mOhm))
    legs.push_back(leg);
  for (const auto& leg :
       patch_attachment(m, 20.0_mm, 11.0_mm, 3.0_mm, 1.0_V, 1.0_mOhm))
    legs.push_back(leg);
  const Vector sinks = uniform_sinks(m, Current{100.0});
  const double rtol = 1e-12;

  // Reconstruct the stamped system exactly as the solver does.
  CsrMatrix a = assembled->laplacian;
  Vector b(m.node_count(), 0.0);
  for (std::size_t i = 0; i < sinks.size(); ++i) b[i] -= sinks[i];
  for (const VrAttachment& leg : legs) {
    const double g = 1.0 / leg.series.value;
    a.add_to_entry(leg.node, leg.node, g);
    b[leg.node] += g * leg.source_voltage.value;
  }
  const double a_inf = a.infinity_norm();
  const double b_norm = norm2(b);

  IrDropOptions cold_opts;
  cold_opts.relative_tolerance = rtol;
  IrDropOptions warm_opts = cold_opts;
  warm_opts.warm_start_voltage = 1.0;
  const IrDropResult cold = solve_irdrop(*assembled, legs, sinks, cold_opts);
  const IrDropResult warm = solve_irdrop(*assembled, legs, sinks, warm_opts);

  for (const IrDropResult* r : {&cold, &warm}) {
    Vector residual = a.multiply(r->node_voltages);
    for (std::size_t i = 0; i < residual.size(); ++i)
      residual[i] = b[i] - residual[i];
    EXPECT_LE(norm2(residual),
              rtol * (a_inf * norm2(r->node_voltages) + b_norm));
  }
  // Both starts land on the same certified solution, and the rail-voltage
  // warm start still pays off on the perturbed operator.
  double max_dev = 0.0;
  for (std::size_t i = 0; i < cold.node_voltages.size(); ++i)
    max_dev = std::max(
        max_dev, std::fabs(cold.node_voltages[i] - warm.node_voltages[i]));
  EXPECT_LT(max_dev, 1e-9);
  EXPECT_LE(warm.cg_iterations, cold.cg_iterations);
}

}  // namespace
}  // namespace vpd
