// Golden-number regression guard for the headline reproduction: pins the
// Fig. 7 table (paper mode) within tight bands so refactoring the models
// cannot silently move the published comparison. If a deliberate model
// change shifts these, update EXPERIMENTS.md alongside this file.
#include <gtest/gtest.h>

#include "vpd/core/explorer.hpp"

namespace vpd {
namespace {

struct Golden {
  ArchitectureKind arch;
  std::optional<TopologyKind> topo;
  double loss_fraction;  // as reproduced and recorded in EXPERIMENTS.md
};

TEST(GoldenResults, FigureSevenTable) {
  EvaluationOptions options;
  options.below_die_area_fraction = 1.6;
  const ArchitectureExplorer explorer(paper_system(), options);
  const ExplorationResult result = explorer.explore();

  const Golden golden[] = {
      {ArchitectureKind::kA0_PcbConversion, std::nullopt, 0.416},
      {ArchitectureKind::kA1_InterposerPeriphery, TopologyKind::kDpmih,
       0.222},
      {ArchitectureKind::kA1_InterposerPeriphery, TopologyKind::kDsch,
       0.175},
      {ArchitectureKind::kA2_InterposerBelowDie, TopologyKind::kDpmih,
       0.164},
      {ArchitectureKind::kA2_InterposerBelowDie, TopologyKind::kDsch,
       0.114},
      {ArchitectureKind::kA3_TwoStage12V, TopologyKind::kDsch, 0.240},
      {ArchitectureKind::kA3_TwoStage6V, TopologyKind::kDsch, 0.271},
  };
  for (const Golden& g : golden) {
    const auto& entry = result.find(g.arch, g.topo);
    ASSERT_FALSE(entry.excluded())
        << to_string(g.arch) << (g.topo ? to_string(*g.topo) : "");
    const double f =
        entry.evaluation->loss_fraction(result.spec.total_power);
    EXPECT_NEAR(f, g.loss_fraction, 0.01)
        << to_string(g.arch) << " / "
        << (g.topo ? to_string(*g.topo) : "PCB");
  }

  // The single-stage 3LHD exclusions are part of the golden behaviour.
  EXPECT_TRUE(result
                  .find(ArchitectureKind::kA1_InterposerPeriphery,
                        TopologyKind::kDickson)
                  .excluded());
  EXPECT_TRUE(result
                  .find(ArchitectureKind::kA2_InterposerBelowDie,
                        TopologyKind::kDickson)
                  .excluded());
}

TEST(GoldenResults, OrderingInvariants) {
  EvaluationOptions options;
  options.below_die_area_fraction = 1.6;
  const ArchitectureExplorer explorer(paper_system(), options);
  const ExplorationResult result = explorer.explore();
  auto loss = [&](ArchitectureKind a, std::optional<TopologyKind> t) {
    return result.find(a, t).evaluation->loss_fraction(
        result.spec.total_power);
  };
  // The paper's coarse ordering: every VPD architecture beats A0; DSCH
  // beats DPMIH everywhere; two-stage trails single-stage; 6 V trails
  // 12 V.
  const double a0 = loss(ArchitectureKind::kA0_PcbConversion, std::nullopt);
  for (ArchitectureKind arch : {ArchitectureKind::kA1_InterposerPeriphery,
                                ArchitectureKind::kA2_InterposerBelowDie,
                                ArchitectureKind::kA3_TwoStage12V,
                                ArchitectureKind::kA3_TwoStage6V}) {
    for (TopologyKind topo : {TopologyKind::kDpmih, TopologyKind::kDsch}) {
      EXPECT_LT(loss(arch, topo), a0)
          << to_string(arch) << "/" << to_string(topo);
    }
    EXPECT_LT(loss(arch, TopologyKind::kDsch),
              loss(arch, TopologyKind::kDpmih))
        << to_string(arch);
  }
  EXPECT_LT(loss(ArchitectureKind::kA2_InterposerBelowDie,
                 TopologyKind::kDsch),
            loss(ArchitectureKind::kA1_InterposerPeriphery,
                 TopologyKind::kDsch));
  EXPECT_LT(loss(ArchitectureKind::kA1_InterposerPeriphery,
                 TopologyKind::kDsch),
            loss(ArchitectureKind::kA3_TwoStage12V, TopologyKind::kDsch));
  EXPECT_LT(loss(ArchitectureKind::kA3_TwoStage12V, TopologyKind::kDsch),
            loss(ArchitectureKind::kA3_TwoStage6V, TopologyKind::kDsch));
}

}  // namespace
}  // namespace vpd
