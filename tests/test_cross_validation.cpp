// Cross-module validation: independent implementations must agree.
//  * The sparse mesh IR-drop solver vs the dense-MNA circuit engine on
//    the identical resistive grid.
//  * The transient engine's ripple spectrum vs the single-bin DFT
//    measurement.
//  * The AC solver at near-DC vs the DC solver.
#include <gtest/gtest.h>

#include <cmath>

#include "vpd/circuit/ac_solver.hpp"
#include "vpd/common/error.hpp"
#include "vpd/circuit/dc_solver.hpp"
#include "vpd/circuit/pwm.hpp"
#include "vpd/circuit/transient.hpp"
#include "vpd/package/irdrop.hpp"
#include "vpd/package/mesh.hpp"

namespace vpd {
namespace {

using namespace vpd::literals;

TEST(CrossValidation, MeshSolverMatchesCircuitEngine) {
  // A 6x6 grid: build it once as a GridMesh (sparse CG path) and once as
  // a circuit netlist (dense LU path); node voltages must agree.
  const std::size_t n = 6;
  const GridMesh mesh(10.0_mm, 10.0_mm, n, n, 2e-3);

  // Mesh path: one VR at the west mid-edge, one load at the east.
  std::vector<VrAttachment> vrs{
      {mesh.node(0, 2), 1.0_V, Resistance{1e-4}}};
  Vector sinks(mesh.node_count(), 0.0);
  sinks[mesh.node(5, 3)] = 10.0;
  const IrDropResult ir = solve_irdrop(mesh, vrs, sinks);

  // Circuit path: same conductances as explicit resistors.
  Netlist nl;
  std::vector<NodeId> nodes(mesh.node_count());
  for (std::size_t i = 0; i < mesh.node_count(); ++i)
    nodes[i] = nl.add_node("n" + std::to_string(i));
  const double rx = 1.0 / mesh.edge_conductance_x();
  const double ry = 1.0 / mesh.edge_conductance_y();
  for (std::size_t iy = 0; iy < n; ++iy) {
    for (std::size_t ix = 0; ix < n; ++ix) {
      if (ix + 1 < n)
        nl.add_resistor("rx" + std::to_string(mesh.node(ix, iy)),
                        nodes[mesh.node(ix, iy)],
                        nodes[mesh.node(ix + 1, iy)], Resistance{rx});
      if (iy + 1 < n)
        nl.add_resistor("ry" + std::to_string(mesh.node(ix, iy)),
                        nodes[mesh.node(ix, iy)],
                        nodes[mesh.node(ix, iy + 1)], Resistance{ry});
    }
  }
  const NodeId vr_internal = nl.add_node("vr");
  nl.add_vsource("Vvr", vr_internal, kGround, 1.0_V);
  nl.add_resistor("Rseries", vr_internal, nodes[mesh.node(0, 2)],
                  Resistance{1e-4});
  nl.add_isource("Iload", nodes[mesh.node(5, 3)], kGround, 10.0_A);
  const DcSolution dc = solve_dc(nl);

  for (std::size_t i = 0; i < mesh.node_count(); ++i) {
    EXPECT_NEAR(dc.voltage(nodes[i]).value, ir.node_voltages[i], 1e-8)
        << "node " << i;
  }
  // VR current agrees too (SPICE sign: source delivering -> negative).
  EXPECT_NEAR(-dc.current("Vvr").value, ir.vr_currents[0], 1e-6);
}

TEST(CrossValidation, AcSolverAtLowFrequencyMatchesDc) {
  Netlist nl;
  const NodeId in = nl.add_node("in");
  const NodeId mid = nl.add_node("mid");
  const ElementId src = nl.add_vsource("V1", in, kGround, 10.0_V);
  nl.add_resistor("R1", in, mid, 3.0_Ohm);
  nl.add_resistor("R2", mid, kGround, 2.0_Ohm);
  nl.add_capacitor("C1", mid, kGround, 1.0_nF);  // negligible at 1 Hz
  const DcSolution dc = solve_dc(nl);
  const AcSolution ac = solve_ac(nl, Frequency{1.0}, src, 10.0);
  EXPECT_NEAR(std::abs(ac.voltage("mid")), dc.voltage("mid").value, 1e-6);
}

TEST(CrossValidation, HarmonicMagnitudeRecoversSinusoid) {
  // 3 + 2 sin(2 pi 50 t) + 0.5 sin(2 pi 150 t), 4 fundamental periods.
  std::vector<double> ts, vs;
  const double f0 = 50.0;
  for (int i = 0; i <= 4000; ++i) {
    const double t = 4.0 / f0 * i / 4000.0;
    ts.push_back(t);
    vs.push_back(3.0 + 2.0 * std::sin(2.0 * M_PI * f0 * t) +
                 0.5 * std::sin(2.0 * M_PI * 3.0 * f0 * t));
  }
  const Trace trace("v", std::move(ts), std::move(vs));
  EXPECT_NEAR(trace.harmonic_magnitude(f0), 2.0, 1e-3);
  EXPECT_NEAR(trace.harmonic_magnitude(3.0 * f0), 0.5, 1e-3);
  EXPECT_NEAR(trace.harmonic_magnitude(2.0 * f0), 0.0, 1e-3);
  EXPECT_THROW(trace.harmonic_magnitude(-1.0, 0.0, 0.01),
               InvalidArgument);
}

TEST(CrossValidation, BuckRippleFundamentalSitsAtSwitchingFrequency) {
  // The inductor current's dominant AC component is at f_sw.
  Netlist nl;
  const NodeId vin = nl.add_node("vin");
  const NodeId sw = nl.add_node("sw");
  const NodeId out = nl.add_node("out");
  nl.add_vsource("Vin", vin, kGround, 12.0_V);
  nl.add_switch("S_hi", vin, sw, Resistance{1e-3}, Resistance{1e8});
  nl.add_switch("S_lo", sw, kGround, Resistance{1e-3}, Resistance{1e8});
  nl.add_inductor("L1", sw, out, 10.0_uH, Current{6.0});
  nl.add_capacitor("Cout", out, kGround, 100.0_uF, 6.0_V);
  nl.add_resistor("Rload", out, kGround, 1.0_Ohm);
  GateDrive drive(nl);
  drive.assign_pair("S_hi", "S_lo", PwmSignal(500.0_kHz, 0.5),
                    Seconds{0.0});
  TransientOptions opts;
  opts.t_stop = Seconds{60e-6};
  opts.dt = Seconds{5e-9};
  opts.controller = drive.controller();
  const TransientResult r = simulate(nl, opts);
  const Trace il = r.current("L1").tail(20e-6);  // 10 clean cycles

  const double at_fsw = il.harmonic_magnitude(500e3);
  const double at_2fsw = il.harmonic_magnitude(1000e3);
  // Triangular ripple at 50% duty: fundamental amplitude = 8/pi^2 * pp/2
  // with the analytic pp = Vout (1-D) / (L f) = 0.6 A. (The measured
  // peak-to-peak still carries residual slow LC settling, so the DFT is
  // checked against the analytic triangle, not the raw pp.)
  const double pp_analytic = 6.0 * 0.5 / (10e-6 * 500e3);
  EXPECT_NEAR(at_fsw, 8.0 / (M_PI * M_PI) * pp_analytic / 2.0,
              0.05 * at_fsw);
  EXPECT_LT(at_2fsw, 0.15 * at_fsw);
}

}  // namespace
}  // namespace vpd
