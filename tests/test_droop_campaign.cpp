// Droop-campaign subsystem (ctest -L transient): the TransientScenario
// model, deterministic population generation, the parallel-vs-serial
// bit-identity acceptance test over the default grid, the VR-dropout
// transient's t -> inf consistency with the FaultInjection DC re-solve,
// dynamic-droop metric/check coherence, and the shared factor-cache
// amortization across scenarios.
#include "vpd/workload/droop_campaign.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "vpd/arch/evaluator.hpp"
#include "vpd/arch/transient_model.hpp"
#include "vpd/common/error.hpp"
#include "vpd/core/spec.hpp"
#include "vpd/fault/fault_model.hpp"
#include "vpd/fault/transient_scenario.hpp"
#include "vpd/workload/power_map.hpp"

namespace vpd {
namespace {

/// The paper-mode options every sweep/explorer test pins, at a coarse
/// mesh to keep the DC phases fast.
EvaluationOptions paper_options(std::size_t mesh_nodes = 21) {
  EvaluationOptions o;
  o.below_die_area_fraction = 1.6;
  o.mesh_nodes = mesh_nodes;
  return o;
}

// ---------------------------------------------------------------------------
// TransientScenario model
// ---------------------------------------------------------------------------

TEST(TransientScenarioModel, KindStringsCoverEveryKind) {
  EXPECT_STREQ(to_string(TransientKind::kLoadStep), "load-step");
  EXPECT_STREQ(to_string(TransientKind::kLoadBurst), "load-burst");
  EXPECT_STREQ(to_string(TransientKind::kLoadRamp), "load-ramp");
  EXPECT_STREQ(to_string(TransientKind::kVrDropout), "vr-dropout");
  EXPECT_EQ(all_transient_kinds().size(), 4u);
}

TEST(TransientScenarioModel, ValidationRejectsBadShapes) {
  TransientScenario sc;  // defaults are a valid load step
  EXPECT_NO_THROW(sc.validate());
  sc.tile_x = 1.5;
  EXPECT_THROW(sc.validate(), InvalidArgument);
  sc.tile_x = 0.5;
  sc.base_fraction = 0.9;
  sc.step_fraction = 0.5;  // 1.4 > the 1.2x overload ceiling
  EXPECT_THROW(sc.validate(), InvalidArgument);
  sc.base_fraction = 0.5;
  sc.step_fraction = 0.4;

  sc.kind = TransientKind::kLoadBurst;
  // The boundary edge == half the on-window (the degenerate triangular
  // plateau) is accepted; anything longer is rejected.
  sc.burst_frequency = Frequency{2e6};
  sc.burst_duty = 0.4;
  sc.edge = Seconds{100e-9};  // exactly 0.5 * duty / f
  EXPECT_NO_THROW(sc.validate());
  sc.edge = Seconds{101e-9};
  EXPECT_THROW(sc.validate(), InvalidArgument);

  // Dropouts ignore the tile fields entirely.
  sc.kind = TransientKind::kVrDropout;
  sc.tile_x = 7.0;
  sc.edge = Seconds{200e-9};
  EXPECT_NO_THROW(sc.validate());
}

// ---------------------------------------------------------------------------
// Population generation
// ---------------------------------------------------------------------------

TEST(DroopCampaign, GeneratesDeterministicPopulation) {
  const DroopCampaignRunner runner(paper_system());
  const std::vector<TransientScenario> scenarios =
      runner.generate_scenarios(48);
  // Default config: 2x2 tiles x {step, burst, ramp} + 8 capped dropouts.
  ASSERT_EQ(scenarios.size(), 12u + 8u);
  EXPECT_EQ(scenarios[0].label, "step[0,0]");
  EXPECT_EQ(scenarios[0].kind, TransientKind::kLoadStep);
  EXPECT_EQ(scenarios[4].label, "burst[0,0]");
  EXPECT_EQ(scenarios[8].label, "ramp[0,0]");
  EXPECT_EQ(scenarios[12].label, "dropout[0]");
  EXPECT_EQ(scenarios[12].site, 0u);
  EXPECT_EQ(scenarios.back().label, "dropout[7]");
  // Dropouts run at full load; tiles sit strictly inside the unit die.
  EXPECT_DOUBLE_EQ(scenarios[12].base_fraction, 1.0);
  EXPECT_DOUBLE_EQ(scenarios[0].tile_x, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(scenarios[3].tile_y, 2.0 / 3.0);

  // max_dropout_sites == 0 means every site.
  DroopCampaignConfig all;
  all.max_dropout_sites = 0;
  EXPECT_EQ(DroopCampaignRunner(paper_system(), all)
                .generate_scenarios(5)
                .size(),
            12u + 5u);

  // Families toggle off independently.
  DroopCampaignConfig steps_only;
  steps_only.include_bursts = false;
  steps_only.include_ramps = false;
  steps_only.include_vr_dropouts = false;
  EXPECT_EQ(DroopCampaignRunner(paper_system(), steps_only)
                .generate_scenarios(48)
                .size(),
            4u);
}

TEST(DroopCampaign, RejectsBadConfigAndOptions) {
  DroopCampaignConfig late_event;
  late_event.t_event = late_event.t_stop;
  EXPECT_THROW(DroopCampaignRunner(paper_system(), late_event),
               InvalidArgument);

  DroopCampaignConfig short_window;
  short_window.t_stop = Seconds{0.5e-6};  // less than two burst cycles
  short_window.t_event = Seconds{0.1e-6};
  EXPECT_THROW(DroopCampaignRunner(paper_system(), short_window),
               InvalidArgument);

  const DroopCampaignRunner runner(paper_system());
  EXPECT_THROW(runner.run(ArchitectureKind::kA0_PcbConversion,
                          TopologyKind::kDsch),
               InvalidArgument);
  EvaluationOptions with_map = paper_options();
  with_map.sink_map = [](const GridMesh& mesh, Current total) {
    return uniform_power_map(mesh, total);
  };
  EXPECT_THROW(runner.run(ArchitectureKind::kA1_InterposerPeriphery,
                          TopologyKind::kDsch,
                          DeviceTechnology::kGalliumNitride, with_map),
               InvalidArgument);
}

// ---------------------------------------------------------------------------
// Acceptance: parallel bit-identity over the default scenario grid
// ---------------------------------------------------------------------------

TEST(DroopCampaign, ParallelCampaignIsBitIdenticalToSerial) {
  const PowerDeliverySpec spec = paper_system();
  const EvaluationOptions options = paper_options(21);
  DroopCampaignConfig serial;  // default grid: 12 load + 8 dropout
  serial.sweep.threads = 1;
  DroopCampaignConfig parallel = serial;
  parallel.sweep.threads = 4;

  const DroopCampaignReport a =
      DroopCampaignRunner(spec, serial)
          .run(ArchitectureKind::kA1_InterposerPeriphery,
               TopologyKind::kDsch, DeviceTechnology::kGalliumNitride,
               options);
  const DroopCampaignReport b =
      DroopCampaignRunner(spec, parallel)
          .run(ArchitectureKind::kA1_InterposerPeriphery,
               TopologyKind::kDsch, DeviceTechnology::kGalliumNitride,
               options);

  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  EXPECT_EQ(a.outcomes.size(), 20u);
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    const std::string& label = a.outcomes[i].scenario.label;
    EXPECT_EQ(label, b.outcomes[i].scenario.label);
    ASSERT_EQ(a.outcomes[i].evaluated, b.outcomes[i].evaluated) << label;
    if (!a.outcomes[i].evaluated) continue;
    const DroopMetrics& ma = a.outcomes[i].metrics;
    const DroopMetrics& mb = b.outcomes[i].metrics;
    // Bit-identity: EXPECT_EQ on doubles, not EXPECT_NEAR.
    EXPECT_EQ(ma.v_min, mb.v_min) << label;
    EXPECT_EQ(ma.v_settled, mb.v_settled) << label;
    EXPECT_EQ(ma.v_predicted, mb.v_predicted) << label;
    EXPECT_EQ(ma.undershoot_fraction, mb.undershoot_fraction) << label;
    EXPECT_EQ(ma.settled_droop_fraction, mb.settled_droop_fraction)
        << label;
    EXPECT_EQ(ma.settling_time.value, mb.settling_time.value) << label;
    EXPECT_EQ(ma.steady_cycle, mb.steady_cycle) << label;
    EXPECT_EQ(ma.samples, mb.samples) << label;
    EXPECT_EQ(a.outcomes[i].margin, b.outcomes[i].margin) << label;
    ASSERT_EQ(a.outcomes[i].violations.size(),
              b.outcomes[i].violations.size())
        << label;
    for (std::size_t v = 0; v < a.outcomes[i].violations.size(); ++v) {
      EXPECT_EQ(a.outcomes[i].violations[v].kind,
                b.outcomes[i].violations[v].kind)
          << label;
      EXPECT_EQ(a.outcomes[i].violations[v].value,
                b.outcomes[i].violations[v].value)
          << label;
    }
  }
  EXPECT_EQ(a.pass_count(), b.pass_count());
  EXPECT_EQ(a.transient_steps, b.transient_steps);
  EXPECT_EQ(a.worst_undershoot_fraction(), b.worst_undershoot_fraction());
  EXPECT_EQ(a.worst_margin(), b.worst_margin());
  // The shared factor cache's hit/miss split is deterministic too: misses
  // count distinct step matrices, independent of which thread got there
  // first.
  EXPECT_EQ(a.factors.hits, b.factors.hits);
  EXPECT_EQ(a.factors.misses, b.factors.misses);
}

// ---------------------------------------------------------------------------
// VR-dropout transient vs the post-fault DC re-solve
// ---------------------------------------------------------------------------

TEST(DroopCampaign, DropoutTransientSettlesOntoDcAnswer) {
  const PowerDeliverySpec spec = paper_system();
  const EvaluationOptions options = paper_options(21);
  DroopCampaignConfig config;
  config.include_load_steps = false;
  config.include_bursts = false;
  config.include_ramps = false;
  config.max_dropout_sites = 2;
  config.sweep.threads = 2;
  const DroopCampaignReport report =
      DroopCampaignRunner(spec, config)
          .run(ArchitectureKind::kA1_InterposerPeriphery,
               TopologyKind::kDsch, DeviceTechnology::kGalliumNitride,
               options);

  ASSERT_EQ(report.outcomes.size(), 2u);
  const double rail = spec.die_voltage.value;
  const double i_die = spec.die_current().value;
  const ArchitectureEvaluation nominal = evaluate_architecture(
      ArchitectureKind::kA1_InterposerPeriphery, spec, TopologyKind::kDsch,
      DeviceTechnology::kGalliumNitride, options);
  for (const TransientScenarioOutcome& outcome : report.outcomes) {
    ASSERT_TRUE(outcome.evaluated) << outcome.failure_reason;
    const DroopMetrics& m = outcome.metrics;

    // The t -> inf limit of the transient matches the campaign's DC
    // prediction...
    EXPECT_NEAR(m.v_settled, m.v_predicted, 2e-3 * rail)
        << outcome.scenario.label;

    // ...and that prediction is the independent FaultInjection DC
    // re-solve's answer (rail minus the faulted R_eff drop), not a
    // campaign-internal convention.
    EvaluationOptions faulted_options = options;
    const FaultScenario fault{
        outcome.scenario.label,
        {Fault{FaultKind::kVrDropout, outcome.scenario.site, Length{},
               Length{}}}};
    faulted_options.faults = to_injection(fault, FaultSeverity{});
    const ArchitectureEvaluation faulted = evaluate_architecture(
        ArchitectureKind::kA1_InterposerPeriphery, spec,
        TopologyKind::kDsch, DeviceTechnology::kGalliumNitride,
        faulted_options);
    const double r_post =
        build_reduced_pdn(spec, faulted).effective_resistance.value;
    const double r_pre =
        build_reduced_pdn(spec, nominal).effective_resistance.value;
    EXPECT_GT(r_post, r_pre) << outcome.scenario.label;
    // Exact landing point including the documented bypass-leak correction
    // (delta in parallel with the 1-Ohm open switch)...
    const double delta = std::max(r_post - r_pre, 1e-12);
    EXPECT_NEAR(m.v_predicted,
                rail - i_die * (r_pre + delta * 1.0 / (delta + 1.0)), 1e-6)
        << outcome.scenario.label;
    // ...which is the faulted DC drop up to an O(delta^2) leak.
    EXPECT_NEAR(m.v_predicted, rail - i_die * r_post, 0.02 * rail)
        << outcome.scenario.label;
    // The dropout actually disturbed the rail on its way down.
    EXPECT_LT(m.v_min, m.v_settled) << outcome.scenario.label;
  }
}

// ---------------------------------------------------------------------------
// Dynamic-droop metrics and the shared factor cache
// ---------------------------------------------------------------------------

TEST(DroopCampaign, LoadScenariosMeasureCoherentDynamics) {
  const PowerDeliverySpec spec = paper_system();
  DroopCampaignConfig config;
  config.tile_grid = 1;  // one tile x {step, burst, ramp}
  config.include_vr_dropouts = false;
  config.sweep.threads = 2;
  const DroopCampaignReport report =
      DroopCampaignRunner(spec, config)
          .run(ArchitectureKind::kA2_InterposerBelowDie, TopologyKind::kDsch,
               DeviceTechnology::kGalliumNitride, paper_options(21));

  ASSERT_EQ(report.outcomes.size(), 3u);
  const std::size_t expected_steps = static_cast<std::size_t>(
      std::llround(config.t_stop.value / config.dt.value));
  for (const TransientScenarioOutcome& outcome : report.outcomes) {
    ASSERT_TRUE(outcome.evaluated) << outcome.failure_reason;
    const DroopMetrics& m = outcome.metrics;
    EXPECT_EQ(m.samples, expected_steps + 1) << outcome.scenario.label;
    EXPECT_GT(m.undershoot_fraction, 0.0) << outcome.scenario.label;
    // The worst excursion is at least as deep as the settled droop.
    EXPECT_GE(m.undershoot_fraction,
              m.settled_droop_fraction - 1e-12)
        << outcome.scenario.label;
    EXPECT_LE(m.settling_time.value, config.t_stop.value)
        << outcome.scenario.label;
    // The settled level converges onto the scenario's DC prediction
    // (generous band: lightly-damped ringing may still be decaying).
    EXPECT_NEAR(m.v_settled, m.v_predicted, 0.02 * m.rail)
        << outcome.scenario.label;
    // A failed check is exactly a negative margin.
    EXPECT_EQ(outcome.margin < 0.0, !outcome.violations.empty())
        << outcome.scenario.label;
    if (outcome.scenario.kind == TransientKind::kLoadBurst) {
      EXPECT_TRUE(m.steady_cycle.has_value()) << outcome.scenario.label;
    }
  }
  EXPECT_EQ(report.transient_steps, 3u * expected_steps);

  // Step, burst and ramp at one tile share the tile's reduced netlist, so
  // the shared cache hands the same factorizations to all three: two
  // matrices total (first-step BE + trapezoidal), the rest are hits.
  EXPECT_EQ(report.factors.misses, 2u);
  EXPECT_EQ(report.factors.hits, 4u);

  // Telemetry shape: the transient.* family in the unified snapshot.
  const obs::Snapshot snapshot = report.snapshot();
  ASSERT_NE(snapshot.counter("transient.scenarios"), nullptr);
  EXPECT_EQ(*snapshot.counter("transient.scenarios"), 3u);
  ASSERT_NE(snapshot.counter("transient.factor_misses"), nullptr);
  EXPECT_EQ(*snapshot.counter("transient.factor_misses"), 2u);
  ASSERT_NE(snapshot.counter("transient.steps"), nullptr);
  EXPECT_NE(snapshot.gauge("transient.pass_fraction"), nullptr);
  EXPECT_NE(snapshot.histogram("transient.scenario_seconds"), nullptr);
  EXPECT_EQ(snapshot.histogram("transient.scenario_seconds")->count, 3u);
}

}  // namespace
}  // namespace vpd
