#include "vpd/package/stacked_mesh.hpp"

#include <gtest/gtest.h>

#include "vpd/common/error.hpp"
#include "vpd/package/irdrop.hpp"

namespace vpd {
namespace {

using namespace vpd::literals;

StackedMesh paper_stack(std::size_t n = 15,
                        double via_per_node_uohm = 50.0) {
  return StackedMesh(22.36_mm, n, /*interposer*/ 1.0e-3, /*die*/ 8.5e-3,
                     Resistance{via_per_node_uohm * 1e-6});
}

TEST(StackedMesh, IndexingAndGeometry) {
  const StackedMesh m = paper_stack(5);
  EXPECT_EQ(m.nodes_per_layer(), 25u);
  EXPECT_EQ(m.node_count(), 50u);
  EXPECT_EQ(m.node(0, 2, 3), m.grid(0).node(2, 3));
  EXPECT_EQ(m.node(1, 2, 3), 25u + m.grid(1).node(2, 3));
  EXPECT_THROW(m.node(2, 0, 0), InvalidArgument);
}

TEST(StackedMesh, LaplacianSymmetricZeroRowSum) {
  const StackedMesh m = paper_stack(6);
  const CsrMatrix a(m.laplacian());
  EXPECT_TRUE(a.is_symmetric(1e-12));
  Vector ones(m.node_count(), 1.0);
  EXPECT_LT(norm_inf(a.multiply(ones)), 1e-9);
}

TEST(StackedMesh, CurrentConservation) {
  const StackedMesh m = paper_stack();
  std::vector<VrAttachment> vrs{
      {m.node(0, 0, 7), 1.0_V, Resistance{1e-4}},
      {m.node(0, 14, 7), 1.0_V, Resistance{1e-4}}};
  Vector sinks(m.nodes_per_layer(), 100.0 / m.nodes_per_layer());
  const StackedIrDropResult r = solve_stacked_irdrop(m, vrs, sinks);
  double sourced = 0.0;
  for (double i : r.vr_currents) sourced += i;
  EXPECT_NEAR(sourced, 100.0, 1e-6);
}

TEST(StackedMesh, EnergyBalance) {
  const StackedMesh m = paper_stack(9);
  std::vector<VrAttachment> vrs{{m.node(0, 4, 4), 1.0_V, Resistance{1e-4}}};
  Vector sinks(m.nodes_per_layer(), 50.0 / m.nodes_per_layer());
  const StackedIrDropResult r = solve_stacked_irdrop(m, vrs, sinks);
  double source_power = 0.0;
  for (std::size_t k = 0; k < vrs.size(); ++k)
    source_power += r.vr_currents[k] * 1.0;
  double sink_power = 0.0;
  for (std::size_t i = 0; i < sinks.size(); ++i)
    sink_power +=
        sinks[i] * r.node_voltages[i + m.nodes_per_layer()];
  EXPECT_NEAR(source_power,
              sink_power + r.losses.total().value + r.attach_loss.value,
              1e-6 * source_power);
  EXPECT_GT(r.losses.via_field.value, 0.0);
  EXPECT_GT(r.losses.interposer_lateral.value, 0.0);
}

TEST(StackedMesh, DieVoltageBelowInterposerVoltage) {
  // Current flows interposer -> die, so every die node sits at or below
  // its interposer counterpart.
  const StackedMesh m = paper_stack(9);
  std::vector<VrAttachment> vrs{{m.node(0, 0, 4), 1.0_V, Resistance{1e-4}}};
  Vector sinks(m.nodes_per_layer(), 30.0 / m.nodes_per_layer());
  const StackedIrDropResult r = solve_stacked_irdrop(m, vrs, sinks);
  for (std::size_t i = 0; i < m.nodes_per_layer(); ++i)
    EXPECT_LE(r.node_voltages[i + m.nodes_per_layer()],
              r.node_voltages[i] + 1e-9);
  EXPECT_LT(r.min_die_voltage.value, 1.0);
}

TEST(StackedMesh, TightViaCouplingApproachesSingleSheet) {
  // With near-zero via resistance and an ultra-conductive die grid the
  // stack degenerates to the interposer sheet alone: compare against the
  // single-layer solver.
  const std::size_t n = 11;
  const double sheet = 1.0e-3;
  const StackedMesh stacked(22.36_mm, n, sheet, /*die*/ 1e-9,
                            Resistance{1e-12});
  const GridMesh single(22.36_mm, 22.36_mm, n, n, sheet);

  std::vector<VrAttachment> vrs{{single.node(0, 5), 1.0_V,
                                 Resistance{1e-4}}};
  Vector sinks(single.node_count(), 20.0 / single.node_count());
  const IrDropResult flat = solve_irdrop(single, vrs, sinks);
  const StackedIrDropResult stack = solve_stacked_irdrop(stacked, vrs, sinks);
  EXPECT_NEAR(stack.vr_currents[0], flat.vr_currents[0],
              5e-3);  // CG tolerance on the 2x larger system
  // With an ideal die grid in parallel the lateral loss can only drop.
  EXPECT_LE(stack.losses.total().value, flat.grid_loss.value + 1e-6);
}

TEST(StackedMesh, WeakerViaFieldShiftsLossIntoVias) {
  auto run = [&](double via_uohm) {
    const StackedMesh m = paper_stack(11, via_uohm);
    std::vector<VrAttachment> vrs{
        {m.node(0, 0, 5), 1.0_V, Resistance{1e-4}}};
    Vector sinks(m.nodes_per_layer(), 200.0 / m.nodes_per_layer());
    return solve_stacked_irdrop(m, vrs, sinks);
  };
  const auto strong = run(10.0);
  const auto weak = run(500.0);
  EXPECT_GT(weak.losses.via_field.value, strong.losses.via_field.value);
  EXPECT_LT(weak.min_die_voltage.value, strong.min_die_voltage.value);
}

TEST(StackedMesh, Validation) {
  EXPECT_THROW(StackedMesh(22.36_mm, 5, 1e-3, 1e-3, Resistance{0.0}),
               InvalidArgument);
  const StackedMesh m = paper_stack(5);
  std::vector<VrAttachment> die_side{
      {m.node(1, 0, 0), 1.0_V, Resistance{1e-4}}};
  EXPECT_THROW(
      solve_stacked_irdrop(m, die_side, Vector(m.nodes_per_layer(), 0.0)),
      InvalidArgument);
  std::vector<VrAttachment> ok{{m.node(0, 0, 0), 1.0_V, Resistance{1e-4}}};
  EXPECT_THROW(solve_stacked_irdrop(m, ok, Vector(3, 0.0)),
               InvalidArgument);
  EXPECT_THROW(solve_stacked_irdrop(m, {}, Vector(25, 0.0)),
               InvalidArgument);
}

}  // namespace
}  // namespace vpd
