#include <gtest/gtest.h>

#include <cmath>

#include "vpd/common/error.hpp"
#include "vpd/workload/load_transient.hpp"
#include "vpd/workload/power_map.hpp"

namespace vpd {
namespace {

using namespace vpd::literals;

GridMesh mesh() { return GridMesh(22.36_mm, 22.36_mm, 21, 21, 1e-3); }

TEST(PowerMap, UniformTotalsCorrectly) {
  const GridMesh m = mesh();
  const Vector sinks = uniform_power_map(m, Current{1000.0});
  EXPECT_NEAR(map_total(sinks).value, 1000.0, 1e-9);
  for (double s : sinks) EXPECT_NEAR(s, 1000.0 / 441.0, 1e-12);
}

TEST(PowerMap, HotspotConcentratesAtCenter) {
  const GridMesh m = mesh();
  const Vector sinks =
      hotspot_power_map(m, Current{1000.0}, 0.5, 0.5, 0.15, 0.3);
  EXPECT_NEAR(map_total(sinks).value, 1000.0, 1e-6);
  const std::size_t center = m.node(10, 10);
  const std::size_t corner = m.node(0, 0);
  EXPECT_GT(sinks[center], 10.0 * sinks[corner]);
}

TEST(PowerMap, HotspotBackgroundFloor) {
  const GridMesh m = mesh();
  const Vector sinks =
      hotspot_power_map(m, Current{1000.0}, 0.5, 0.5, 0.1, 0.5);
  // 50% background spread uniformly: every node gets at least that.
  const double floor_per_node = 0.5 * 1000.0 / 441.0;
  for (double s : sinks) EXPECT_GE(s, floor_per_node - 1e-9);
}

TEST(PowerMap, HotspotOffCenter) {
  const GridMesh m = mesh();
  const Vector sinks =
      hotspot_power_map(m, Current{100.0}, 0.1, 0.9, 0.1, 0.2);
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < sinks.size(); ++i)
    if (sinks[i] > sinks[argmax]) argmax = i;
  EXPECT_LT(m.x_of(argmax).value, 0.3 * m.width().value);
  EXPECT_GT(m.y_of(argmax).value, 0.7 * m.height().value);
}

TEST(PowerMap, CheckerboardAlternates) {
  const GridMesh m = mesh();
  const Vector sinks =
      checkerboard_power_map(m, Current{1000.0}, 4, 3.0);
  EXPECT_NEAR(map_total(sinks).value, 1000.0, 1e-6);
  // High and low tiles differ by the contrast ratio.
  double lo = 1e9, hi = 0.0;
  for (double s : sinks) {
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  EXPECT_NEAR(hi / lo, 3.0, 1e-9);
}

TEST(PowerMap, Validation) {
  const GridMesh m = mesh();
  EXPECT_THROW(hotspot_power_map(m, Current{1.0}, 1.5, 0.5, 0.1),
               InvalidArgument);
  EXPECT_THROW(hotspot_power_map(m, Current{1.0}, 0.5, 0.5, 0.0),
               InvalidArgument);
  EXPECT_THROW(checkerboard_power_map(m, Current{1.0}, 0, 2.0),
               InvalidArgument);
  EXPECT_THROW(checkerboard_power_map(m, Current{1.0}, 2, 0.5),
               InvalidArgument);
}

TEST(LoadTransient, StepProfile) {
  const SourceFn f = step_load(100.0_A, 400.0_A, Seconds{1e-6},
                               Seconds{100e-9});
  EXPECT_DOUBLE_EQ(f(0.0), 100.0);
  EXPECT_DOUBLE_EQ(f(1e-6), 100.0);
  EXPECT_NEAR(f(1.05e-6), 300.0, 1e-9);  // halfway up the ramp
  EXPECT_DOUBLE_EQ(f(2e-6), 500.0);
}

TEST(LoadTransient, InstantStep) {
  const SourceFn f = step_load(0.0_A, 10.0_A, Seconds{1e-6}, Seconds{0.0});
  EXPECT_DOUBLE_EQ(f(1e-6), 0.0);
  EXPECT_DOUBLE_EQ(f(1.0000001e-6), 10.0);
}

TEST(LoadTransient, BurstProfile) {
  const SourceFn f =
      burst_load(10.0_A, 100.0_A, Frequency{1e6}, 0.4, Seconds{20e-9});
  // Plateau inside the on-window.
  EXPECT_NEAR(f(0.2e-6), 100.0, 1e-9);
  // Off-window.
  EXPECT_NEAR(f(0.7e-6), 10.0, 1e-9);
  // Periodicity.
  EXPECT_NEAR(f(1.2e-6), 100.0, 1e-9);
  EXPECT_THROW(
      burst_load(1.0_A, 2.0_A, Frequency{1e6}, 0.4, Seconds{300e-9}),
      InvalidArgument);
}

TEST(LoadTransient, BurstAcceptsHalfOnWindowEdge) {
  // Regression: edge == 0.5 * duty / frequency (the degenerate triangular
  // plateau) is the documented boundary and must be accepted, not rejected
  // by an off-by-one-ulp strict comparison.
  const double duty = 0.4;
  const Frequency f{1e6};
  const Seconds half_on{0.5 * duty / f.value};  // 200 ns
  SourceFn burst;
  ASSERT_NO_THROW(burst = burst_load(10.0_A, 100.0_A, f, duty, half_on));
  // Triangular cycle: rises to the peak exactly at the (zero-width)
  // plateau, back to base at the end of the on-window, flat after.
  EXPECT_NEAR(burst(200e-9), 100.0, 1e-9);
  EXPECT_NEAR(burst(400e-9), 10.0, 1e-9);
  EXPECT_NEAR(burst(100e-9), 55.0, 1e-9);  // halfway up the edge
  EXPECT_NEAR(burst(0.7e-6), 10.0, 1e-9);
  // One ulp past the boundary still throws.
  EXPECT_THROW(
      burst_load(10.0_A, 100.0_A, f, duty, Seconds{200.0000001e-9}),
      InvalidArgument);
}

TEST(LoadTransient, RampProfile) {
  const SourceFn f =
      ramp_load(5.0_A, 15.0_A, Seconds{1e-6}, Seconds{3e-6});
  EXPECT_DOUBLE_EQ(f(0.0), 5.0);
  EXPECT_DOUBLE_EQ(f(2e-6), 10.0);
  EXPECT_DOUBLE_EQ(f(5e-6), 15.0);
  EXPECT_THROW(ramp_load(1.0_A, 2.0_A, Seconds{1.0}, Seconds{1.0}),
               InvalidArgument);
}

}  // namespace
}  // namespace vpd
