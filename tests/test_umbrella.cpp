// Compilation test of the umbrella header plus a smoke use of each major
// subsystem through it.
#include "vpd/vpd.hpp"

#include <gtest/gtest.h>

namespace vpd {
namespace {

using namespace vpd::literals;

TEST(Umbrella, EverySubsystemReachable) {
  // common
  EXPECT_NEAR((2.0_A * 3.0_Ohm).value, 6.0, 1e-12);
  // circuit
  Netlist nl;
  const NodeId a = nl.add_node("a");
  nl.add_vsource("V", a, kGround, 1.0_V);
  nl.add_resistor("R", a, kGround, 2.0_Ohm);
  EXPECT_NEAR(solve_dc(nl).current("R").value, 0.5, 1e-9);
  // devices / passives
  EXPECT_GT(gan_technology().figure_of_merit(), 0.0);
  EXPECT_GT(
      Inductor(embedded_package_inductor_technology(), 1.0_uH, 5.0_A)
          .dcr()
          .value,
      0.0);
  // converters
  EXPECT_NEAR(dpmih_converter()->efficiency(30.0_A), 0.909, 1e-6);
  // package
  EXPECT_EQ(table_one().size(), 5u);
  // arch / core
  EXPECT_EQ(all_architectures().size(), 5u);
  EXPECT_NEAR(paper_system().die_current().value, 1000.0, 1e-9);
  // thermal / workload
  const GridMesh m(10.0_mm, 10.0_mm, 5, 5, 1e-3);
  EXPECT_NEAR(map_total(uniform_power_map(m, 10.0_A)).value, 10.0, 1e-9);
}

}  // namespace
}  // namespace vpd
