#include "vpd/circuit/mna.hpp"

#include <gtest/gtest.h>

#include "vpd/common/error.hpp"

namespace vpd {
namespace {

using namespace vpd::literals;

Netlist voltage_divider() {
  Netlist nl;
  const NodeId in = nl.add_node("in");
  const NodeId mid = nl.add_node("mid");
  nl.add_vsource("V1", in, kGround, 10.0_V);
  nl.add_resistor("R1", in, mid, 1.0_Ohm);
  nl.add_resistor("R2", mid, kGround, 1.0_Ohm);
  return nl;
}

TEST(MnaLayout, CountsUnknowns) {
  const Netlist nl = voltage_divider();
  const MnaLayout layout(nl);
  // 2 node voltages + 1 vsource branch current.
  EXPECT_EQ(layout.node_unknowns(), 2u);
  EXPECT_EQ(layout.unknown_count(), 3u);
}

TEST(MnaLayout, InductorsGetBranchRows) {
  Netlist nl;
  const NodeId a = nl.add_node("a");
  const NodeId b = nl.add_node("b");
  nl.add_vsource("V1", a, kGround, 1.0_V);
  const ElementId l = nl.add_inductor("L1", a, b, 1.0_uH);
  nl.add_resistor("R1", b, kGround, 1.0_Ohm);
  const MnaLayout layout(nl);
  EXPECT_EQ(layout.unknown_count(), 4u);  // 2 nodes + V + L
  EXPECT_TRUE(layout.has_branch(l));
  EXPECT_FALSE(layout.has_branch(nl.element_id("R1")));
  EXPECT_EQ(layout.branch_row(l), 3u);
  EXPECT_THROW(layout.branch_row(nl.element_id("R1")), InvalidArgument);
}

TEST(MnaLayout, GroundHasNoRow) {
  const Netlist nl = voltage_divider();
  const MnaLayout layout(nl);
  EXPECT_EQ(layout.node_row(kGround), MnaLayout::kNoRow);
  EXPECT_EQ(layout.node_row(1), 0u);
  EXPECT_EQ(layout.node_row(2), 1u);
}

TEST(MnaStamper, ConductanceStampIsSymmetric) {
  const Netlist nl = voltage_divider();
  const MnaLayout layout(nl);
  MnaStamper s(layout);
  s.stamp_conductance(1, 2, 0.5);
  const Matrix& a = s.matrix();
  EXPECT_DOUBLE_EQ(a(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(a(1, 1), 0.5);
  EXPECT_DOUBLE_EQ(a(0, 1), -0.5);
  EXPECT_DOUBLE_EQ(a(1, 0), -0.5);
}

TEST(MnaStamper, GroundedConductanceOnlyTouchesDiagonal) {
  const Netlist nl = voltage_divider();
  const MnaLayout layout(nl);
  MnaStamper s(layout);
  s.stamp_conductance(2, kGround, 2.0);
  EXPECT_DOUBLE_EQ(s.matrix()(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(s.matrix()(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(s.matrix()(0, 1), 0.0);
}

TEST(MnaStamper, CurrentInjectionSigns) {
  const Netlist nl = voltage_divider();
  const MnaLayout layout(nl);
  MnaStamper s(layout);
  s.stamp_current_injection(/*from=*/1, /*to=*/2, 3.0);
  EXPECT_DOUBLE_EQ(s.rhs()[0], -3.0);
  EXPECT_DOUBLE_EQ(s.rhs()[1], 3.0);
  // Injection from ground only touches the non-ground side.
  MnaStamper s2(layout);
  s2.stamp_current_injection(kGround, 1, 2.0);
  EXPECT_DOUBLE_EQ(s2.rhs()[0], 2.0);
}

TEST(MnaStamper, VoltageSourceStamp) {
  const Netlist nl = voltage_divider();
  const MnaLayout layout(nl);
  MnaStamper s(layout);
  s.stamp_voltage_source(2, /*pos=*/1, /*neg=*/kGround, 10.0);
  EXPECT_DOUBLE_EQ(s.matrix()(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(s.matrix()(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(s.rhs()[2], 10.0);
}

TEST(MnaStamper, GminOnlyOnNodeRows) {
  const Netlist nl = voltage_divider();
  const MnaLayout layout(nl);
  MnaStamper s(layout);
  s.stamp_gmin(1e-9);
  EXPECT_DOUBLE_EQ(s.matrix()(0, 0), 1e-9);
  EXPECT_DOUBLE_EQ(s.matrix()(1, 1), 1e-9);
  EXPECT_DOUBLE_EQ(s.matrix()(2, 2), 0.0);  // branch row untouched
}

TEST(SwitchHelpers, InitialStatesAndResistance) {
  Netlist nl;
  const NodeId a = nl.add_node("a");
  nl.add_switch("S1", a, kGround, Resistance{0.01}, Resistance{1e6}, true);
  nl.add_switch("S2", a, kGround, Resistance{0.02}, Resistance{1e7}, false);
  const SwitchStates states = initial_switch_states(nl);
  ASSERT_EQ(states.size(), 2u);
  EXPECT_TRUE(states[0]);
  EXPECT_FALSE(states[1]);
  const Element& s1 = nl.element(nl.element_id("S1"));
  EXPECT_DOUBLE_EQ(switch_resistance(s1, true), 0.01);
  EXPECT_DOUBLE_EQ(switch_resistance(s1, false), 1e6);
  const Element& r = nl.element(nl.element_id("S2"));
  EXPECT_DOUBLE_EQ(switch_resistance(r, false), 1e7);
}

TEST(SwitchHelpers, ResistanceRejectsNonSwitch) {
  Netlist nl;
  const NodeId a = nl.add_node("a");
  nl.add_resistor("R1", a, kGround, 1.0_Ohm);
  EXPECT_THROW(switch_resistance(nl.element(0), true), InvalidArgument);
}

}  // namespace
}  // namespace vpd
