#include <gtest/gtest.h>

#include "vpd/common/error.hpp"
#include "vpd/core/advisor.hpp"
#include "vpd/core/explorer.hpp"

namespace vpd {
namespace {

EvaluationOptions paper_mode() {
  EvaluationOptions o;
  o.below_die_area_fraction = 1.6;
  return o;
}

TEST(Explorer, CoversFullDesignSpace) {
  const ArchitectureExplorer ex(paper_system(), paper_mode());
  const ExplorationResult result = ex.explore();
  // A0 once + 4 VPD architectures x 3 topologies.
  EXPECT_EQ(result.entries.size(), 13u);
}

TEST(Explorer, A0HasNoTopology) {
  const ArchitectureExplorer ex(paper_system(), paper_mode());
  const auto entry =
      ex.evaluate(ArchitectureKind::kA0_PcbConversion, std::nullopt);
  ASSERT_FALSE(entry.excluded());
  EXPECT_FALSE(entry.topology.has_value());
}

TEST(Explorer, SingleStageDicksonExcludedLikePaper) {
  const ArchitectureExplorer ex(paper_system(), paper_mode());
  const ExplorationResult result = ex.explore();
  for (ArchitectureKind arch : {ArchitectureKind::kA1_InterposerPeriphery,
                                ArchitectureKind::kA2_InterposerBelowDie}) {
    const auto& entry = result.find(arch, TopologyKind::kDickson);
    EXPECT_TRUE(entry.excluded()) << to_string(arch);
    EXPECT_TRUE(entry.extrapolated.has_value()) << to_string(arch);
    EXPECT_FALSE(entry.exclusion_reason.empty()) << to_string(arch);
  }
}

TEST(Explorer, DschIncludedEverywhere) {
  const ArchitectureExplorer ex(paper_system(), paper_mode());
  const ExplorationResult result = ex.explore();
  for (ArchitectureKind arch : all_architectures()) {
    if (arch == ArchitectureKind::kA0_PcbConversion) continue;
    const auto& entry = result.find(arch, TopologyKind::kDsch);
    EXPECT_FALSE(entry.excluded()) << to_string(arch);
  }
}

TEST(Explorer, FindThrowsOnMissingEntry) {
  const ArchitectureExplorer ex(paper_system(), paper_mode());
  ExplorationResult result;
  result.spec = paper_system();
  EXPECT_THROW(result.find(ArchitectureKind::kA0_PcbConversion),
               InvalidArgument);
}

TEST(Explorer, VpdRequiresTopology) {
  const ArchitectureExplorer ex(paper_system(), paper_mode());
  EXPECT_THROW(
      ex.evaluate(ArchitectureKind::kA1_InterposerPeriphery, std::nullopt),
      InvalidArgument);
}

TEST(Advisor, RankingIsSortedAndBeatsA0) {
  const ArchitectureExplorer ex(paper_system(), paper_mode());
  const auto result = ex.explore();
  const auto ranked = rank_architectures(result);
  ASSERT_GE(ranked.size(), 5u);
  for (std::size_t i = 1; i < ranked.size(); ++i)
    EXPECT_LE(ranked[i - 1].loss_fraction, ranked[i].loss_fraction);
  // A0 is never the winner.
  EXPECT_NE(ranked.front().architecture,
            ArchitectureKind::kA0_PcbConversion);
  // The worst feasible option is A0 or a two-stage variant.
  EXPECT_GT(ranked.back().loss_fraction, 0.25);
}

TEST(Advisor, RecommendPicksBestFeasible) {
  const ArchitectureExplorer ex(paper_system(), paper_mode());
  const auto result = ex.explore();
  const Recommendation best = recommend(result);
  // A2 with DSCH wins in our model: shortest 1 V path, densest VRs.
  EXPECT_EQ(best.architecture, ArchitectureKind::kA2_InterposerBelowDie);
  EXPECT_EQ(best.topology, TopologyKind::kDsch);
  EXPECT_LT(best.loss_fraction, 0.15);
  EXPECT_FALSE(best.rationale.empty());
}

TEST(Advisor, PowerSweepShowsRisingLossShare) {
  // At higher power the fixed interconnect increasingly hurts: loss
  // fraction grows with delivered power for a fixed design.
  const auto points = sweep_power(
      paper_system(), ArchitectureKind::kA1_InterposerPeriphery,
      TopologyKind::kDsch, {400.0, 700.0, 1000.0}, paper_mode());
  ASSERT_EQ(points.size(), 3u);
  EXPECT_LT(points[0].loss_fraction, points[2].loss_fraction);
}

TEST(Advisor, SheetSweepMonotonic) {
  const auto points = sweep_sheet_resistance(
      paper_system(), ArchitectureKind::kA1_InterposerPeriphery,
      TopologyKind::kDsch, {0.5e-3, 2e-3, 8e-3}, paper_mode());
  ASSERT_EQ(points.size(), 3u);
  EXPECT_LT(points[0].loss_fraction, points[1].loss_fraction);
  EXPECT_LT(points[1].loss_fraction, points[2].loss_fraction);
}

TEST(Advisor, SweepValidation) {
  EXPECT_THROW(sweep_power(paper_system(),
                           ArchitectureKind::kA1_InterposerPeriphery,
                           TopologyKind::kDsch, {}),
               InvalidArgument);
}

}  // namespace
}  // namespace vpd
