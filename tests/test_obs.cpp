// Observability layer: the instrument registry under concurrency, the
// canonical telemetry JSON shape, trace spans (off-by-default, explicit
// parent context, Chrome trace-event / NDJSON serialization), per-request
// stage timing capture, and — the contract everything else rests on —
// that tracing never perturbs numerical results: the default evaluation
// grid is bit-identical with tracing on and off.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "vpd/core/explorer.hpp"
#include "vpd/io/json.hpp"
#include "vpd/io/schema.hpp"
#include "vpd/obs/registry.hpp"
#include "vpd/obs/trace.hpp"
#include "vpd/serve/service.hpp"

namespace vpd {
namespace {

/// Restores the process-wide tracing switch (and clears the buffer) when
/// a test scope ends, so tests cannot leak tracing state into each other.
class TracingGuard {
 public:
  TracingGuard() : was_enabled_(obs::tracing_enabled()) {}
  ~TracingGuard() {
    obs::set_tracing_enabled(was_enabled_);
    obs::clear_trace();
  }

 private:
  bool was_enabled_;
};

// --- Registry and instruments ----------------------------------------------

TEST(ObsRegistry, FindOrCreateReturnsStableReferences) {
  obs::Registry registry;
  obs::Counter& a = registry.counter("x");
  obs::Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);

  obs::Gauge& g = registry.gauge("depth");
  g.set(4.0);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.high_water(), 4.0);

  // First registration wins the bounds.
  obs::Histogram& h = registry.histogram("h", {1.0, 2.0});
  obs::Histogram& h2 = registry.histogram("h", {5.0});
  EXPECT_EQ(&h, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(ObsRegistry, ConcurrentUpdatesLoseNothing) {
  obs::Registry registry;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 20000;

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Mix of pre-registered and find-or-create-on-the-fly instruments,
      // so registration races with updates.
      obs::Counter& events = registry.counter("events");
      obs::Histogram& latency = registry.latency_histogram("latency");
      obs::Gauge& depth = registry.gauge("depth");
      for (std::size_t i = 0; i < kPerThread; ++i) {
        events.add();
        registry.counter("events_by_name").add();
        latency.record(1e-4 * double(t + 1));
        depth.set(double(t));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const obs::Snapshot snapshot = registry.snapshot();
  ASSERT_NE(snapshot.counter("events"), nullptr);
  EXPECT_EQ(*snapshot.counter("events"), kThreads * kPerThread);
  ASSERT_NE(snapshot.counter("events_by_name"), nullptr);
  EXPECT_EQ(*snapshot.counter("events_by_name"), kThreads * kPerThread);

  const obs::HistogramData* latency = snapshot.histogram("latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(latency->min, 1e-4);
  EXPECT_DOUBLE_EQ(latency->max, 1e-4 * kThreads);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t c : latency->counts) bucket_total += c;
  EXPECT_EQ(bucket_total, latency->count);

  const auto* depth = snapshot.gauge("depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_DOUBLE_EQ(depth->second, double(kThreads - 1));  // high water
}

TEST(ObsHistogram, DataStatisticsAndQuantiles) {
  obs::HistogramData h({1.0, 10.0, 100.0});
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);

  for (double v : {0.5, 2.0, 3.0, 5.0, 50.0, 500.0}) h.record(v);
  EXPECT_EQ(h.count, 6u);
  EXPECT_DOUBLE_EQ(h.min, 0.5);
  EXPECT_DOUBLE_EQ(h.max, 500.0);
  EXPECT_NEAR(h.mean(), 560.5 / 6.0, 1e-12);
  // Overflow bucket caught the out-of-range sample.
  ASSERT_EQ(h.counts.size(), 4u);
  EXPECT_EQ(h.counts[3], 1u);
  // Quantiles are bucket-interpolated but clamped to the observed range.
  EXPECT_GE(h.quantile(0.0), h.min);
  EXPECT_LE(h.quantile(1.0), h.max);
  EXPECT_GT(h.quantile(0.9), h.quantile(0.1));
}

TEST(ObsSnapshot, JsonShapeIsCanonical) {
  obs::Registry registry;
  registry.counter("requests").add(7);
  registry.gauge("queue").set(3.0);
  obs::Histogram& h = registry.histogram("lat", {0.1, 1.0});
  h.record(0.05);
  h.record(5.0);

  const io::Value v = registry.snapshot().to_json();
  EXPECT_EQ(v.at("schema_version").as_number(),
            double(obs::kTelemetrySchemaVersion));
  EXPECT_EQ(v.at("counters").at("requests").as_number(), 7.0);
  EXPECT_EQ(v.at("gauges").at("queue").at("value").as_number(), 3.0);
  EXPECT_EQ(v.at("gauges").at("queue").at("high_water").as_number(), 3.0);
  const io::Value& hist = v.at("histograms").at("lat");
  EXPECT_EQ(hist.at("count").as_number(), 2.0);
  ASSERT_EQ(hist.at("buckets").as_array().size(), 3u);
  EXPECT_EQ(hist.at("buckets").as_array()[0].at("le").as_number(), 0.1);
  // The overflow bucket's bound serializes as null.
  EXPECT_TRUE(hist.at("buckets").as_array()[2].at("le").is_null());
  EXPECT_EQ(hist.at("buckets").as_array()[2].at("count").as_number(), 1.0);

  // Round trip through the parser: shape survives dump/parse.
  const io::Value parsed = io::parse(io::dump(v));
  EXPECT_EQ(parsed.at("counters").at("requests").as_number(), 7.0);
}

TEST(ObsSnapshot, OverlayOverwritesSameNames) {
  obs::Snapshot a;
  a.set_counter("x", 1);
  a.set_counter("y", 2);
  obs::Snapshot b;
  b.set_counter("x", 10);
  b.set_gauge("g", 1.0, 2.0);
  a.overlay(b);
  EXPECT_EQ(*a.counter("x"), 10u);
  EXPECT_EQ(*a.counter("y"), 2u);
  ASSERT_NE(a.gauge("g"), nullptr);
  EXPECT_DOUBLE_EQ(a.gauge("g")->first, 1.0);
}

TEST(ObsSnapshot, MergeSumsCountersAcrossPeers) {
  obs::Snapshot a;
  a.set_counter("serve.requests", 7);
  a.set_counter("only_a", 3);
  obs::Snapshot b;
  b.set_counter("serve.requests", 5);
  b.set_counter("only_b", 11);
  a.merge(b);
  EXPECT_EQ(*a.counter("serve.requests"), 12u);
  EXPECT_EQ(*a.counter("only_a"), 3u);
  EXPECT_EQ(*a.counter("only_b"), 11u);
}

TEST(ObsSnapshot, MergeTakesGaugeMaxAndHighWaterMax) {
  obs::Snapshot a;
  a.set_gauge("serve.queue_depth", 2.0, 9.0);
  obs::Snapshot b;
  b.set_gauge("serve.queue_depth", 5.0, 6.0);
  b.set_gauge("only_b", 1.0, 1.5);
  a.merge(b);
  ASSERT_NE(a.gauge("serve.queue_depth"), nullptr);
  EXPECT_DOUBLE_EQ(a.gauge("serve.queue_depth")->first, 5.0);
  EXPECT_DOUBLE_EQ(a.gauge("serve.queue_depth")->second, 9.0);
  ASSERT_NE(a.gauge("only_b"), nullptr);
  EXPECT_DOUBLE_EQ(a.gauge("only_b")->first, 1.0);
}

TEST(ObsSnapshot, MergeAddsHistogramsBucketwise) {
  obs::HistogramData left({0.1, 1.0});
  left.record(0.05);
  left.record(0.5);
  obs::HistogramData right({0.1, 1.0});
  right.record(0.5);
  right.record(5.0);

  obs::Snapshot a;
  a.set_histogram("lat", left);
  obs::Snapshot b;
  b.set_histogram("lat", right);
  a.merge(b);

  const obs::HistogramData* merged = a.histogram("lat");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->count, 4u);
  EXPECT_DOUBLE_EQ(merged->sum, 6.05);
  EXPECT_DOUBLE_EQ(merged->min, 0.05);
  EXPECT_DOUBLE_EQ(merged->max, 5.0);
  // Exact bucket-wise addition: [<=0.1, <=1.0, overflow] = [1+0, 1+1, 0+1].
  ASSERT_EQ(merged->counts.size(), 3u);
  EXPECT_EQ(merged->counts[0], 1u);
  EXPECT_EQ(merged->counts[1], 2u);
  EXPECT_EQ(merged->counts[2], 1u);
}

TEST(ObsSnapshot, MergeWithEmptySideKeepsOtherSidesRange) {
  obs::HistogramData samples({1.0});
  samples.record(0.25);
  obs::Snapshot a;
  a.set_histogram("lat", obs::HistogramData({1.0}));  // no samples
  obs::Snapshot b;
  b.set_histogram("lat", samples);
  a.merge(b);
  const obs::HistogramData* merged = a.histogram("lat");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->count, 1u);
  EXPECT_DOUBLE_EQ(merged->min, 0.25);
  EXPECT_DOUBLE_EQ(merged->max, 0.25);
}

TEST(ObsSnapshot, MergeRejectsMismatchedHistogramBounds) {
  obs::Snapshot a;
  a.set_histogram("lat", obs::HistogramData({0.1, 1.0}));
  obs::Snapshot b;
  b.set_histogram("lat", obs::HistogramData({0.5, 2.0}));
  EXPECT_THROW(a.merge(b), InvalidArgument);
}

TEST(ObsSnapshot, FromJsonRoundTripsThroughTheWireShape) {
  obs::Snapshot s;
  s.set_counter("serve.requests", 42);
  s.set_gauge("serve.queue_depth", 3.0, 8.0);
  obs::HistogramData h({0.1, 1.0});
  h.record(0.05);
  h.record(0.7);
  h.record(9.0);
  s.set_histogram("serve.latency_seconds", h);

  const obs::Snapshot parsed =
      obs::snapshot_from_json(io::parse(io::dump(s.to_json())));
  EXPECT_EQ(*parsed.counter("serve.requests"), 42u);
  ASSERT_NE(parsed.gauge("serve.queue_depth"), nullptr);
  EXPECT_DOUBLE_EQ(parsed.gauge("serve.queue_depth")->second, 8.0);
  const obs::HistogramData* hist =
      parsed.histogram("serve.latency_seconds");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 3u);
  EXPECT_EQ(hist->counts, h.counts);
  EXPECT_EQ(hist->bounds, h.bounds);
  EXPECT_DOUBLE_EQ(hist->sum, h.sum);
  // Round-tripped snapshots serialize identically (derived quantiles are
  // recomputed from the same buckets).
  EXPECT_EQ(io::dump(parsed.to_json()), io::dump(s.to_json()));
}

TEST(ObsSnapshot, FromJsonRejectsSchemaVersionMismatch) {
  obs::Snapshot s;
  s.set_counter("x", 1);
  io::Value wrong_version = s.to_json();
  wrong_version.set("schema_version", obs::kTelemetrySchemaVersion + 1);
  EXPECT_THROW(obs::snapshot_from_json(wrong_version), InvalidArgument);

  io::Value missing = s.to_json();
  io::Value stripped = io::Value::object();
  for (const auto& [key, value] : missing.as_object()) {
    if (key != "schema_version") stripped.set(key, value);
  }
  EXPECT_THROW(obs::snapshot_from_json(stripped), InvalidArgument);
}

// --- Trace spans ------------------------------------------------------------

TEST(ObsTrace, DisabledSpansRecordNothing) {
  TracingGuard guard;
  obs::set_tracing_enabled(false);
  obs::clear_trace();
  {
    obs::Span span("idle");
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.context().span_id, 0u);
    span.set_arg("ignored", 1.0);
  }
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST(ObsTrace, SpansNestThroughExplicitContext) {
  TracingGuard guard;
  obs::set_tracing_enabled(true);
  obs::clear_trace();
  {
    obs::Span parent("outer");
    ASSERT_TRUE(parent.active());
    EXPECT_NE(parent.context().span_id, 0u);
    obs::Span child("inner", parent.context());
    child.set_arg("n", 42.0);
  }
  EXPECT_EQ(obs::trace_event_count(), 2u);

  const io::Value doc = obs::chrome_trace_json();
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  // Destruction order: the child ("inner") finishes first.
  const io::Value& inner = events[0];
  const io::Value& outer = events[1];
  EXPECT_EQ(inner.at("name").as_string(), "inner");
  EXPECT_EQ(outer.at("name").as_string(), "outer");
  EXPECT_EQ(inner.at("ph").as_string(), "X");
  EXPECT_EQ(inner.at("args").at("parent_span_id").as_number(),
            outer.at("args").at("span_id").as_number());
  EXPECT_EQ(outer.at("args").find("parent_span_id"), nullptr);
  EXPECT_EQ(inner.at("args").at("n").as_number(), 42.0);
  EXPECT_GE(inner.at("ts").as_number(), 0.0);
  EXPECT_GE(inner.at("dur").as_number(), 0.0);
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
}

TEST(ObsTrace, RecordSpanAndNdjson) {
  TracingGuard guard;
  obs::set_tracing_enabled(true);
  obs::clear_trace();
  const auto start = std::chrono::steady_clock::now();
  obs::record_span("external", obs::TraceContext{},
                   start, start + std::chrono::milliseconds(5));
  EXPECT_EQ(obs::trace_event_count(), 1u);

  const std::string ndjson = obs::trace_ndjson();
  // One line per event, each independently parseable.
  ASSERT_FALSE(ndjson.empty());
  const std::string line = ndjson.substr(0, ndjson.find('\n'));
  const io::Value event = io::parse(line);
  EXPECT_EQ(event.at("name").as_string(), "external");
  EXPECT_NEAR(event.at("dur").as_number(), 5000.0, 500.0);  // microseconds

  obs::clear_trace();
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

// --- Stage timings ----------------------------------------------------------

TEST(ObsStageTimings, TimersAddIntoTheInstalledTarget) {
  obs::StageTimings timings;
  EXPECT_EQ(obs::ScopedStageCapture::current(), nullptr);
  {
    obs::ScopedStageCapture capture(&timings);
    EXPECT_EQ(obs::ScopedStageCapture::current(), &timings);
    { obs::StageTimer timer(obs::Stage::kMesh); }
    { obs::StageTimer timer(obs::Stage::kSolve); }
    {
      // Nested capture redirects, then restores.
      obs::StageTimings inner;
      obs::ScopedStageCapture nested(&inner);
      { obs::StageTimer timer(obs::Stage::kSolve); }
      EXPECT_GE(inner.solve_seconds, 0.0);
      EXPECT_EQ(obs::ScopedStageCapture::current(), &inner);
    }
    EXPECT_EQ(obs::ScopedStageCapture::current(), &timings);
  }
  EXPECT_EQ(obs::ScopedStageCapture::current(), nullptr);
  EXPECT_GE(timings.mesh_seconds, 0.0);
  EXPECT_GE(timings.solve_seconds, 0.0);
  // With no capture installed a StageTimer is inert.
  { obs::StageTimer timer(obs::Stage::kMesh); }
}

TEST(ObsStageTimings, EvaluationFillsMeshAndSolveStages) {
  obs::StageTimings timings;
  {
    obs::ScopedStageCapture capture(&timings);
    const PowerDeliverySpec spec = paper_system();
    (void)evaluate_architecture(ArchitectureKind::kA2_InterposerBelowDie,
                                spec, TopologyKind::kDsch,
                                DeviceTechnology::kGalliumNitride);
  }
  // A fresh evaluation assembles a mesh and runs CG: both stages saw time.
  EXPECT_GT(timings.mesh_seconds, 0.0);
  EXPECT_GT(timings.solve_seconds, 0.0);
}

// --- The determinism contract ----------------------------------------------

TEST(ObsTrace, TracingOnAndOffAreBitIdentical) {
  TracingGuard guard;
  const PowerDeliverySpec spec = paper_system();
  const ArchitectureKind grid[] = {
      ArchitectureKind::kA1_InterposerPeriphery,
      ArchitectureKind::kA2_InterposerBelowDie,
      ArchitectureKind::kA3_TwoStage12V,
      ArchitectureKind::kA3_TwoStage6V,
  };

  const auto run_grid = [&] {
    std::vector<std::string> dumps;
    for (ArchitectureKind arch : grid) {
      const ExplorationEntry entry = evaluate_with_exclusion(
          spec, arch, TopologyKind::kDsch,
          DeviceTechnology::kGalliumNitride, EvaluationOptions{});
      dumps.push_back(io::dump(io::to_json(entry)));
    }
    return dumps;
  };

  obs::set_tracing_enabled(false);
  const std::vector<std::string> off = run_grid();
  obs::set_tracing_enabled(true);
  obs::clear_trace();
  const std::vector<std::string> on = run_grid();
  EXPECT_GT(obs::trace_event_count(), 0u)
      << "tracing-on run should have recorded spans";

  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i], on[i]) << "architecture index " << i;
  }
}

// --- Service integration ----------------------------------------------------

io::EvaluationRequest default_request() {
  io::EvaluationRequest request;
  request.architecture = ArchitectureKind::kA2_InterposerBelowDie;
  request.topology = TopologyKind::kDsch;
  return request;
}

TEST(ObsService, ResponsesCarryStageTimings) {
  serve::ServiceConfig config;
  config.threads = 2;
  serve::EvaluationService service(std::move(config));
  const serve::ServiceResponse evaluated = service.evaluate(default_request());
  ASSERT_EQ(evaluated.status, serve::ResponseStatus::kOk);
  EXPECT_FALSE(evaluated.from_cache);
  EXPECT_GT(evaluated.timings.evaluate_seconds, 0.0);
  EXPECT_GT(evaluated.timings.mesh_seconds, 0.0);
  EXPECT_GT(evaluated.timings.solve_seconds, 0.0);
  EXPECT_GE(evaluated.timings.queue_seconds, 0.0);
  // evaluate ⊇ mesh + solve: stages are sub-intervals of the evaluator run.
  EXPECT_GE(evaluated.timings.evaluate_seconds,
            evaluated.timings.mesh_seconds + evaluated.timings.solve_seconds);

  // A cache hit evaluated nothing, so its timings are all zero.
  const serve::ServiceResponse cached = service.evaluate(default_request());
  EXPECT_TRUE(cached.from_cache);
  EXPECT_EQ(cached.timings.evaluate_seconds, 0.0);
  EXPECT_EQ(cached.timings.mesh_seconds, 0.0);

  // The wire form carries the breakdown (and times its own serialization).
  const io::Value body = serve::to_json(evaluated);
  EXPECT_EQ(body.at("schema_version").as_number(), double(io::kSchemaVersion));
  EXPECT_GT(body.at("timings").at("evaluate_seconds").as_number(), 0.0);
  EXPECT_GE(body.at("timings").at("serialize_seconds").as_number(), 0.0);
}

TEST(ObsService, MetricsCarryTheUnifiedShapeOnly) {
  serve::ServiceConfig config;
  config.threads = 2;
  serve::EvaluationService service(std::move(config));
  (void)service.evaluate(default_request());
  (void)service.evaluate(default_request());  // result-cache hit

  const serve::ServiceMetrics metrics = service.metrics();
  const obs::Snapshot& snapshot = metrics.observability;
  ASSERT_NE(snapshot.counter("serve.requests"), nullptr);
  EXPECT_EQ(*snapshot.counter("serve.requests"), 2u);
  ASSERT_NE(snapshot.counter("serve.evaluated"), nullptr);
  EXPECT_EQ(*snapshot.counter("serve.evaluated"), 1u);
  ASSERT_NE(snapshot.counter("serve.result_cache_hits"), nullptr);
  EXPECT_EQ(*snapshot.counter("serve.result_cache_hits"), 1u);
  ASSERT_NE(snapshot.counter("mesh_cache.misses"), nullptr);
  ASSERT_NE(snapshot.counter("solver.cg_solves"), nullptr);

  // Queue-depth is both a gauge (with high water) and a distribution —
  // the point-in-time-only depth of the old shape is the fixed gap.
  const auto* depth = snapshot.gauge("serve.queue_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_DOUBLE_EQ(depth->first, 0.0);  // idle now
  EXPECT_GE(depth->second, 1.0);        // but at least one request was queued
  const obs::HistogramData* depth_hist =
      snapshot.histogram("serve.queue_depth");
  ASSERT_NE(depth_hist, nullptr);
  EXPECT_GE(depth_hist->count, 1u);

  const obs::HistogramData* latency =
      snapshot.histogram("serve.latency_seconds");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, 2u);
  ASSERT_NE(snapshot.histogram("serve.stage.solve_seconds"), nullptr);
  EXPECT_EQ(snapshot.histogram("serve.stage.solve_seconds")->count, 1u);

  // One JSON document, one vocabulary: the unified telemetry shape.
  // The pre-v2 flat aliases were removed with the batch-first API
  // (docs/observability.md).
  const io::Value v = serve::to_json(metrics);
  EXPECT_EQ(v.at("schema_version").as_number(), double(io::kSchemaVersion));
  EXPECT_EQ(v.at("counters").at("serve.requests").as_number(), 2.0);
  EXPECT_EQ(v.at("counters").at("serve.result_cache_hits").as_number(), 1.0);
  EXPECT_GE(v.at("counters").at("mesh_cache.misses").as_number(), 1.0);
  EXPECT_GE(v.at("histograms")
                .at("serve.latency_seconds")
                .at("p99")
                .as_number(),
            0.0);
  EXPECT_EQ(v.find("requests"), nullptr);
  EXPECT_EQ(v.find("result_cache_hits"), nullptr);
  EXPECT_EQ(v.find("mesh_cache"), nullptr);
  EXPECT_EQ(v.find("latency"), nullptr);
  EXPECT_EQ(v.find("solver"), nullptr);
}

TEST(ObsService, SlowRequestLogFiresThroughTheSink) {
  std::vector<std::string> lines;
  std::mutex lines_mutex;
  serve::ServiceConfig config;
  config.threads = 2;
  config.slow_request_seconds = 1e-9;  // everything is slow
  config.slow_request_sink = [&](const std::string& line) {
    const std::lock_guard<std::mutex> lock(lines_mutex);
    lines.push_back(line);
  };
  serve::EvaluationService service(std::move(config));
  (void)service.evaluate(default_request());
  (void)service.evaluate(default_request());  // cache hit: not logged

  EXPECT_EQ(service.metrics().slow_requests, 1u);
  ASSERT_EQ(lines.size(), 1u);
  const io::Value line = io::parse(lines.front());
  EXPECT_NE(line.find("slow_request"), nullptr);
  EXPECT_GT(line.at("seconds").as_number(), 0.0);
  EXPECT_GT(line.at("evaluate_seconds").as_number(), 0.0);
}

}  // namespace
}  // namespace vpd
