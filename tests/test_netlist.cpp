#include "vpd/circuit/netlist.hpp"

#include <gtest/gtest.h>

#include "vpd/common/error.hpp"

namespace vpd {
namespace {

using namespace vpd::literals;

TEST(Netlist, GroundIsNodeZero) {
  Netlist nl;
  EXPECT_EQ(nl.node_count(), 1u);
  EXPECT_EQ(nl.node("gnd"), kGround);
  EXPECT_EQ(nl.node("0"), kGround);
  EXPECT_EQ(nl.node_name(kGround), "gnd");
}

TEST(Netlist, AddAndLookupNodes) {
  Netlist nl;
  const NodeId a = nl.add_node("in");
  const NodeId b = nl.add_node("out");
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(nl.node("in"), a);
  EXPECT_EQ(nl.node_name(b), "out");
  EXPECT_THROW(nl.node("missing"), InvalidArgument);
  EXPECT_THROW(nl.add_node("in"), InvalidArgument);
  EXPECT_THROW(nl.add_node(""), InvalidArgument);
}

TEST(Netlist, AddElements) {
  Netlist nl;
  const NodeId in = nl.add_node("in");
  const NodeId out = nl.add_node("out");
  const ElementId r = nl.add_resistor("R1", in, out, 1.0_Ohm);
  const ElementId c = nl.add_capacitor("C1", out, kGround, 1.0_uF);
  const ElementId l = nl.add_inductor("L1", in, out, 1.0_uH);
  const ElementId v = nl.add_vsource("V1", in, kGround, 5.0_V);
  const ElementId i = nl.add_isource("I1", out, kGround, 1.0_A);
  const ElementId s = nl.add_switch("S1", in, out);
  EXPECT_EQ(nl.element_count(), 6u);
  EXPECT_EQ(nl.element(r).kind, ElementKind::kResistor);
  EXPECT_EQ(nl.element(c).kind, ElementKind::kCapacitor);
  EXPECT_EQ(nl.element(l).kind, ElementKind::kInductor);
  EXPECT_EQ(nl.element(v).kind, ElementKind::kVoltageSource);
  EXPECT_EQ(nl.element(i).kind, ElementKind::kCurrentSource);
  EXPECT_EQ(nl.element(s).kind, ElementKind::kSwitch);
  EXPECT_EQ(nl.element_id("C1"), c);
  EXPECT_THROW(nl.element_id("nope"), InvalidArgument);
}

TEST(Netlist, RejectsBadElementValues) {
  Netlist nl;
  const NodeId a = nl.add_node("a");
  EXPECT_THROW(nl.add_resistor("R", a, kGround, 0.0_Ohm), InvalidArgument);
  EXPECT_THROW(nl.add_resistor("R", a, kGround, Resistance{-1.0}),
               InvalidArgument);
  EXPECT_THROW(nl.add_capacitor("C", a, kGround, Capacitance{0.0}),
               InvalidArgument);
  EXPECT_THROW(nl.add_inductor("L", a, kGround, Inductance{-1e-6}),
               InvalidArgument);
  EXPECT_THROW(
      nl.add_switch("S", a, kGround, Resistance{1.0}, Resistance{0.5}),
      InvalidArgument);
}

TEST(Netlist, RejectsSelfLoopAndDuplicateNames) {
  Netlist nl;
  const NodeId a = nl.add_node("a");
  EXPECT_THROW(nl.add_resistor("R", a, a, 1.0_Ohm), InvalidArgument);
  nl.add_resistor("R", a, kGround, 1.0_Ohm);
  EXPECT_THROW(nl.add_resistor("R", a, kGround, 1.0_Ohm), InvalidArgument);
}

TEST(Netlist, TimeVaryingSource) {
  Netlist nl;
  const NodeId a = nl.add_node("a");
  nl.add_vsource("V1", a, kGround, [](double t) { return 2.0 * t; });
  const Element& e = nl.element(nl.element_id("V1"));
  EXPECT_DOUBLE_EQ(e.source(0.0), 0.0);
  EXPECT_DOUBLE_EQ(e.source(3.0), 6.0);
}

TEST(Netlist, SwitchEnumeration) {
  Netlist nl;
  const NodeId a = nl.add_node("a");
  const NodeId b = nl.add_node("b");
  nl.add_resistor("R1", a, b, 1.0_Ohm);
  const ElementId s1 = nl.add_switch("S1", a, b);
  const ElementId s2 = nl.add_switch("S2", b, kGround, Resistance{1e-3},
                                     Resistance{1e9}, true);
  const auto switches = nl.switches();
  ASSERT_EQ(switches.size(), 2u);
  EXPECT_EQ(switches[0], s1);
  EXPECT_EQ(switches[1], s2);
  EXPECT_FALSE(nl.element(s1).initially_closed);
  EXPECT_TRUE(nl.element(s2).initially_closed);
}

TEST(Netlist, ElementsOfKind) {
  Netlist nl;
  const NodeId a = nl.add_node("a");
  nl.add_resistor("R1", a, kGround, 1.0_Ohm);
  nl.add_resistor("R2", a, kGround, 2.0_Ohm);
  nl.add_vsource("V1", a, kGround, 1.0_V);
  EXPECT_EQ(nl.elements_of_kind(ElementKind::kResistor).size(), 2u);
  EXPECT_EQ(nl.elements_of_kind(ElementKind::kVoltageSource).size(), 1u);
  EXPECT_TRUE(nl.elements_of_kind(ElementKind::kInductor).empty());
}

TEST(Netlist, ElementKindNames) {
  EXPECT_STREQ(to_string(ElementKind::kResistor), "resistor");
  EXPECT_STREQ(to_string(ElementKind::kSwitch), "switch");
  EXPECT_STREQ(to_string(ElementKind::kVoltageSource), "vsource");
}

}  // namespace
}  // namespace vpd
