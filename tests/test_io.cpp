// JSON I/O layer: parser/writer conformance, canonical number formatting,
// and the schema round-trip property — serialize→parse→serialize is a
// fixed point for every enum value, the default options, and every fault
// kind — plus malformed-input behaviour (structured errors, never a
// crash).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "vpd/common/error.hpp"
#include "vpd/fault/fault_model.hpp"
#include "vpd/fault/transient_scenario.hpp"
#include "vpd/io/json.hpp"
#include "vpd/io/schema.hpp"
#include "vpd/workload/droop_campaign.hpp"

namespace vpd {
namespace {

using io::Value;

// ---------------------------------------------------------------------------
// Value + writer
// ---------------------------------------------------------------------------

TEST(JsonValue, TypedAccessorsThrowStructuredErrors) {
  const Value v(42.0);
  EXPECT_TRUE(v.is_number());
  EXPECT_EQ(v.as_number(), 42.0);
  EXPECT_THROW(v.as_string(), InvalidArgument);
  EXPECT_THROW(v.as_array(), InvalidArgument);
  EXPECT_THROW(v.as_bool(), InvalidArgument);
  EXPECT_THROW(Value().as_number(), InvalidArgument);
}

TEST(JsonValue, ObjectPreservesInsertionOrderAndOverwritesInPlace) {
  Value v = Value::object();
  v.set("b", 1);
  v.set("a", 2);
  v.set("b", 3);  // overwrite keeps position
  EXPECT_EQ(io::dump(v), "{\"b\":3,\"a\":2}");
  EXPECT_EQ(v.at("b").as_number(), 3.0);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(v.at("missing"), InvalidArgument);
}

TEST(JsonWriter, EscapesStringsAndFormatsContainers) {
  Value v = Value::object();
  v.set("s", "a\"b\\c\n\t\x01");
  Value arr = Value::array();
  arr.push_back(Value());
  arr.push_back(true);
  arr.push_back(false);
  v.set("a", arr);
  EXPECT_EQ(io::dump(v),
            "{\"s\":\"a\\\"b\\\\c\\n\\t\\u0001\",\"a\":[null,true,false]}");
}

TEST(JsonWriter, NumberFormattingIsShortestRoundTrip) {
  EXPECT_EQ(io::dump_number(0.0), "0");
  EXPECT_EQ(io::dump_number(48.0), "48");
  EXPECT_EQ(io::dump_number(-3.0), "-3");
  EXPECT_EQ(io::dump_number(0.1), "0.1");
  EXPECT_EQ(io::dump_number(1e-12), "1e-12");
  EXPECT_THROW(io::dump_number(std::nan("")), InvalidArgument);
  EXPECT_THROW(io::dump_number(INFINITY), InvalidArgument);
  // Bit-exact round trip for awkward doubles.
  for (double x : {1.0 / 3.0, 2e-3, 1e300, 5e-324, 0.07000000000000001,
                   123456789.123456789, -2.2250738585072014e-308}) {
    EXPECT_EQ(std::strtod(io::dump_number(x).c_str(), nullptr), x) << x;
  }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(JsonParser, ParsesScalarsContainersAndEscapes) {
  EXPECT_TRUE(io::parse("null").is_null());
  EXPECT_EQ(io::parse("true").as_bool(), true);
  EXPECT_EQ(io::parse(" -12.5e2 ").as_number(), -1250.0);
  EXPECT_EQ(io::parse("\"h\\u0065y \\uD83D\\uDE00\"").as_string(),
            "hey \xF0\x9F\x98\x80");
  const Value v = io::parse(R"({"a":[1,{"b":"c"}],"d":{}})");
  EXPECT_EQ(v.at("a").as_array()[1].at("b").as_string(), "c");
  EXPECT_EQ(v.at("d").size(), 0u);
}

TEST(JsonParser, DuplicateKeysLastWins) {
  EXPECT_EQ(io::parse(R"({"k":1,"k":2})").at("k").as_number(), 2.0);
}

TEST(JsonParser, RoundTripsItsOwnOutput) {
  const std::string doc =
      R"({"s":"x\n","n":-0.125,"i":42,"a":[1,2,[3]],"o":{"k":null}})";
  const Value parsed = io::parse(doc);
  EXPECT_EQ(io::parse(io::dump(parsed)), parsed);
  EXPECT_EQ(io::parse(io::dump_pretty(parsed)), parsed);
}

TEST(JsonParser, MalformedInputThrowsParseErrorNotCrash) {
  const char* cases[] = {
      "",
      "{",
      "[1,2",
      "{\"a\":}",
      "{\"a\" 1}",
      "{\"a\":1,}",
      "[1,]",
      "tru",
      "nulll",
      "01",
      "1.",
      "1e",
      "+1",
      "-",
      "\"unterminated",
      "\"bad escape \\q\"",
      "\"\\u12g4\"",
      "\"\\uD800\"",       // unpaired high surrogate
      "\"\\uDC00\"",       // unpaired low surrogate
      "\"ctrl \x01\"",
      "{\"a\":1} trailing",
      "1 2",
      "{\"a\":1e999}",     // overflows double
  };
  for (const char* text : cases) {
    EXPECT_THROW(io::parse(text), io::ParseError) << text;
  }
}

TEST(JsonParser, ParseErrorCarriesOffset) {
  try {
    io::parse("[1, fal]");
    FAIL() << "expected ParseError";
  } catch (const io::ParseError& e) {
    EXPECT_EQ(e.offset(), 4u);
    EXPECT_NE(std::string(e.what()).find("byte 4"), std::string::npos);
  }
}

TEST(JsonParser, DeepNestingIsBoundedNotStackOverflow) {
  std::string deep(5000, '[');
  deep += std::string(5000, ']');
  EXPECT_THROW(io::parse(deep), io::ParseError);
}

// ---------------------------------------------------------------------------
// Schema round-trip fixed point
// ---------------------------------------------------------------------------

// serialize -> parse -> serialize must be the identity on serializations.
template <typename T, typename FromJson>
void expect_fixed_point(const T& value, FromJson from_json) {
  const std::string first = io::dump(io::to_json(value));
  const T reparsed = from_json(io::parse(first));
  const std::string second = io::dump(io::to_json(reparsed));
  EXPECT_EQ(first, second);
}

TEST(Schema, EnumsRoundTripStrictly) {
  for (ArchitectureKind kind : all_architectures()) {
    EXPECT_EQ(io::architecture_from_json(io::to_json(kind)), kind);
  }
  for (TopologyKind kind : all_topologies()) {
    EXPECT_EQ(io::topology_from_json(io::to_json(kind)), kind);
  }
  for (DeviceTechnology tech :
       {DeviceTechnology::kSilicon, DeviceTechnology::kGalliumNitride}) {
    EXPECT_EQ(io::technology_from_json(io::to_json(tech)), tech);
  }
  for (FaultKind kind :
       {FaultKind::kVrDropout, FaultKind::kVrDerate, FaultKind::kAttachFault,
        FaultKind::kMeshRegionFault, FaultKind::kStage2Dropout}) {
    EXPECT_EQ(io::fault_kind_from_json(io::to_json(kind)), kind);
  }
  EXPECT_THROW(io::architecture_from_json(Value("A7")), InvalidArgument);
  EXPECT_THROW(io::topology_from_json(Value("DSC")), InvalidArgument);
  EXPECT_THROW(io::technology_from_json(Value("SiC")), InvalidArgument);
  EXPECT_THROW(io::fault_kind_from_json(Value("meteor")), InvalidArgument);
  EXPECT_THROW(io::architecture_from_json(Value(1.0)), InvalidArgument);
}

TEST(Schema, RequestFixedPointForEveryEnumCombination) {
  const auto from = [](const Value& v) {
    return io::evaluation_request_from_json(v);
  };
  for (DeviceTechnology tech :
       {DeviceTechnology::kSilicon, DeviceTechnology::kGalliumNitride}) {
    {
      io::EvaluationRequest request;
      request.architecture = ArchitectureKind::kA0_PcbConversion;
      request.topology.reset();
      request.tech = tech;
      expect_fixed_point(request, from);
    }
    for (ArchitectureKind arch : all_architectures()) {
      if (arch == ArchitectureKind::kA0_PcbConversion) continue;
      for (TopologyKind topo : all_topologies()) {
        io::EvaluationRequest request;
        request.architecture = arch;
        request.topology = topo;
        request.tech = tech;
        expect_fixed_point(request, from);
      }
    }
  }
}

TEST(Schema, OptionsDefaultsRoundTripAsFixedPoint) {
  expect_fixed_point(EvaluationOptions{}, [](const Value& v) {
    return io::evaluation_options_from_json(v);
  });
  expect_fixed_point(PowerDeliverySpec{}, [](const Value& v) {
    return io::spec_from_json(v);
  });
  expect_fixed_point(FaultSeverity{}, [](const Value& v) {
    return io::fault_severity_from_json(v);
  });
}

TEST(Schema, IrDropPreconditionerRoundTripsEveryKindStrictly) {
  for (CgPreconditioner p :
       {CgPreconditioner::kJacobi, CgPreconditioner::kIncompleteCholesky,
        CgPreconditioner::kMultigrid}) {
    EvaluationOptions options;
    options.irdrop_preconditioner = p;
    const EvaluationOptions parsed =
        io::evaluation_options_from_json(io::to_json(options));
    EXPECT_EQ(parsed.irdrop_preconditioner, p) << to_string(p);
    expect_fixed_point(options, [](const Value& v) {
      return io::evaluation_options_from_json(v);
    });
  }
  // Absent field keeps the default (pre-preconditioner requests parse).
  Value bare = io::to_json(EvaluationOptions{});
  auto& members = bare.as_object();
  members.erase(std::remove_if(members.begin(), members.end(),
                               [](const Value::Member& m) {
                                 return m.first == "irdrop_preconditioner";
                               }),
                members.end());
  EXPECT_EQ(io::evaluation_options_from_json(bare).irdrop_preconditioner,
            EvaluationOptions{}.irdrop_preconditioner);
  // Unknown names are rejected with the full list of accepted spellings.
  Value bad = io::to_json(EvaluationOptions{});
  bad.set("irdrop_preconditioner", std::string("amg"));
  try {
    io::evaluation_options_from_json(bad);
    FAIL() << "unknown preconditioner name was accepted";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("unknown irdrop_preconditioner"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("multigrid"), std::string::npos)
        << e.what();
  }
}

TEST(Schema, EveryFaultKindScenarioRoundTrips) {
  for (FaultKind kind :
       {FaultKind::kVrDropout, FaultKind::kVrDerate, FaultKind::kAttachFault,
        FaultKind::kMeshRegionFault, FaultKind::kStage2Dropout}) {
    FaultScenario scenario;
    scenario.label = std::string("one-") + to_string(kind);
    Fault fault;
    fault.kind = kind;
    fault.site = 3;
    fault.x = Length{5e-3};
    fault.y = Length{7e-3};
    scenario.faults.push_back(fault);

    expect_fixed_point(scenario, [](const Value& v) {
      return io::fault_scenario_from_json(v);
    });

    // The lowered injection round-trips inside a full request too.
    io::EvaluationRequest request;
    request.architecture = ArchitectureKind::kA2_InterposerBelowDie;
    request.topology = TopologyKind::kDsch;
    request.options.faults = to_injection(scenario, FaultSeverity{});
    expect_fixed_point(request, [](const Value& v) {
      return io::evaluation_request_from_json(v);
    });
  }
}

TEST(Schema, SweepPointRoundTrips) {
  SweepPoint point;
  point.architecture = ArchitectureKind::kA3_TwoStage6V;
  point.topology = TopologyKind::kDpmih;
  point.tech = DeviceTechnology::kSilicon;
  point.options.mesh_nodes = 21;
  point.label = "A3@6V/DPMIH/Si";
  expect_fixed_point(point, [](const Value& v) {
    return io::sweep_point_from_json(v);
  });
}

TEST(Schema, ScenarioFormLowersToSameCanonicalKeyAsInjectionForm) {
  FaultScenario scenario;
  scenario.faults.push_back(Fault{FaultKind::kVrDropout, 2, {}, {}});
  io::EvaluationRequest explicit_form;
  explicit_form.architecture = ArchitectureKind::kA2_InterposerBelowDie;
  explicit_form.topology = TopologyKind::kDsch;
  explicit_form.options.faults = to_injection(scenario, FaultSeverity{});

  Value wire = io::to_json(explicit_form);
  wire.as_object().erase(
      std::find_if(wire.as_object().begin(), wire.as_object().end(),
                   [](const auto& m) { return m.first == "options"; }));
  wire.set("fault_scenario", io::to_json(scenario));
  const io::EvaluationRequest scenario_form =
      io::evaluation_request_from_json(wire);

  EXPECT_EQ(io::canonical_request_key(scenario_form),
            io::canonical_request_key(explicit_form));
}

TEST(Schema, CanonicalKeyIsInputOrderBlind) {
  const io::EvaluationRequest reference =
      io::evaluation_request_from_json(io::parse(
          R"({"architecture":"A1","topology":"DSCH","options":{"mesh_nodes":21,"derating":0.6}})"));
  const io::EvaluationRequest shuffled =
      io::evaluation_request_from_json(io::parse(
          R"({"options":{"derating":0.6,"mesh_nodes":21},"topology":"DSCH","architecture":"A1"})"));
  EXPECT_EQ(io::canonical_request_key(reference),
            io::canonical_request_key(shuffled));
}

// ---------------------------------------------------------------------------
// Transient droop campaigns
// ---------------------------------------------------------------------------

TEST(Schema, TransientScenarioRoundTripsForEveryKind) {
  for (TransientKind kind : all_transient_kinds()) {
    TransientScenario scenario;
    scenario.kind = kind;
    scenario.label = std::string("wire/") + to_string(kind);
    scenario.tile_x = 0.25;
    scenario.tile_y = 0.75;
    scenario.base_fraction = 0.6;
    scenario.step_fraction = 0.3;
    scenario.t_event = Seconds{3e-6};
    scenario.edge = Seconds{80e-9};
    scenario.site = 5;
    expect_fixed_point(scenario, [](const Value& v) {
      return io::transient_scenario_from_json(v);
    });
    // The enum name itself round-trips strictly.
    EXPECT_EQ(io::transient_kind_from_json(io::to_json(kind)), kind);
  }
  EXPECT_THROW(io::transient_kind_from_json(Value("load-stomp")),
               InvalidArgument);
}

TEST(Schema, TransientScenarioParserValidatesShapes) {
  // The parser runs validate(): a structurally well-formed document with
  // an out-of-range shape is InvalidArgument, not a silent acceptance.
  const char* cases[] = {
      R"({"kind":"load-step","tile_x":1.5})",
      R"({"kind":"load-step","base_fraction":0.9,"step_fraction":0.5})",
      R"({"kind":"load-burst","edge":2.01e-7,"burst_frequency":2e6,"burst_duty":0.4})",
      R"({"kind":"vr-dropout","edge":-1e-9})",
      R"({"kind":"no-such-kind"})",
  };
  for (const char* text : cases) {
    EXPECT_THROW(io::transient_scenario_from_json(io::parse(text)),
                 InvalidArgument)
        << text;
  }
}

TEST(Schema, ResilienceSpecRoundTrips) {
  ResilienceSpec rspec;
  rspec.droop_tolerance = 0.04;
  rspec.vr_overcurrent_factor = 1.3;
  rspec.interconnect_stress_margin = 1.1;
  rspec.transient_droop_tolerance = 0.12;
  expect_fixed_point(rspec, [](const Value& v) {
    return io::resilience_spec_from_json(v);
  });
}

TEST(Schema, DroopCampaignConfigRoundTrips) {
  DroopCampaignConfig config;
  config.method = IntegrationMethod::kBackwardEuler;
  config.t_stop = Seconds{10e-6};
  config.dt = Seconds{1e-9};
  config.tile_grid = 3;
  config.include_bursts = false;
  config.max_dropout_sites = 4;
  config.model.decap = Capacitance{40e-6};
  config.model.decap_esr = Resistance{0.1e-3};
  config.sweep.threads = 3;
  expect_fixed_point(config, [](const Value& v) {
    return io::droop_campaign_config_from_json(v);
  });
  // The default decap (auto-sized by the lowering) serializes as null and
  // parses back to "unset".
  DroopCampaignConfig defaults;
  EXPECT_FALSE(defaults.model.decap.has_value());
  expect_fixed_point(defaults, [](const Value& v) {
    return io::droop_campaign_config_from_json(v);
  });
  const DroopCampaignConfig reparsed =
      io::droop_campaign_config_from_json(io::to_json(defaults));
  EXPECT_FALSE(reparsed.model.decap.has_value());
}

TEST(Schema, TransientRequestRoundTripsAndKeyIsOrderBlind) {
  io::TransientRequest request;
  request.architecture = ArchitectureKind::kA2_InterposerBelowDie;
  request.topology = TopologyKind::kDpmih;
  request.tech = DeviceTechnology::kSilicon;
  request.options.mesh_nodes = 21;
  request.config.tile_grid = 1;
  expect_fixed_point(request, [](const Value& v) {
    return io::transient_request_from_json(v);
  });

  // Same request, shuffled member order and an envelope "cmd"/"id" the
  // schema reader must ignore: one canonical key.
  const io::TransientRequest reference = io::transient_request_from_json(
      io::parse(
          R"({"architecture":"A1","topology":"DSCH","config":{"tile_grid":1,"threads":2}})"));
  const io::TransientRequest shuffled = io::transient_request_from_json(
      io::parse(
          R"({"cmd":"transient","id":7,"config":{"threads":2,"tile_grid":1},"topology":"DSCH","architecture":"A1"})"));
  EXPECT_EQ(io::canonical_transient_key(reference),
            io::canonical_transient_key(shuffled));
}

TEST(Schema, TransientRequestRejectsMeshlessAndFaultedForms) {
  // A0 has no distribution mesh to integrate.
  EXPECT_THROW(
      io::transient_request_from_json(io::parse(R"({"architecture":"A0"})")),
      InvalidArgument);
  // The campaign owns its fault injections: pre-faulted base options are
  // rejected rather than silently composed.
  EXPECT_THROW(io::transient_request_from_json(io::parse(
                   R"({"architecture":"A1","topology":"DSCH","options":{"faults":{"dropped_sites":[0]}}})")),
               InvalidArgument);
}

// ---------------------------------------------------------------------------
// Malformed schema input: structured errors, never crashes
// ---------------------------------------------------------------------------

TEST(Schema, WrongTypesAndInvalidValuesAreInvalidArgument) {
  const char* cases[] = {
      R"({"architecture":"A1","topology":"DSCH","options":{"mesh_nodes":"41"}})",
      R"({"architecture":"A1","topology":"DSCH","options":{"mesh_nodes":-1}})",
      R"({"architecture":"A1","topology":"DSCH","options":{"mesh_nodes":2.5}})",
      R"({"architecture":"A1","topology":"DSCH","options":{"cg_warm_start":"yes"}})",
      R"({"architecture":"A1","topology":null})",
      R"({"topology":"DSCH"})",
      R"({"architecture":"A1","topology":"DSCH","spec":{"die_voltage":-1}})",
      R"({"architecture":"A1","topology":"DSCH","fault_severity":{}})",
      R"({"architecture":"A1","topology":"DSCH","options":{"faults":{"dropped_sites":[0]}},"fault_scenario":{"faults":[{"kind":"vr-dropout","site":0}]}})",
      R"({"architecture":"A1","topology":"DSCH","options":{"faults":{"dropped_sites":[-1]}}})",
      R"({"architecture":"A1","topology":"DSCH","options":{"faults":{"attach_scale":[{"site":0}]}}})",
      R"([1,2,3])",
      R"("A1")",
  };
  for (const char* text : cases) {
    EXPECT_THROW(io::evaluation_request_from_json(io::parse(text)),
                 InvalidArgument)
        << text;
  }
}

TEST(Schema, UnknownFieldsAreIgnoredNotErrors) {
  // v2 compatibility rule: a peer may send fields this build does not
  // know; they must parse as if absent, at every nesting level.
  const io::EvaluationRequest defaults;
  const char* cases[] = {
      R"({"architecture":"A1","topology":"DSCH","future_field":123})",
      R"({"architecture":"A1","topology":"DSCH","options":{"mesh_noodles":41}})",
      R"({"architecture":"A1","topology":"DSCH","optoins":{}})",
      R"({"architecture":"A1","topology":"DSCH","spec":{"color":"red"}})",
      R"({"architecture":"A1","topology":"DSCH","options":{"faults":{"exotic":[]}}})",
  };
  for (const char* text : cases) {
    const io::EvaluationRequest request =
        io::evaluation_request_from_json(io::parse(text));
    EXPECT_EQ(io::canonical_request_key(request),
              io::canonical_request_key(defaults))
        << text;
  }
}

TEST(Schema, SchemaVersionRoundTripsV1InV2Out) {
  // A v1 request (no schema_version) and its v2 form parse identically...
  const io::EvaluationRequest v1 = io::evaluation_request_from_json(
      io::parse(R"({"architecture":"A2","topology":"DSCH"})"));
  const io::EvaluationRequest v2 = io::evaluation_request_from_json(
      io::parse(
          R"({"schema_version":2,"architecture":"A2","topology":"DSCH"})"));
  EXPECT_EQ(io::canonical_request_key(v1), io::canonical_request_key(v2));
  // ...and the writer always stamps the current version.
  const Value out = io::to_json(v1);
  ASSERT_NE(out.find("schema_version"), nullptr);
  EXPECT_EQ(out.at("schema_version").as_number(),
            static_cast<double>(io::kSchemaVersion));
  // Explicit version 1 is accepted too (the field was introduced in v2,
  // but a cautious v1-era client may stamp it).
  EXPECT_NO_THROW(io::evaluation_request_from_json(io::parse(
      R"({"schema_version":1,"architecture":"A2","topology":"DSCH"})")));
}

TEST(Schema, UnsupportedSchemaVersionsAreRejected) {
  const char* cases[] = {
      R"({"schema_version":3,"architecture":"A1","topology":"DSCH"})",
      R"({"schema_version":0,"architecture":"A1","topology":"DSCH"})",
      R"({"schema_version":1.5,"architecture":"A1","topology":"DSCH"})",
      R"({"schema_version":"2","architecture":"A1","topology":"DSCH"})",
  };
  for (const char* text : cases) {
    EXPECT_THROW(io::evaluation_request_from_json(io::parse(text)),
                 InvalidArgument)
        << text;
  }
}

TEST(Schema, TruncatedDocumentsAreParseErrors) {
  io::EvaluationRequest request;
  request.architecture = ArchitectureKind::kA2_InterposerBelowDie;
  request.topology = TopologyKind::kDsch;
  request.options.faults.dropped_sites = {1, 4};
  const std::string full = io::canonical_request_key(request);
  for (std::size_t cut : {1ul, full.size() / 4, full.size() / 2,
                          full.size() - 1}) {
    EXPECT_THROW(io::parse(full.substr(0, cut)), io::ParseError) << cut;
  }
}

TEST(Schema, SinkMapCallbacksAreNotSerializable) {
  EvaluationOptions options;
  options.sink_map = [](const GridMesh& mesh, Current total) {
    Vector v(mesh.node_count(), 0.0);
    v[0] = total.value;
    return v;
  };
  EXPECT_THROW(io::to_json(options), InvalidArgument);
}

}  // namespace
}  // namespace vpd
