#include "vpd/circuit/dc_solver.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "vpd/common/error.hpp"

namespace vpd {
namespace {

using namespace vpd::literals;

TEST(DcSolver, VoltageDivider) {
  Netlist nl;
  const NodeId in = nl.add_node("in");
  const NodeId mid = nl.add_node("mid");
  nl.add_vsource("V1", in, kGround, 10.0_V);
  nl.add_resistor("R1", in, mid, 3.0_Ohm);
  nl.add_resistor("R2", mid, kGround, 2.0_Ohm);
  const DcSolution op = solve_dc(nl);
  EXPECT_NEAR(op.voltage("in").value, 10.0, 1e-9);
  EXPECT_NEAR(op.voltage("mid").value, 4.0, 1e-9);
  EXPECT_NEAR(op.current("R1").value, 2.0, 1e-9);
  // SPICE convention: source current flows + -> - internally, so a
  // delivering source reports negative current.
  EXPECT_NEAR(op.current("V1").value, -2.0, 1e-9);
}

TEST(DcSolver, CurrentSourceIntoResistor) {
  Netlist nl;
  const NodeId out = nl.add_node("out");
  // 2 A drawn from ground into node out (source from gnd to out).
  nl.add_isource("I1", kGround, out, 2.0_A);
  nl.add_resistor("R1", out, kGround, 5.0_Ohm);
  const DcSolution op = solve_dc(nl);
  EXPECT_NEAR(op.voltage("out").value, 10.0, 1e-6);
  EXPECT_NEAR(op.current("R1").value, 2.0, 1e-6);
}

TEST(DcSolver, LoadCurrentSourceConvention) {
  // isource(out, gnd) draws current out of the node: a load.
  Netlist nl;
  const NodeId out = nl.add_node("out");
  nl.add_vsource("V1", out, kGround, 1.0_V);
  nl.add_isource("Iload", out, kGround, 7.0_A);
  const DcSolution op = solve_dc(nl);
  // Source must supply the 7 A: branch current = +7 into the + terminal...
  // the load draws 7 A from 'out', supplied by V1 (negative by convention).
  EXPECT_NEAR(op.current("V1").value, -7.0, 1e-9);
  // The load absorbs 7 W, the source delivers 7 W.
  EXPECT_NEAR(op.power("Iload").value, 7.0, 1e-9);
  EXPECT_NEAR(op.power("V1").value, -7.0, 1e-9);
}

TEST(DcSolver, InductorIsShort) {
  Netlist nl;
  const NodeId in = nl.add_node("in");
  const NodeId mid = nl.add_node("mid");
  nl.add_vsource("V1", in, kGround, 5.0_V);
  nl.add_inductor("L1", in, mid, 10.0_uH);
  nl.add_resistor("R1", mid, kGround, 5.0_Ohm);
  const DcSolution op = solve_dc(nl);
  EXPECT_NEAR(op.voltage("mid").value, 5.0, 1e-9);
  EXPECT_NEAR(op.current("L1").value, 1.0, 1e-9);
}

TEST(DcSolver, CapacitorIsOpen) {
  Netlist nl;
  const NodeId in = nl.add_node("in");
  const NodeId mid = nl.add_node("mid");
  nl.add_vsource("V1", in, kGround, 5.0_V);
  nl.add_resistor("R1", in, mid, 1.0_Ohm);
  nl.add_capacitor("C1", mid, kGround, 1.0_uF);
  const DcSolution op = solve_dc(nl);
  // No DC path to ground through C: mid floats to the source voltage.
  EXPECT_NEAR(op.voltage("mid").value, 5.0, 1e-3);
  EXPECT_DOUBLE_EQ(op.current("C1").value, 0.0);
}

TEST(DcSolver, SwitchStatesChangeTopology) {
  Netlist nl;
  const NodeId in = nl.add_node("in");
  const NodeId out = nl.add_node("out");
  nl.add_vsource("V1", in, kGround, 1.0_V);
  nl.add_switch("S1", in, out, Resistance{1e-6}, Resistance{1e9}, false);
  nl.add_resistor("R1", out, kGround, 1.0_Ohm);

  const DcSolution open_op = solve_dc(nl);
  EXPECT_LT(open_op.voltage("out").value, 1e-3);

  DcOptions opts;
  opts.switch_states = SwitchStates{true};
  const DcSolution closed_op = solve_dc(nl, opts);
  EXPECT_NEAR(closed_op.voltage("out").value, 1.0, 1e-5);
  EXPECT_NEAR(closed_op.current("S1").value, 1.0, 1e-4);
}

TEST(DcSolver, SwitchStateSizeMismatchThrows) {
  Netlist nl;
  const NodeId a = nl.add_node("a");
  nl.add_vsource("V1", a, kGround, 1.0_V);
  nl.add_switch("S1", a, kGround);
  DcOptions opts;
  opts.switch_states = SwitchStates{};  // wrong size
  EXPECT_THROW(solve_dc(nl, opts), InvalidArgument);
}

TEST(DcSolver, TellegenTotalPowerIsZero) {
  Netlist nl;
  const NodeId in = nl.add_node("in");
  const NodeId mid = nl.add_node("mid");
  nl.add_vsource("V1", in, kGround, 12.0_V);
  nl.add_resistor("R1", in, mid, 2.0_Ohm);
  nl.add_resistor("R2", mid, kGround, 4.0_Ohm);
  nl.add_isource("I1", mid, kGround, 0.5_A);
  const DcSolution op = solve_dc(nl);
  EXPECT_NEAR(op.total_power().value, 0.0, 1e-6);
  EXPECT_GT(op.dissipated_power().value, 0.0);
}

TEST(DcSolver, TimeVaryingSourceEvaluatedAtRequestedTime) {
  Netlist nl;
  const NodeId a = nl.add_node("a");
  nl.add_vsource("V1", a, kGround, [](double t) { return 1.0 + t; });
  nl.add_resistor("R1", a, kGround, 1.0_Ohm);
  DcOptions opts;
  opts.time = 4.0;
  const DcSolution op = solve_dc(nl, opts);
  EXPECT_NEAR(op.voltage("a").value, 5.0, 1e-9);
}

TEST(DcSolver, LadderNetworkMatchesHandComputation) {
  // Three-stage R-2R ladder (unterminated). Hand nodal analysis:
  // v3 = (2/3) v2 and (11/3) v2 = 2 v1, so v2 = 6/11, v3 = 4/11 for v1 = 1.
  Netlist nl;
  const NodeId n1 = nl.add_node("n1");
  const NodeId n2 = nl.add_node("n2");
  const NodeId n3 = nl.add_node("n3");
  nl.add_vsource("V1", n1, kGround, 1.0_V);
  nl.add_resistor("R2a", n1, kGround, Resistance{2000.0});
  nl.add_resistor("R1a", n1, n2, Resistance{1000.0});
  nl.add_resistor("R2b", n2, kGround, Resistance{2000.0});
  nl.add_resistor("R1b", n2, n3, Resistance{1000.0});
  nl.add_resistor("R2c", n3, kGround, Resistance{2000.0});
  const DcSolution op = solve_dc(nl);
  EXPECT_NEAR(op.voltage("n2").value, 6.0 / 11.0, 1e-9);
  EXPECT_NEAR(op.voltage("n3").value, 4.0 / 11.0, 1e-9);
}

TEST(DcSolver, GroundedVsourceLoopIsSingular) {
  Netlist nl;
  const NodeId a = nl.add_node("a");
  nl.add_vsource("V1", a, kGround, 1.0_V);
  nl.add_vsource("V2", a, kGround, 2.0_V);  // conflicting loop
  EXPECT_THROW(solve_dc(nl), NumericalError);
}

TEST(DcSolver, PowerBalanceOnBridgeNetwork) {
  // Wheatstone bridge, unbalanced.
  Netlist nl;
  const NodeId top = nl.add_node("top");
  const NodeId left = nl.add_node("left");
  const NodeId right = nl.add_node("right");
  nl.add_vsource("V1", top, kGround, 10.0_V);
  nl.add_resistor("Ra", top, left, 1.0_Ohm);
  nl.add_resistor("Rb", top, right, 2.0_Ohm);
  nl.add_resistor("Rc", left, kGround, 3.0_Ohm);
  nl.add_resistor("Rd", right, kGround, 4.0_Ohm);
  nl.add_resistor("Rbridge", left, right, 5.0_Ohm);
  const DcSolution op = solve_dc(nl);
  const double supplied = -op.power("V1").value;
  EXPECT_NEAR(op.dissipated_power().value, supplied, 1e-6);
  EXPECT_GT(supplied, 0.0);
}

}  // namespace
}  // namespace vpd
