#include <gtest/gtest.h>

#include <map>

#include "vpd/arch/architecture.hpp"
#include "vpd/arch/placement.hpp"
#include "vpd/arch/vr_allocation.hpp"
#include "vpd/common/error.hpp"
#include "vpd/converters/dsch.hpp"
#include "vpd/converters/dickson.hpp"
#include "vpd/converters/dpmih.hpp"
#include "vpd/package/irdrop.hpp"

namespace vpd {
namespace {

using namespace vpd::literals;

TEST(Architecture, EnumRoundTrip) {
  EXPECT_STREQ(to_string(ArchitectureKind::kA0_PcbConversion), "A0");
  EXPECT_STREQ(to_string(ArchitectureKind::kA3_TwoStage12V), "A3@12V");
  EXPECT_EQ(all_architectures().size(), 5u);
}

TEST(Architecture, TwoStageProperties) {
  EXPECT_TRUE(is_two_stage(ArchitectureKind::kA3_TwoStage12V));
  EXPECT_TRUE(is_two_stage(ArchitectureKind::kA3_TwoStage6V));
  EXPECT_FALSE(is_two_stage(ArchitectureKind::kA1_InterposerPeriphery));
  EXPECT_NEAR(
      intermediate_voltage(ArchitectureKind::kA3_TwoStage12V).value, 12.0,
      1e-12);
  EXPECT_NEAR(intermediate_voltage(ArchitectureKind::kA3_TwoStage6V).value,
              6.0, 1e-12);
  EXPECT_THROW(intermediate_voltage(ArchitectureKind::kA0_PcbConversion),
               InvalidArgument);
}

TEST(Placement, PeripheryRingCapacity) {
  // DSCH: 7.25 mm^2 -> 2.69 mm side; floor(22.36/2.69) = 8 per edge -> 32.
  const Length die_side{22.36e-3};
  EXPECT_EQ(periphery_ring_capacity(die_side, Area{7.25e-6}), 32u);
  // DPMIH: 53.3 mm^2 -> 7.3 mm side; 3 per edge -> 12.
  EXPECT_EQ(periphery_ring_capacity(die_side, Area{53.3e-6}), 12u);
  EXPECT_THROW(periphery_ring_capacity(die_side, Area{900e-6}),
               InvalidArgument);
}

TEST(Placement, PeripherySitesLieOnBoundary) {
  const Length die_side{22.36e-3};
  const PlacementResult r =
      periphery_placement(die_side, Area{7.25e-6}, 48);
  EXPECT_EQ(r.sites.size(), 48u);
  EXPECT_EQ(r.rings_used, 2u);  // 48 > 32 per ring
  for (const VrSite& s : r.sites) {
    const bool on_x_edge =
        s.x.value < 1e-12 || std::abs(s.x.value - die_side.value) < 1e-12;
    const bool on_y_edge =
        s.y.value < 1e-12 || std::abs(s.y.value - die_side.value) < 1e-12;
    EXPECT_TRUE(on_x_edge || on_y_edge);
  }
}

TEST(Placement, PeripherySitesAreDistinct) {
  const PlacementResult r =
      periphery_placement(Length{22.36e-3}, Area{7.25e-6}, 48);
  for (std::size_t i = 0; i < r.sites.size(); ++i) {
    for (std::size_t j = i + 1; j < r.sites.size(); ++j) {
      const double dx = r.sites[i].x.value - r.sites[j].x.value;
      const double dy = r.sites[i].y.value - r.sites[j].y.value;
      EXPECT_GT(dx * dx + dy * dy, 1e-8)
          << "sites " << i << " and " << j << " coincide";
    }
  }
}

TEST(Placement, PeripheryOverflowThrows) {
  EXPECT_THROW(
      periphery_placement(Length{22.36e-3}, Area{7.25e-6}, 300, 2),
      InfeasibleDesign);
}

TEST(Placement, BelowDieGridInsideDie) {
  const Length die_side{22.36e-3};
  const PlacementResult r =
      below_die_placement(die_side, Area{7.25e-6}, 48, 0.75);
  EXPECT_EQ(r.sites.size(), 48u);
  EXPECT_NEAR(r.area_utilization, 48 * 7.25 / 500.0, 1e-4);
  for (const VrSite& s : r.sites) {
    EXPECT_GT(s.x.value, 0.0);
    EXPECT_LT(s.x.value, die_side.value);
    EXPECT_GT(s.y.value, 0.0);
    EXPECT_LT(s.y.value, die_side.value);
  }
}

TEST(Placement, BelowDieAreaCapEnforced) {
  // 15 DPMIH at 53.3 mm^2 = 800 mm^2 > 75% of 500 mm^2.
  EXPECT_THROW(
      below_die_placement(Length{22.36e-3}, Area{53.3e-6}, 15, 0.75),
      InfeasibleDesign);
  // The paper-mode oversubscription (fraction 1.6) allows it.
  EXPECT_NO_THROW(
      below_die_placement(Length{22.36e-3}, Area{53.3e-6}, 15, 1.6));
}

TEST(Placement, DisjointPatchSidesRespectDesiredAndGeometry) {
  // Single site: no neighbour constraint.
  const std::vector<VrSite> lone{{Length{5e-3}, Length{5e-3}, 0}};
  EXPECT_NEAR(disjoint_patch_sides(lone, Length{2e-3})[0].value, 2e-3,
              1e-15);

  // One tight pair must not shrink a distant site (per-site sizing).
  const std::vector<VrSite> mixed{{Length{1e-3}, Length{1e-3}, 0},
                                  {Length{1.5e-3}, Length{1e-3}, 0},
                                  {Length{10e-3}, Length{10e-3}, 0}};
  const auto sides = disjoint_patch_sides(mixed, Length{2e-3});
  EXPECT_NEAR(sides[0].value, 0.9 * 0.5e-3, 1e-15);
  EXPECT_NEAR(sides[1].value, 0.9 * 0.5e-3, 1e-15);
  EXPECT_NEAR(sides[2].value, 2e-3, 1e-15);  // full footprint

  // Coincident sites cannot be made disjoint.
  const std::vector<VrSite> clash{{Length{1e-3}, Length{1e-3}, 0},
                                  {Length{1e-3}, Length{1e-3}, 0}};
  EXPECT_THROW(disjoint_patch_sides(clash, Length{2e-3}), InvalidArgument);
}

// The property the evaluator depends on: across the paper's actual
// placements, no two attachment patches may claim the same mesh node —
// overlapping patches would alias VR outputs into one super-source and
// corrupt the per-VR current spread (this was a live bug for periphery
// rings, whose corner-adjacent sites sit closer than the count-based
// spacing heuristic assumed).
class PatchDisjointness : public ::testing::TestWithParam<bool> {};

TEST_P(PatchDisjointness, PaperPlacementsShareNoMeshNodes) {
  const bool below_die = GetParam();
  const Length die = Length{22.36e-3};
  const PlacementResult placement =
      below_die
          ? below_die_placement(die, Area{7.25e-6}, 48, 0.75)
          : periphery_placement(die, Area{7.25e-6}, 48, 4);
  const GridMesh mesh(die, die, 41, 41, 2e-3);
  const auto sides = disjoint_patch_sides(placement.sites, Length{1.5e-3});

  std::map<std::size_t, std::size_t> owner;  // mesh node -> site index
  for (std::size_t s = 0; s < placement.sites.size(); ++s) {
    const auto legs =
        patch_attachment(mesh, placement.sites[s].x, placement.sites[s].y,
                         sides[s], Voltage{1.0}, Resistance{1e-4});
    EXPECT_FALSE(legs.empty());
    for (const VrAttachment& leg : legs) {
      const auto [it, inserted] = owner.emplace(leg.node, s);
      EXPECT_TRUE(inserted)
          << "node " << leg.node << " claimed by sites " << it->second
          << " and " << s << (below_die ? " (below-die)" : " (periphery)");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Placements, PatchDisjointness,
                         ::testing::Bool());

TEST(Allocation, DschNeedsFortyEightVrs) {
  // ceil(1000 / (0.7 * 30)) = 48 — exactly the paper's Table II count.
  const auto conv = dsch_converter();
  const VrAllocation a = allocate_vrs(Current{1000.0}, *conv, 0.70);
  EXPECT_EQ(a.count, 48u);
  EXPECT_NEAR(a.nominal_per_vr.value, 20.8, 0.05);
  EXPECT_TRUE(a.within_rating);
}

TEST(Allocation, DicksonAtFortyEightExceedsRating) {
  // The paper's Fig. 7 exclusion: ~20.8 A per VR > the 12 A rating.
  const auto conv = dickson_converter();
  const VrAllocation a = allocate_vrs_fixed(Current{1000.0}, *conv, 48);
  EXPECT_FALSE(a.within_rating);
  EXPECT_GT(a.rating_utilization, 1.5);
  EXPECT_FALSE(a.notes.empty());
}

TEST(Allocation, DpmihAutomaticCount) {
  const auto conv = dpmih_converter();
  const VrAllocation a = allocate_vrs(Current{1000.0}, *conv, 0.70);
  EXPECT_EQ(a.count, 15u);  // ceil(1000 / 70)
  EXPECT_TRUE(a.within_rating);
}

TEST(Allocation, Validation) {
  const auto conv = dsch_converter();
  EXPECT_THROW(allocate_vrs(Current{0.0}, *conv), InvalidArgument);
  EXPECT_THROW(allocate_vrs(Current{100.0}, *conv, 0.0), InvalidArgument);
  EXPECT_THROW(allocate_vrs_fixed(Current{100.0}, *conv, 0),
               InvalidArgument);
}

}  // namespace
}  // namespace vpd
