// Preconditioned solver core: IC(0)-vs-dense-reference property tests on
// random SPD grid Laplacians, workspace/factorization reuse semantics,
// batched solves, the CG edge paths (zero RHS, warm start at the
// solution, max-iteration exit with certified acceptance), the SSOR
// fallback, and the zero-scale fault-severing regressions (a fully cut
// copper region must ground its floating nodes instead of handing CG a
// singular operator). Runs in its own ctest executable labelled `solver`.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "vpd/common/error.hpp"
#include "vpd/common/matrix.hpp"
#include "vpd/common/rng.hpp"
#include "vpd/common/sparse.hpp"
#include "vpd/package/irdrop.hpp"
#include "vpd/package/mesh.hpp"

namespace vpd {
namespace {

// ---------------------------------------------------------------------------
// Helpers: random SPD grid Laplacians and a dense Cholesky reference
// ---------------------------------------------------------------------------

/// nx x ny grid Laplacian with random positive edge conductances plus
/// random shunts (to ground) on a few nodes — the exact structure of an
/// IR-drop operator, with none of its symmetry to hide bugs behind.
CsrMatrix random_spd_laplacian(Rng& rng, std::size_t nx, std::size_t ny,
                               std::size_t shunt_count) {
  const std::size_t n = nx * ny;
  TripletList t(n, n);
  const auto node = [nx](std::size_t ix, std::size_t iy) {
    return iy * nx + ix;
  };
  const auto stamp = [&](std::size_t a, std::size_t b, double g) {
    t.add(a, a, g);
    t.add(b, b, g);
    t.add(a, b, -g);
    t.add(b, a, -g);
  };
  for (std::size_t iy = 0; iy < ny; ++iy)
    for (std::size_t ix = 0; ix + 1 < nx; ++ix)
      stamp(node(ix, iy), node(ix + 1, iy), rng.uniform(0.5, 2.0));
  for (std::size_t iy = 0; iy + 1 < ny; ++iy)
    for (std::size_t ix = 0; ix < nx; ++ix)
      stamp(node(ix, iy), node(ix, iy + 1), rng.uniform(0.5, 2.0));
  for (std::size_t s = 0; s < shunt_count; ++s) {
    const std::size_t shunted = rng.next_below(static_cast<std::uint32_t>(n));
    t.add(shunted, shunted, rng.uniform(0.1, 1.0));
  }
  return CsrMatrix(t);
}

Vector random_vector(Rng& rng, std::size_t n) {
  Vector v(n);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

/// Dense Cholesky solve — the O(n^3) reference the sparse path is checked
/// against. Throws via ADD_FAILURE on a non-positive pivot.
Vector dense_cholesky_solve(const CsrMatrix& a, const Vector& b) {
  const std::size_t n = a.rows();
  std::vector<double> dense(n * n, 0.0);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t k = a.row_offsets()[r]; k < a.row_offsets()[r + 1]; ++k)
      dense[r * n + a.col_indices()[k]] = a.values()[k];
  // In-place lower Cholesky.
  for (std::size_t j = 0; j < n; ++j) {
    double d = dense[j * n + j];
    for (std::size_t k = 0; k < j; ++k) d -= dense[j * n + k] * dense[j * n + k];
    EXPECT_GT(d, 0.0) << "dense reference lost positive definiteness";
    const double l_jj = std::sqrt(d);
    dense[j * n + j] = l_jj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = dense[i * n + j];
      for (std::size_t k = 0; k < j; ++k)
        s -= dense[i * n + k] * dense[j * n + k];
      dense[i * n + j] = s / l_jj;
    }
  }
  Vector x = b;
  for (std::size_t i = 0; i < n; ++i) {  // L y = b
    for (std::size_t k = 0; k < i; ++k) x[i] -= dense[i * n + k] * x[k];
    x[i] /= dense[i * n + i];
  }
  for (std::size_t i = n; i-- > 0;) {  // L^T x = y
    for (std::size_t k = i + 1; k < n; ++k) x[i] -= dense[k * n + i] * x[k];
    x[i] /= dense[i * n + i];
  }
  return x;
}

// ---------------------------------------------------------------------------
// IC(0) vs dense reference
// ---------------------------------------------------------------------------

TEST(SolverCore, IcMatchesDenseReferenceOnRandomSpdLaplacians) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    const std::size_t nx = 3 + seed;  // 4x5 up to 8x9 grids
    const std::size_t ny = nx + 1;
    const CsrMatrix a = random_spd_laplacian(rng, nx, ny, 4);
    ASSERT_TRUE(a.is_symmetric());
    const Vector b = random_vector(rng, a.rows());
    const Vector reference = dense_cholesky_solve(a, b);

    CgOptions options;
    options.relative_tolerance = 1e-13;
    options.preconditioner = CgPreconditioner::kIncompleteCholesky;
    const CgResult result = solve_cg(a, b, options);
    ASSERT_TRUE(result.converged) << "seed " << seed;
    ASSERT_EQ(result.x.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i)
      EXPECT_NEAR(result.x[i], reference[i],
                  1e-8 * (1.0 + std::fabs(reference[i])))
          << "seed " << seed << " node " << i;
  }
}

TEST(SolverCore, JacobiAndIcConvergeToTheSameSolution) {
  Rng rng(42);
  const CsrMatrix a = random_spd_laplacian(rng, 7, 7, 5);
  const Vector b = random_vector(rng, a.rows());
  CgOptions jacobi;
  jacobi.relative_tolerance = 1e-13;
  jacobi.preconditioner = CgPreconditioner::kJacobi;
  CgOptions ic = jacobi;
  ic.preconditioner = CgPreconditioner::kIncompleteCholesky;
  const CgResult xj = solve_cg(a, b, jacobi);
  const CgResult xi = solve_cg(a, b, ic);
  ASSERT_TRUE(xj.converged);
  ASSERT_TRUE(xi.converged);
  for (std::size_t i = 0; i < a.rows(); ++i)
    EXPECT_NEAR(xj.x[i], xi.x[i], 1e-8 * (1.0 + std::fabs(xj.x[i])));
  // The whole point of the factorization: fewer iterations than Jacobi.
  EXPECT_LT(xi.iterations, xj.iterations);
}

TEST(SolverCore, SharedSymbolicPatternIsBitIdenticalToOwned) {
  Rng rng(7);
  const CsrMatrix a = random_spd_laplacian(rng, 9, 8, 6);
  const Vector b = random_vector(rng, a.rows());
  CgOptions options;
  options.preconditioner = CgPreconditioner::kIncompleteCholesky;
  const CgResult owned = solve_cg(a, b, options);
  const IcSymbolic symbolic(a);
  EXPECT_GT(symbolic.entry_count(), 0u);
  EXPECT_EQ(symbolic.rows(), a.rows());
  options.ic_symbolic = &symbolic;
  const CgResult shared = solve_cg(a, b, options);
  EXPECT_EQ(owned.iterations, shared.iterations);
  EXPECT_EQ(owned.residual_norm, shared.residual_norm);
  EXPECT_EQ(owned.x, shared.x);
}

// ---------------------------------------------------------------------------
// Workspace reuse and batched solves
// ---------------------------------------------------------------------------

TEST(SolverCore, WorkspaceReusesFactorizationOnIdenticalMatrix) {
  Rng rng(3);
  CsrMatrix a = random_spd_laplacian(rng, 8, 8, 4);
  const Vector b = random_vector(rng, a.rows());
  CgOptions options;
  options.preconditioner = CgPreconditioner::kIncompleteCholesky;

  CgWorkspace ws;
  const CgResult first = solve_cg(a, b, options, ws);
  const CgResult second = solve_cg(a, b, options, ws);
  EXPECT_EQ(ws.stats().solves, 2u);
  EXPECT_EQ(ws.stats().factorizations, 1u);
  EXPECT_EQ(ws.stats().factorization_reuses, 1u);
  // Reuse is keyed on an exact value match, so it can never change a bit.
  EXPECT_EQ(first.x, second.x);
  EXPECT_EQ(first.iterations, second.iterations);
  EXPECT_EQ(first.residual_norm, second.residual_norm);

  // Any value change (same pattern) forces a refactorization.
  a.add_to_entry(0, 0, 0.25);
  (void)solve_cg(a, b, options, ws);
  EXPECT_EQ(ws.stats().factorizations, 2u);

  // invalidate() drops the cached key even though the values still match.
  ws.invalidate();
  (void)solve_cg(a, b, options, ws);
  EXPECT_EQ(ws.stats().factorizations, 3u);
  EXPECT_EQ(ws.stats().factorization_reuses, 1u);
}

TEST(SolverCore, BatchSolveSharesOneFactorizationBitIdentically) {
  Rng rng(11);
  const CsrMatrix a = random_spd_laplacian(rng, 9, 7, 5);
  std::vector<Vector> rhs;
  for (int k = 0; k < 3; ++k) rhs.push_back(random_vector(rng, a.rows()));
  CgOptions options;
  options.preconditioner = CgPreconditioner::kIncompleteCholesky;

  CgWorkspace ws;
  const std::vector<CgResult> batch = solve_cg_batch(a, rhs, options, ws);
  ASSERT_EQ(batch.size(), rhs.size());
  EXPECT_EQ(ws.stats().solves, rhs.size());
  EXPECT_EQ(ws.stats().factorizations, 1u);
  EXPECT_EQ(ws.stats().factorization_reuses, rhs.size() - 1);
  for (std::size_t k = 0; k < rhs.size(); ++k) {
    const CgResult standalone = solve_cg(a, rhs[k], options);
    EXPECT_EQ(batch[k].x, standalone.x) << "rhs " << k;
    EXPECT_EQ(batch[k].iterations, standalone.iterations) << "rhs " << k;
    EXPECT_EQ(batch[k].residual_norm, standalone.residual_norm) << "rhs " << k;
    EXPECT_TRUE(batch[k].converged) << "rhs " << k;
  }
}

TEST(SolverCore, MultiplyIntoMatchesMultiply) {
  Rng rng(23);
  const CsrMatrix a = random_spd_laplacian(rng, 6, 10, 3);
  const Vector x = random_vector(rng, a.rows());
  Vector y;
  a.multiply_into(x, y);
  EXPECT_EQ(y, a.multiply(x));
}

// ---------------------------------------------------------------------------
// CG edge paths
// ---------------------------------------------------------------------------

TEST(SolverCore, ZeroRhsConvergesInZeroIterations) {
  Rng rng(5);
  const CsrMatrix a = random_spd_laplacian(rng, 6, 6, 3);
  const Vector b(a.rows(), 0.0);
  for (CgPreconditioner p :
       {CgPreconditioner::kJacobi, CgPreconditioner::kIncompleteCholesky}) {
    CgOptions options;
    options.preconditioner = p;
    const CgResult result = solve_cg(a, b, options);
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.iterations, 0u);
    EXPECT_EQ(result.residual_norm, 0.0);
    EXPECT_EQ(result.x, Vector(a.rows(), 0.0));
  }
}

TEST(SolverCore, WarmStartAtTheSolutionConvergesInZeroIterations) {
  Rng rng(9);
  const CsrMatrix a = random_spd_laplacian(rng, 8, 8, 4);
  const Vector b = random_vector(rng, a.rows());
  CgOptions options;
  options.relative_tolerance = 1e-12;
  options.preconditioner = CgPreconditioner::kIncompleteCholesky;
  const CgResult cold = solve_cg(a, b, options);
  ASSERT_TRUE(cold.converged);
  EXPECT_GT(cold.iterations, 0u);

  options.x0 = cold.x;
  const CgResult warm = solve_cg(a, b, options);
  EXPECT_TRUE(warm.converged);
  EXPECT_EQ(warm.iterations, 0u);
  EXPECT_EQ(warm.x, cold.x);
}

TEST(SolverCore, MaxIterationExitHonoursTheCertifiedCriterion) {
  Rng rng(13);
  const CsrMatrix a = random_spd_laplacian(rng, 12, 12, 2);
  const Vector b = random_vector(rng, a.rows());

  // Tight tolerance, one iteration: the solve must report non-convergence
  // with the true residual, not silently accept the iterate.
  CgOptions tight;
  tight.relative_tolerance = 1e-12;
  tight.max_iterations = 1;
  tight.preconditioner = CgPreconditioner::kJacobi;
  const CgResult failed = solve_cg(a, b, tight);
  EXPECT_EQ(failed.iterations, 1u);
  EXPECT_FALSE(failed.converged);
  // residual_norm is the true ||b - A x||, recomputed at exit.
  Vector check = a.multiply(failed.x);
  for (std::size_t i = 0; i < check.size(); ++i) check[i] = b[i] - check[i];
  EXPECT_NEAR(failed.residual_norm, norm2(check),
              1e-12 * (1.0 + norm2(check)));

  // Loose tolerance, same single iteration: the certified normwise
  // backward-error criterion accepts the iterate at the cap.
  CgOptions loose = tight;
  loose.relative_tolerance = 0.5;
  const CgResult accepted = solve_cg(a, b, loose);
  EXPECT_EQ(accepted.iterations, 1u);
  EXPECT_TRUE(accepted.converged);
  EXPECT_LE(accepted.residual_norm,
            loose.relative_tolerance *
                (a.infinity_norm() * norm2(accepted.x) + norm2(b)));
}

TEST(SolverCore, RejectsShapeMismatchesAndIndefiniteMatrices) {
  TripletList rect(2, 3);
  rect.add(0, 0, 1.0);
  EXPECT_THROW(solve_cg(CsrMatrix(rect), Vector(2, 1.0)), InvalidArgument);

  TripletList square(2, 2);
  square.add(0, 0, 1.0);
  square.add(1, 1, 1.0);
  const CsrMatrix identity(square);
  EXPECT_THROW(solve_cg(identity, Vector(3, 1.0)), InvalidArgument);

  TripletList negative(2, 2);
  negative.add(0, 0, 1.0);
  negative.add(1, 1, -1.0);
  EXPECT_THROW(solve_cg(CsrMatrix(negative), Vector(2, 1.0)), NumericalError);
}

// ---------------------------------------------------------------------------
// SSOR fallback
// ---------------------------------------------------------------------------

TEST(SolverCore, FactorizationFallsBackToSsorWhenAPivotBreaksDown) {
  // Positive diagonal but indefinite: the IC pivot at row 1 is
  // 1 - 2^2 = -3, so factor() must fall back to SSOR,
  // M = (D + L) D^{-1} (D + L)^T = [[1, 2], [2, 5]].
  TripletList t(2, 2);
  t.add(0, 0, 1.0);
  t.add(1, 1, 1.0);
  t.add(0, 1, 2.0);
  t.add(1, 0, 2.0);
  const CsrMatrix a(t);

  IcPreconditioner precond;
  precond.factor(a);
  EXPECT_TRUE(precond.ssor_fallback());
  const Vector r{1.0, 1.0};
  Vector z;
  precond.apply(r, z);
  ASSERT_EQ(z.size(), 2u);
  EXPECT_NEAR(z[0], 3.0, 1e-12);   // M^{-1} [1 1]^T = [3 -1]^T
  EXPECT_NEAR(z[1], -1.0, 1e-12);

  // Positive control: a genuinely SPD operator factors without fallback.
  Rng rng(17);
  IcPreconditioner healthy;
  healthy.factor(random_spd_laplacian(rng, 5, 5, 2));
  EXPECT_FALSE(healthy.ssor_fallback());
}

// ---------------------------------------------------------------------------
// Zero-scale fault severing (the crash this PR fixes)
// ---------------------------------------------------------------------------

TEST(Severing, ZeroScaleRegionKeepsTheSparsityPattern) {
  const Length side{10e-3};
  const GridMesh nominal(side, side, 21, 21, 2e-3);
  const MeshPerturbation cut{
      EdgeScaleRegion{Length{0.0}, Length{0.0}, Length{3e-3}, Length{3e-3},
                      0.0}};
  const GridMesh damaged(side, side, 21, 21, 2e-3, cut);
  ASSERT_TRUE(damaged.perturbed());
  const CsrMatrix a_nominal(nominal.laplacian());
  const CsrMatrix a_damaged(damaged.laplacian());
  // Severed edges stay as stored zeros: identical pattern, so cached
  // symbolic factorizations and in-place stamping stay valid.
  EXPECT_EQ(a_damaged.nonzero_count(), a_nominal.nonzero_count());
  EXPECT_EQ(a_damaged.row_offsets(), a_nominal.row_offsets());
  EXPECT_EQ(a_damaged.col_indices(), a_nominal.col_indices());
}

TEST(Severing, FullyCutRegionGroundsFloatingNodesInsteadOfAborting) {
  const Length side{10e-3};
  const double rail = 1.0;
  const MeshPerturbation cut{
      EdgeScaleRegion{Length{0.0}, Length{0.0}, Length{3e-3}, Length{3e-3},
                      0.0}};
  const GridMesh mesh(side, side, 21, 21, 2e-3, cut);

  // One VR patch *inside* the dead region (its nodes survive through
  // their source shunts), one healthy patch far away.
  std::vector<VrAttachment> vrs;
  for (const auto& center :
       std::vector<std::pair<double, double>>{{1.5e-3, 1.5e-3},
                                              {8e-3, 8e-3}}) {
    const auto patch =
        patch_attachment(mesh, Length{center.first}, Length{center.second},
                         Length{1.5e-3}, Voltage{rail}, Resistance{100e-6});
    vrs.insert(vrs.end(), patch.begin(), patch.end());
  }
  const Vector sinks = uniform_sinks(mesh, Current{100.0});

  IrDropOptions options;
  options.warm_start_voltage = rail;
  IrDropResult result;
  // Before the fix this threw NumericalError: the severed nodes left a
  // zero diagonal (singular operator) in the CG solve.
  ASSERT_NO_THROW(result = solve_irdrop(mesh, vrs, sinks, options));

  // The 6x6 node block strictly inside the cut is severed; the 3x3 VR
  // patch within it keeps its shunts, the other 27 nodes float.
  EXPECT_EQ(result.floating_nodes, 27u);
  EXPECT_EQ(result.min_node_voltage.value, 0.0);  // dead rail reads 0 V
  EXPECT_GT(result.max_node_voltage.value, 0.9);
  ASSERT_EQ(result.node_voltages.size(), mesh.node_count());
  for (double v : result.node_voltages) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, rail + 1e-9);
  }
  EXPECT_TRUE(std::isfinite(result.grid_loss.value));
  EXPECT_TRUE(std::isfinite(result.series_loss.value));
  for (double i : result.vr_currents) EXPECT_TRUE(std::isfinite(i));

  // An intact mesh keeps reporting zero floating nodes.
  const GridMesh intact(side, side, 21, 21, 2e-3);
  std::vector<VrAttachment> intact_vrs;
  for (const auto& center :
       std::vector<std::pair<double, double>>{{1.5e-3, 1.5e-3},
                                              {8e-3, 8e-3}}) {
    const auto patch =
        patch_attachment(intact, Length{center.first}, Length{center.second},
                         Length{1.5e-3}, Voltage{rail}, Resistance{100e-6});
    intact_vrs.insert(intact_vrs.end(), patch.begin(), patch.end());
  }
  const IrDropResult healthy =
      solve_irdrop(intact, intact_vrs, uniform_sinks(intact, Current{100.0}),
                   options);
  EXPECT_EQ(healthy.floating_nodes, 0u);
  EXPECT_GT(healthy.min_node_voltage.value, 0.9);
}

}  // namespace
}  // namespace vpd
