// Preconditioned solver core: IC(0)-vs-dense-reference property tests on
// random SPD grid Laplacians, workspace/factorization reuse semantics,
// batched solves, the CG edge paths (zero RHS, warm start at the
// solution, max-iteration exit with certified acceptance), the SSOR
// fallback, and the zero-scale fault-severing regressions (a fully cut
// copper region must ground its floating nodes instead of handing CG a
// singular operator). Runs in its own ctest executable labelled `solver`.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "vpd/common/error.hpp"
#include "vpd/common/matrix.hpp"
#include "vpd/common/rng.hpp"
#include "vpd/common/sparse.hpp"
#include "vpd/package/irdrop.hpp"
#include "vpd/package/mesh.hpp"

namespace vpd {
namespace {

// ---------------------------------------------------------------------------
// Helpers: random SPD grid Laplacians and a dense Cholesky reference
// ---------------------------------------------------------------------------

/// nx x ny grid Laplacian with random positive edge conductances plus
/// random shunts (to ground) on a few nodes — the exact structure of an
/// IR-drop operator, with none of its symmetry to hide bugs behind.
CsrMatrix random_spd_laplacian(Rng& rng, std::size_t nx, std::size_t ny,
                               std::size_t shunt_count) {
  const std::size_t n = nx * ny;
  TripletList t(n, n);
  const auto node = [nx](std::size_t ix, std::size_t iy) {
    return iy * nx + ix;
  };
  const auto stamp = [&](std::size_t a, std::size_t b, double g) {
    t.add(a, a, g);
    t.add(b, b, g);
    t.add(a, b, -g);
    t.add(b, a, -g);
  };
  for (std::size_t iy = 0; iy < ny; ++iy)
    for (std::size_t ix = 0; ix + 1 < nx; ++ix)
      stamp(node(ix, iy), node(ix + 1, iy), rng.uniform(0.5, 2.0));
  for (std::size_t iy = 0; iy + 1 < ny; ++iy)
    for (std::size_t ix = 0; ix < nx; ++ix)
      stamp(node(ix, iy), node(ix, iy + 1), rng.uniform(0.5, 2.0));
  for (std::size_t s = 0; s < shunt_count; ++s) {
    const std::size_t shunted = rng.next_below(static_cast<std::uint32_t>(n));
    t.add(shunted, shunted, rng.uniform(0.1, 1.0));
  }
  return CsrMatrix(t);
}

Vector random_vector(Rng& rng, std::size_t n) {
  Vector v(n);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

/// Dense Cholesky solve — the O(n^3) reference the sparse path is checked
/// against. Throws via ADD_FAILURE on a non-positive pivot.
Vector dense_cholesky_solve(const CsrMatrix& a, const Vector& b) {
  const std::size_t n = a.rows();
  std::vector<double> dense(n * n, 0.0);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t k = a.row_offsets()[r]; k < a.row_offsets()[r + 1]; ++k)
      dense[r * n + a.col_indices()[k]] = a.values()[k];
  // In-place lower Cholesky.
  for (std::size_t j = 0; j < n; ++j) {
    double d = dense[j * n + j];
    for (std::size_t k = 0; k < j; ++k) d -= dense[j * n + k] * dense[j * n + k];
    EXPECT_GT(d, 0.0) << "dense reference lost positive definiteness";
    const double l_jj = std::sqrt(d);
    dense[j * n + j] = l_jj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = dense[i * n + j];
      for (std::size_t k = 0; k < j; ++k)
        s -= dense[i * n + k] * dense[j * n + k];
      dense[i * n + j] = s / l_jj;
    }
  }
  Vector x = b;
  for (std::size_t i = 0; i < n; ++i) {  // L y = b
    for (std::size_t k = 0; k < i; ++k) x[i] -= dense[i * n + k] * x[k];
    x[i] /= dense[i * n + i];
  }
  for (std::size_t i = n; i-- > 0;) {  // L^T x = y
    for (std::size_t k = i + 1; k < n; ++k) x[i] -= dense[k * n + i] * x[k];
    x[i] /= dense[i * n + i];
  }
  return x;
}

// ---------------------------------------------------------------------------
// IC(0) vs dense reference
// ---------------------------------------------------------------------------

TEST(SolverCore, IcMatchesDenseReferenceOnRandomSpdLaplacians) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    const std::size_t nx = 3 + seed;  // 4x5 up to 8x9 grids
    const std::size_t ny = nx + 1;
    const CsrMatrix a = random_spd_laplacian(rng, nx, ny, 4);
    ASSERT_TRUE(a.is_symmetric());
    const Vector b = random_vector(rng, a.rows());
    const Vector reference = dense_cholesky_solve(a, b);

    CgOptions options;
    options.relative_tolerance = 1e-13;
    options.preconditioner = CgPreconditioner::kIncompleteCholesky;
    const CgResult result = solve_cg(a, b, options);
    ASSERT_TRUE(result.converged) << "seed " << seed;
    ASSERT_EQ(result.x.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i)
      EXPECT_NEAR(result.x[i], reference[i],
                  1e-8 * (1.0 + std::fabs(reference[i])))
          << "seed " << seed << " node " << i;
  }
}

TEST(SolverCore, JacobiAndIcConvergeToTheSameSolution) {
  Rng rng(42);
  const CsrMatrix a = random_spd_laplacian(rng, 7, 7, 5);
  const Vector b = random_vector(rng, a.rows());
  CgOptions jacobi;
  jacobi.relative_tolerance = 1e-13;
  jacobi.preconditioner = CgPreconditioner::kJacobi;
  CgOptions ic = jacobi;
  ic.preconditioner = CgPreconditioner::kIncompleteCholesky;
  const CgResult xj = solve_cg(a, b, jacobi);
  const CgResult xi = solve_cg(a, b, ic);
  ASSERT_TRUE(xj.converged);
  ASSERT_TRUE(xi.converged);
  for (std::size_t i = 0; i < a.rows(); ++i)
    EXPECT_NEAR(xj.x[i], xi.x[i], 1e-8 * (1.0 + std::fabs(xj.x[i])));
  // The whole point of the factorization: fewer iterations than Jacobi.
  EXPECT_LT(xi.iterations, xj.iterations);
}

TEST(SolverCore, SharedSymbolicPatternIsBitIdenticalToOwned) {
  Rng rng(7);
  const CsrMatrix a = random_spd_laplacian(rng, 9, 8, 6);
  const Vector b = random_vector(rng, a.rows());
  CgOptions options;
  options.preconditioner = CgPreconditioner::kIncompleteCholesky;
  const CgResult owned = solve_cg(a, b, options);
  const IcSymbolic symbolic(a);
  EXPECT_GT(symbolic.entry_count(), 0u);
  EXPECT_EQ(symbolic.rows(), a.rows());
  options.ic_symbolic = &symbolic;
  const CgResult shared = solve_cg(a, b, options);
  EXPECT_EQ(owned.iterations, shared.iterations);
  EXPECT_EQ(owned.residual_norm, shared.residual_norm);
  EXPECT_EQ(owned.x, shared.x);
}

// ---------------------------------------------------------------------------
// Workspace reuse and batched solves
// ---------------------------------------------------------------------------

TEST(SolverCore, WorkspaceReusesFactorizationOnIdenticalMatrix) {
  Rng rng(3);
  CsrMatrix a = random_spd_laplacian(rng, 8, 8, 4);
  const Vector b = random_vector(rng, a.rows());
  CgOptions options;
  options.preconditioner = CgPreconditioner::kIncompleteCholesky;

  CgWorkspace ws;
  const CgResult first = solve_cg(a, b, options, ws);
  const CgResult second = solve_cg(a, b, options, ws);
  EXPECT_EQ(ws.stats().solves, 2u);
  EXPECT_EQ(ws.stats().factorizations, 1u);
  EXPECT_EQ(ws.stats().factorization_reuses, 1u);
  // Reuse is keyed on an exact value match, so it can never change a bit.
  EXPECT_EQ(first.x, second.x);
  EXPECT_EQ(first.iterations, second.iterations);
  EXPECT_EQ(first.residual_norm, second.residual_norm);

  // Any value change (same pattern) forces a refactorization.
  a.add_to_entry(0, 0, 0.25);
  (void)solve_cg(a, b, options, ws);
  EXPECT_EQ(ws.stats().factorizations, 2u);

  // invalidate() drops the cached key even though the values still match.
  ws.invalidate();
  (void)solve_cg(a, b, options, ws);
  EXPECT_EQ(ws.stats().factorizations, 3u);
  EXPECT_EQ(ws.stats().factorization_reuses, 1u);
}

TEST(SolverCore, BatchSolveSharesOneFactorizationBitIdentically) {
  Rng rng(11);
  const CsrMatrix a = random_spd_laplacian(rng, 9, 7, 5);
  std::vector<Vector> rhs;
  for (int k = 0; k < 3; ++k) rhs.push_back(random_vector(rng, a.rows()));
  CgOptions options;
  options.preconditioner = CgPreconditioner::kIncompleteCholesky;

  CgWorkspace ws;
  const std::vector<CgResult> batch = solve_cg_batch(a, rhs, options, ws);
  ASSERT_EQ(batch.size(), rhs.size());
  EXPECT_EQ(ws.stats().solves, rhs.size());
  EXPECT_EQ(ws.stats().factorizations, 1u);
  EXPECT_EQ(ws.stats().factorization_reuses, rhs.size() - 1);
  for (std::size_t k = 0; k < rhs.size(); ++k) {
    const CgResult standalone = solve_cg(a, rhs[k], options);
    EXPECT_EQ(batch[k].x, standalone.x) << "rhs " << k;
    EXPECT_EQ(batch[k].iterations, standalone.iterations) << "rhs " << k;
    EXPECT_EQ(batch[k].residual_norm, standalone.residual_norm) << "rhs " << k;
    EXPECT_TRUE(batch[k].converged) << "rhs " << k;
  }
}

TEST(SolverCore, MultiplyIntoMatchesMultiply) {
  Rng rng(23);
  const CsrMatrix a = random_spd_laplacian(rng, 6, 10, 3);
  const Vector x = random_vector(rng, a.rows());
  Vector y;
  a.multiply_into(x, y);
  EXPECT_EQ(y, a.multiply(x));
}

// ---------------------------------------------------------------------------
// CG edge paths
// ---------------------------------------------------------------------------

TEST(SolverCore, ZeroRhsConvergesInZeroIterations) {
  Rng rng(5);
  const CsrMatrix a = random_spd_laplacian(rng, 6, 6, 3);
  const Vector b(a.rows(), 0.0);
  for (CgPreconditioner p :
       {CgPreconditioner::kJacobi, CgPreconditioner::kIncompleteCholesky}) {
    CgOptions options;
    options.preconditioner = p;
    const CgResult result = solve_cg(a, b, options);
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.iterations, 0u);
    EXPECT_EQ(result.residual_norm, 0.0);
    EXPECT_EQ(result.x, Vector(a.rows(), 0.0));
  }
}

TEST(SolverCore, WarmStartAtTheSolutionConvergesInZeroIterations) {
  Rng rng(9);
  const CsrMatrix a = random_spd_laplacian(rng, 8, 8, 4);
  const Vector b = random_vector(rng, a.rows());
  CgOptions options;
  options.relative_tolerance = 1e-12;
  options.preconditioner = CgPreconditioner::kIncompleteCholesky;
  const CgResult cold = solve_cg(a, b, options);
  ASSERT_TRUE(cold.converged);
  EXPECT_GT(cold.iterations, 0u);

  options.x0 = cold.x;
  const CgResult warm = solve_cg(a, b, options);
  EXPECT_TRUE(warm.converged);
  EXPECT_EQ(warm.iterations, 0u);
  EXPECT_EQ(warm.x, cold.x);
}

TEST(SolverCore, MaxIterationExitHonoursTheCertifiedCriterion) {
  Rng rng(13);
  const CsrMatrix a = random_spd_laplacian(rng, 12, 12, 2);
  const Vector b = random_vector(rng, a.rows());

  // Tight tolerance, one iteration: the solve must report non-convergence
  // with the true residual, not silently accept the iterate.
  CgOptions tight;
  tight.relative_tolerance = 1e-12;
  tight.max_iterations = 1;
  tight.preconditioner = CgPreconditioner::kJacobi;
  const CgResult failed = solve_cg(a, b, tight);
  EXPECT_EQ(failed.iterations, 1u);
  EXPECT_FALSE(failed.converged);
  // residual_norm is the true ||b - A x||, recomputed at exit.
  Vector check = a.multiply(failed.x);
  for (std::size_t i = 0; i < check.size(); ++i) check[i] = b[i] - check[i];
  EXPECT_NEAR(failed.residual_norm, norm2(check),
              1e-12 * (1.0 + norm2(check)));

  // Loose tolerance, same single iteration: the certified normwise
  // backward-error criterion accepts the iterate at the cap.
  CgOptions loose = tight;
  loose.relative_tolerance = 0.5;
  const CgResult accepted = solve_cg(a, b, loose);
  EXPECT_EQ(accepted.iterations, 1u);
  EXPECT_TRUE(accepted.converged);
  EXPECT_LE(accepted.residual_norm,
            loose.relative_tolerance *
                (a.infinity_norm() * norm2(accepted.x) + norm2(b)));
}

TEST(SolverCore, RejectsShapeMismatchesAndIndefiniteMatrices) {
  TripletList rect(2, 3);
  rect.add(0, 0, 1.0);
  EXPECT_THROW(solve_cg(CsrMatrix(rect), Vector(2, 1.0)), InvalidArgument);

  TripletList square(2, 2);
  square.add(0, 0, 1.0);
  square.add(1, 1, 1.0);
  const CsrMatrix identity(square);
  EXPECT_THROW(solve_cg(identity, Vector(3, 1.0)), InvalidArgument);

  TripletList negative(2, 2);
  negative.add(0, 0, 1.0);
  negative.add(1, 1, -1.0);
  EXPECT_THROW(solve_cg(CsrMatrix(negative), Vector(2, 1.0)), NumericalError);
}

// ---------------------------------------------------------------------------
// SSOR fallback
// ---------------------------------------------------------------------------

TEST(SolverCore, FactorizationFallsBackToSsorWhenAPivotBreaksDown) {
  // Positive diagonal but indefinite: the IC pivot at row 1 is
  // 1 - 2^2 = -3, so factor() must fall back to SSOR,
  // M = (D + L) D^{-1} (D + L)^T = [[1, 2], [2, 5]].
  TripletList t(2, 2);
  t.add(0, 0, 1.0);
  t.add(1, 1, 1.0);
  t.add(0, 1, 2.0);
  t.add(1, 0, 2.0);
  const CsrMatrix a(t);

  IcPreconditioner precond;
  precond.factor(a);
  EXPECT_TRUE(precond.ssor_fallback());
  const Vector r{1.0, 1.0};
  Vector z;
  precond.apply(r, z);
  ASSERT_EQ(z.size(), 2u);
  EXPECT_NEAR(z[0], 3.0, 1e-12);   // M^{-1} [1 1]^T = [3 -1]^T
  EXPECT_NEAR(z[1], -1.0, 1e-12);

  // Positive control: a genuinely SPD operator factors without fallback.
  Rng rng(17);
  IcPreconditioner healthy;
  healthy.factor(random_spd_laplacian(rng, 5, 5, 2));
  EXPECT_FALSE(healthy.ssor_fallback());
}

// ---------------------------------------------------------------------------
// Zero-scale fault severing (the crash this PR fixes)
// ---------------------------------------------------------------------------

TEST(Severing, ZeroScaleRegionKeepsTheSparsityPattern) {
  const Length side{10e-3};
  const GridMesh nominal(side, side, 21, 21, 2e-3);
  const MeshPerturbation cut{
      EdgeScaleRegion{Length{0.0}, Length{0.0}, Length{3e-3}, Length{3e-3},
                      0.0}};
  const GridMesh damaged(side, side, 21, 21, 2e-3, cut);
  ASSERT_TRUE(damaged.perturbed());
  const CsrMatrix a_nominal(nominal.laplacian());
  const CsrMatrix a_damaged(damaged.laplacian());
  // Severed edges stay as stored zeros: identical pattern, so cached
  // symbolic factorizations and in-place stamping stay valid.
  EXPECT_EQ(a_damaged.nonzero_count(), a_nominal.nonzero_count());
  EXPECT_EQ(a_damaged.row_offsets(), a_nominal.row_offsets());
  EXPECT_EQ(a_damaged.col_indices(), a_nominal.col_indices());
}

TEST(Severing, FullyCutRegionGroundsFloatingNodesInsteadOfAborting) {
  const Length side{10e-3};
  const double rail = 1.0;
  const MeshPerturbation cut{
      EdgeScaleRegion{Length{0.0}, Length{0.0}, Length{3e-3}, Length{3e-3},
                      0.0}};
  const GridMesh mesh(side, side, 21, 21, 2e-3, cut);

  // One VR patch *inside* the dead region (its nodes survive through
  // their source shunts), one healthy patch far away.
  std::vector<VrAttachment> vrs;
  for (const auto& center :
       std::vector<std::pair<double, double>>{{1.5e-3, 1.5e-3},
                                              {8e-3, 8e-3}}) {
    const auto patch =
        patch_attachment(mesh, Length{center.first}, Length{center.second},
                         Length{1.5e-3}, Voltage{rail}, Resistance{100e-6});
    vrs.insert(vrs.end(), patch.begin(), patch.end());
  }
  const Vector sinks = uniform_sinks(mesh, Current{100.0});

  IrDropOptions options;
  options.warm_start_voltage = rail;
  IrDropResult result;
  // Before the fix this threw NumericalError: the severed nodes left a
  // zero diagonal (singular operator) in the CG solve.
  ASSERT_NO_THROW(result = solve_irdrop(mesh, vrs, sinks, options));

  // The 6x6 node block strictly inside the cut is severed; the 3x3 VR
  // patch within it keeps its shunts, the other 27 nodes float.
  EXPECT_EQ(result.floating_nodes, 27u);
  EXPECT_EQ(result.min_node_voltage.value, 0.0);  // dead rail reads 0 V
  EXPECT_GT(result.max_node_voltage.value, 0.9);
  ASSERT_EQ(result.node_voltages.size(), mesh.node_count());
  for (double v : result.node_voltages) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, rail + 1e-9);
  }
  EXPECT_TRUE(std::isfinite(result.grid_loss.value));
  EXPECT_TRUE(std::isfinite(result.series_loss.value));
  for (double i : result.vr_currents) EXPECT_TRUE(std::isfinite(i));

  // An intact mesh keeps reporting zero floating nodes.
  const GridMesh intact(side, side, 21, 21, 2e-3);
  std::vector<VrAttachment> intact_vrs;
  for (const auto& center :
       std::vector<std::pair<double, double>>{{1.5e-3, 1.5e-3},
                                              {8e-3, 8e-3}}) {
    const auto patch =
        patch_attachment(intact, Length{center.first}, Length{center.second},
                         Length{1.5e-3}, Voltage{rail}, Resistance{100e-6});
    intact_vrs.insert(intact_vrs.end(), patch.begin(), patch.end());
  }
  const IrDropResult healthy =
      solve_irdrop(intact, intact_vrs, uniform_sinks(intact, Current{100.0}),
                   options);
  EXPECT_EQ(healthy.floating_nodes, 0u);
  EXPECT_GT(healthy.min_node_voltage.value, 0.9);
}

// ---------------------------------------------------------------------------
// Geometric multigrid preconditioner
// ---------------------------------------------------------------------------

TEST(Multigrid, MatchesDenseReferenceOnRandomSpdLaplacians) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    const std::size_t nx = 5 + seed;  // 6x7 up to 10x11 grids
    const std::size_t ny = nx + 1;
    const CsrMatrix a = random_spd_laplacian(rng, nx, ny, 4);
    const Vector b = random_vector(rng, a.rows());
    const Vector reference = dense_cholesky_solve(a, b);

    const MgSymbolic hierarchy(nx, ny);
    CgOptions options;
    options.relative_tolerance = 1e-13;
    options.preconditioner = CgPreconditioner::kMultigrid;
    options.mg_symbolic = &hierarchy;
    const CgResult result = solve_cg(a, b, options);
    ASSERT_TRUE(result.converged) << "seed " << seed;
    ASSERT_EQ(result.x.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i)
      EXPECT_NEAR(result.x[i], reference[i],
                  1e-8 * (1.0 + std::fabs(reference[i])))
          << "seed " << seed << " node " << i;
  }
}

TEST(Multigrid, IterationCountStaysFlatAcrossRefinement) {
  // Mesh-size independence is the multigrid property: the same solve at
  // 17x17 through 65x65 must not grow its iteration count by more than
  // 2x (IC(0) roughly doubles per refinement step on this ladder).
  const Length side{10e-3};
  std::size_t min_iters = 0, max_iters = 0;
  for (std::size_t nodes : {17ul, 33ul, 65ul}) {
    const GridMesh mesh(side, side, nodes, nodes, 2e-3);
    const auto vrs =
        patch_attachment(mesh, Length{5e-3}, Length{0.0}, Length{1.5e-3},
                         Voltage{1.0}, Resistance{100e-6});
    IrDropOptions options;
    options.warm_start_voltage = 1.0;
    options.preconditioner = CgPreconditioner::kMultigrid;
    const IrDropResult result =
        solve_irdrop(mesh, vrs, uniform_sinks(mesh, Current{100.0}), options);
    if (min_iters == 0 || result.cg_iterations < min_iters)
      min_iters = result.cg_iterations;
    if (result.cg_iterations > max_iters) max_iters = result.cg_iterations;
  }
  EXPECT_GT(min_iters, 0u);
  EXPECT_LE(max_iters, 2 * min_iters)
      << "multigrid iterations grew from " << min_iters << " to "
      << max_iters << " across the refinement ladder";
}

TEST(Multigrid, WorkspaceReusesHierarchyBitIdentically) {
  Rng rng(29);
  CsrMatrix a = random_spd_laplacian(rng, 9, 9, 4);
  const Vector b = random_vector(rng, a.rows());
  const MgSymbolic hierarchy(9, 9);
  CgOptions options;
  options.preconditioner = CgPreconditioner::kMultigrid;
  options.mg_symbolic = &hierarchy;

  CgWorkspace ws;
  const CgResult first = solve_cg(a, b, options, ws);
  const CgResult second = solve_cg(a, b, options, ws);
  EXPECT_EQ(ws.stats().factorizations, 1u);
  EXPECT_EQ(ws.stats().factorization_reuses, 1u);
  EXPECT_EQ(first.x, second.x);
  EXPECT_EQ(first.iterations, second.iterations);
  EXPECT_EQ(first.residual_norm, second.residual_norm);

  // A value change (same pattern) recomputes the Galerkin hierarchy.
  a.add_to_entry(0, 0, 0.25);
  (void)solve_cg(a, b, options, ws);
  EXPECT_EQ(ws.stats().factorizations, 2u);
}

TEST(Multigrid, SwitchingPreconditionerKindsRefactors) {
  // One workspace alternating IC and multigrid on the same operator: each
  // switch is a fresh factorization (the cached kind no longer matches),
  // and both kinds keep returning certified results.
  Rng rng(31);
  const CsrMatrix a = random_spd_laplacian(rng, 8, 8, 3);
  const Vector b = random_vector(rng, a.rows());
  const MgSymbolic hierarchy(8, 8);
  CgWorkspace ws;

  CgOptions ic;
  ic.preconditioner = CgPreconditioner::kIncompleteCholesky;
  CgOptions mg;
  mg.preconditioner = CgPreconditioner::kMultigrid;
  mg.mg_symbolic = &hierarchy;

  const CgResult r1 = solve_cg(a, b, ic, ws);
  const CgResult r2 = solve_cg(a, b, mg, ws);
  const CgResult r3 = solve_cg(a, b, ic, ws);
  EXPECT_EQ(ws.stats().factorizations, 3u);
  EXPECT_EQ(ws.stats().factorization_reuses, 0u);
  for (const CgResult* r : {&r1, &r2, &r3}) ASSERT_TRUE(r->converged);
  // Same certified solution through both kinds.
  for (std::size_t i = 0; i < a.rows(); ++i)
    EXPECT_NEAR(r2.x[i], r1.x[i], 1e-8 * (1.0 + std::fabs(r1.x[i])));
  EXPECT_EQ(r3.x, r1.x);  // same kind, same operator: bit-identical
}

TEST(Multigrid, RejectsMissingOrMismatchedHierarchy) {
  Rng rng(37);
  const CsrMatrix a = random_spd_laplacian(rng, 8, 8, 3);
  const Vector b = random_vector(rng, a.rows());
  CgOptions options;
  options.preconditioner = CgPreconditioner::kMultigrid;
  EXPECT_THROW(solve_cg(a, b, options), InvalidArgument);  // no hierarchy

  const MgSymbolic wrong(4, 4);  // 16 rows against a 64-row operator
  options.mg_symbolic = &wrong;
  EXPECT_THROW(solve_cg(a, b, options), InvalidArgument);
}

TEST(Multigrid, SolvesSeveredMeshLikeIc) {
  // Grounded floating nodes perturb the operator values but not its
  // pattern, so the grid-stencil hierarchy still applies.
  const Length side{10e-3};
  const MeshPerturbation cut{
      EdgeScaleRegion{Length{0.0}, Length{0.0}, Length{3e-3}, Length{3e-3},
                      0.0}};
  const GridMesh mesh(side, side, 21, 21, 2e-3, cut);
  std::vector<VrAttachment> vrs;
  for (const auto& center :
       std::vector<std::pair<double, double>>{{1.5e-3, 1.5e-3},
                                              {8e-3, 8e-3}}) {
    const auto patch =
        patch_attachment(mesh, Length{center.first}, Length{center.second},
                         Length{1.5e-3}, Voltage{1.0}, Resistance{100e-6});
    vrs.insert(vrs.end(), patch.begin(), patch.end());
  }
  const Vector sinks = uniform_sinks(mesh, Current{100.0});
  IrDropOptions ic;
  ic.warm_start_voltage = 1.0;
  IrDropOptions mg = ic;
  mg.preconditioner = CgPreconditioner::kMultigrid;
  const IrDropResult ic_result = solve_irdrop(mesh, vrs, sinks, ic);
  const IrDropResult mg_result = solve_irdrop(mesh, vrs, sinks, mg);
  EXPECT_EQ(mg_result.floating_nodes, ic_result.floating_nodes);
  ASSERT_EQ(mg_result.node_voltages.size(), ic_result.node_voltages.size());
  for (std::size_t i = 0; i < ic_result.node_voltages.size(); ++i)
    EXPECT_NEAR(mg_result.node_voltages[i], ic_result.node_voltages[i], 1e-6);
}

// ---------------------------------------------------------------------------
// Block multi-RHS solves
// ---------------------------------------------------------------------------

TEST(BlockCg, EveryColumnMeetsTheCertifiedCriterion) {
  Rng rng(41);
  const CsrMatrix a = random_spd_laplacian(rng, 10, 9, 5);
  std::vector<Vector> rhs;
  for (int k = 0; k < 5; ++k) rhs.push_back(random_vector(rng, a.rows()));
  CgOptions options;
  options.relative_tolerance = 1e-12;
  options.preconditioner = CgPreconditioner::kIncompleteCholesky;

  const SolverCounters before = solver_counters();
  CgWorkspace ws;
  const std::vector<CgResult> block = solve_cg_block(a, rhs, options, ws);
  const SolverCounters delta = solver_counters() - before;
  ASSERT_EQ(block.size(), rhs.size());
  const double a_inf = a.infinity_norm();
  for (std::size_t k = 0; k < rhs.size(); ++k) {
    ASSERT_TRUE(block[k].converged) << "rhs " << k;
    Vector residual = a.multiply(block[k].x);
    for (std::size_t i = 0; i < residual.size(); ++i)
      residual[i] = rhs[k][i] - residual[i];
    EXPECT_LE(norm2(residual),
              options.relative_tolerance *
                      (a_inf * norm2(block[k].x) + norm2(rhs[k])) *
                  (1.0 + 1e-12))
        << "rhs " << k;
    // And the solution agrees with a standalone solve to solver accuracy.
    const CgResult standalone = solve_cg(a, rhs[k], options);
    for (std::size_t i = 0; i < standalone.x.size(); ++i)
      EXPECT_NEAR(block[k].x[i], standalone.x[i],
                  1e-7 * (1.0 + std::fabs(standalone.x[i])))
          << "rhs " << k;
  }
  EXPECT_EQ(delta.cg_solves, rhs.size());
  EXPECT_EQ(delta.cg_block_panels, 1u);
  EXPECT_EQ(delta.cg_block_columns + 0u, rhs.size());
  EXPECT_EQ(ws.stats().solves, rhs.size());
}

TEST(BlockCg, WideBatchesAreChunkedIntoPanels) {
  Rng rng(43);
  const CsrMatrix a = random_spd_laplacian(rng, 8, 8, 4);
  std::vector<Vector> rhs;
  for (std::size_t k = 0; k < kMaxCgBlockWidth + 3; ++k)
    rhs.push_back(random_vector(rng, a.rows()));
  CgOptions options;
  options.preconditioner = CgPreconditioner::kIncompleteCholesky;

  const SolverCounters before = solver_counters();
  CgWorkspace ws;
  const std::vector<CgResult> block = solve_cg_block(a, rhs, options, ws);
  const SolverCounters delta = solver_counters() - before;
  ASSERT_EQ(block.size(), rhs.size());
  for (std::size_t k = 0; k < rhs.size(); ++k)
    EXPECT_TRUE(block[k].converged) << "rhs " << k;
  EXPECT_EQ(delta.cg_block_panels, 2u);  // 16 + 3
  EXPECT_EQ(delta.cg_solves, rhs.size());
}

TEST(BlockCg, ZeroColumnsShortCircuitAndMixedPanelsSolve) {
  Rng rng(47);
  const CsrMatrix a = random_spd_laplacian(rng, 9, 8, 4);
  std::vector<Vector> rhs;
  rhs.push_back(Vector(a.rows(), 0.0));
  rhs.push_back(random_vector(rng, a.rows()));
  rhs.push_back(Vector(a.rows(), 0.0));
  CgOptions options;
  options.preconditioner = CgPreconditioner::kIncompleteCholesky;

  CgWorkspace ws;
  const std::vector<CgResult> block = solve_cg_block(a, rhs, options, ws);
  ASSERT_EQ(block.size(), 3u);
  for (std::size_t k : {0ul, 2ul}) {
    EXPECT_TRUE(block[k].converged);
    EXPECT_EQ(block[k].iterations, 0u);
    EXPECT_EQ(block[k].x, Vector(a.rows(), 0.0));
  }
  EXPECT_TRUE(block[1].converged);
  EXPECT_GT(block[1].iterations, 0u);
}

TEST(BlockCg, DuplicateColumnsFallBackAndStillCertify) {
  // Identical right-hand sides make the block Gram matrix rank-deficient
  // on the first iteration; the solve must finish through the scalar
  // fallback instead of failing.
  Rng rng(53);
  const CsrMatrix a = random_spd_laplacian(rng, 8, 9, 4);
  const Vector b = random_vector(rng, a.rows());
  const std::vector<Vector> rhs{b, b, b};
  CgOptions options;
  options.relative_tolerance = 1e-12;
  options.preconditioner = CgPreconditioner::kIncompleteCholesky;

  CgWorkspace ws;
  const std::vector<CgResult> block = solve_cg_block(a, rhs, options, ws);
  const Vector reference = dense_cholesky_solve(a, b);
  for (std::size_t k = 0; k < rhs.size(); ++k) {
    ASSERT_TRUE(block[k].converged) << "rhs " << k;
    for (std::size_t i = 0; i < reference.size(); ++i)
      EXPECT_NEAR(block[k].x[i], reference[i],
                  1e-7 * (1.0 + std::fabs(reference[i])))
          << "rhs " << k;
  }
}

TEST(BlockCg, WarmStartRetiresSolvedColumnsUpFront) {
  Rng rng(59);
  const CsrMatrix a = random_spd_laplacian(rng, 9, 9, 4);
  const Vector b0 = random_vector(rng, a.rows());
  const Vector b1 = random_vector(rng, a.rows());
  CgOptions options;
  options.relative_tolerance = 1e-12;
  options.preconditioner = CgPreconditioner::kIncompleteCholesky;
  const CgResult seed_solve = solve_cg(a, b0, options);
  ASSERT_TRUE(seed_solve.converged);

  // x0 warm-starts every column: it is b0's solution, so column 0 retires
  // in the pre-iteration certification pass with zero iterations while
  // column 1 still has to iterate.
  options.x0 = seed_solve.x;
  CgWorkspace ws;
  const std::vector<CgResult> block =
      solve_cg_block(a, {b0, b1}, options, ws);
  ASSERT_EQ(block.size(), 2u);
  EXPECT_TRUE(block[0].converged);
  EXPECT_EQ(block[0].iterations, 0u);
  EXPECT_EQ(block[0].x, seed_solve.x);
  EXPECT_TRUE(block[1].converged);
  EXPECT_GT(block[1].iterations, 0u);
}

// ---------------------------------------------------------------------------
// Batch-loop semantics and counter deltas
// ---------------------------------------------------------------------------

TEST(SolverCore, BatchIsBitIdenticalToStandaloneLoopWithMatchingCounters) {
  // The header promises solve_cg_batch results are bit-identical to a
  // loop of standalone solve_cg calls, and the global counter delta must
  // agree with the per-result iteration counts.
  Rng rng(61);
  const CsrMatrix a = random_spd_laplacian(rng, 9, 10, 5);
  std::vector<Vector> rhs;
  for (int k = 0; k < 4; ++k) rhs.push_back(random_vector(rng, a.rows()));
  CgOptions options;
  options.preconditioner = CgPreconditioner::kIncompleteCholesky;

  const SolverCounters before = solver_counters();
  CgWorkspace ws;
  const std::vector<CgResult> batch = solve_cg_batch(a, rhs, options, ws);
  const SolverCounters delta = solver_counters() - before;

  std::size_t total_iterations = 0;
  for (std::size_t k = 0; k < rhs.size(); ++k) {
    const CgResult standalone = solve_cg(a, rhs[k], options);
    EXPECT_EQ(batch[k].x, standalone.x) << "rhs " << k;
    EXPECT_EQ(batch[k].iterations, standalone.iterations) << "rhs " << k;
    EXPECT_EQ(batch[k].residual_norm, standalone.residual_norm)
        << "rhs " << k;
    total_iterations += batch[k].iterations;
  }
  EXPECT_EQ(delta.cg_solves, rhs.size());
  EXPECT_EQ(delta.cg_iterations, total_iterations);
  EXPECT_EQ(delta.precond_factorizations, 1u);
  EXPECT_EQ(delta.precond_reuses, rhs.size() - 1);
  EXPECT_EQ(delta.cg_block_panels, 0u);  // the loop never launches panels
  EXPECT_EQ(delta.cg_block_columns, 0u);
}

TEST(SolverCore, WarmStartWithZeroRhsReturnsTheExactZeroSolution) {
  // b = 0 has the unique SPD solution x = 0; the early return must hold
  // even when a warm start is supplied (the x0 path would otherwise
  // compute a residual from a stale iterate).
  Rng rng(67);
  const CsrMatrix a = random_spd_laplacian(rng, 7, 7, 3);
  CgOptions options;
  options.preconditioner = CgPreconditioner::kIncompleteCholesky;
  options.x0 = random_vector(rng, a.rows());
  const CgResult result = solve_cg(a, Vector(a.rows(), 0.0), options);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0u);
  EXPECT_EQ(result.residual_norm, 0.0);
  EXPECT_EQ(result.x, Vector(a.rows(), 0.0));
}

TEST(SolverCore, DefaultIterationCapIsTenNPlusOneHundred) {
  // The documented default (max_iterations = 0) resolves to 10 * n + 100.
  // An unreachable tolerance makes the solve run to the cap exactly.
  Rng rng(71);
  const CsrMatrix a = random_spd_laplacian(rng, 3, 3, 2);
  const Vector b = random_vector(rng, a.rows());
  CgOptions options;
  options.relative_tolerance = 1e-300;
  options.preconditioner = CgPreconditioner::kJacobi;
  const CgResult result = solve_cg(a, b, options);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 10 * a.rows() + 100);
}

TEST(SolverCore, WorkspaceKeyDistinguishesOperatorsAcrossAlternation) {
  // Alternating two same-pattern operators through one workspace: every
  // solve is a key miss (digest matches, values differ), each refactors,
  // and results stay bit-identical to fresh-workspace solves.
  Rng rng(73);
  const CsrMatrix a1 = random_spd_laplacian(rng, 8, 8, 3);
  CsrMatrix a2 = a1;
  a2.add_to_entry(0, 0, 0.5);
  const Vector b = random_vector(rng, a1.rows());
  CgOptions options;
  options.preconditioner = CgPreconditioner::kIncompleteCholesky;

  CgWorkspace ws;
  const CgResult r1 = solve_cg(a1, b, options, ws);
  const CgResult r2 = solve_cg(a2, b, options, ws);
  const CgResult r3 = solve_cg(a1, b, options, ws);
  EXPECT_EQ(ws.stats().factorizations, 3u);
  EXPECT_EQ(ws.stats().factorization_reuses, 0u);
  EXPECT_EQ(r1.x, r3.x);
  EXPECT_EQ(r1.iterations, r3.iterations);
  EXPECT_EQ(r1.x, solve_cg(a1, b, options).x);
  EXPECT_EQ(r2.x, solve_cg(a2, b, options).x);
}

// ---------------------------------------------------------------------------
// IR-drop batch entry point
// ---------------------------------------------------------------------------

TEST(IrDropBatch, LoopModeIsBitIdenticalToRepeatedSolves) {
  const Length side{10e-3};
  const auto assembled = assemble_mesh(side, side, 21, 21, 2e-3);
  const auto vrs =
      patch_attachment(assembled->mesh, Length{5e-3}, Length{0.0},
                       Length{1.5e-3}, Voltage{1.0}, Resistance{100e-6});
  std::vector<Vector> sink_maps;
  for (std::size_t j = 0; j < 3; ++j) {
    Vector sinks = uniform_sinks(assembled->mesh, Current{50.0});
    sinks[100 + 37 * j] += 5.0;
    sink_maps.push_back(std::move(sinks));
  }
  IrDropOptions options;
  options.warm_start_voltage = 1.0;
  options.batch_block = false;

  const std::vector<IrDropResult> batch =
      solve_irdrop_batch(*assembled, vrs, sink_maps, options);
  ASSERT_EQ(batch.size(), sink_maps.size());
  for (std::size_t j = 0; j < sink_maps.size(); ++j) {
    const IrDropResult single =
        solve_irdrop(*assembled, vrs, sink_maps[j], options);
    EXPECT_EQ(batch[j].node_voltages, single.node_voltages) << "map " << j;
    EXPECT_EQ(batch[j].cg_iterations, single.cg_iterations) << "map " << j;
    EXPECT_EQ(batch[j].vr_currents, single.vr_currents) << "map " << j;
  }
}

TEST(IrDropBatch, BlockModeCertifiesToTheSameAccuracy) {
  const Length side{10e-3};
  const auto assembled = assemble_mesh(side, side, 21, 21, 2e-3);
  const auto vrs =
      patch_attachment(assembled->mesh, Length{5e-3}, Length{0.0},
                       Length{1.5e-3}, Voltage{1.0}, Resistance{100e-6});
  std::vector<Vector> sink_maps;
  for (std::size_t j = 0; j < 4; ++j) {
    Vector sinks = uniform_sinks(assembled->mesh, Current{50.0});
    sinks[50 + 41 * j] += 5.0;
    sink_maps.push_back(std::move(sinks));
  }
  for (CgPreconditioner p : {CgPreconditioner::kIncompleteCholesky,
                             CgPreconditioner::kMultigrid}) {
    IrDropOptions options;
    options.warm_start_voltage = 1.0;
    options.preconditioner = p;
    options.batch_block = true;
    const SolverCounters before = solver_counters();
    const std::vector<IrDropResult> batch =
        solve_irdrop_batch(*assembled, vrs, sink_maps, options);
    const SolverCounters delta = solver_counters() - before;
    ASSERT_EQ(batch.size(), sink_maps.size());
    EXPECT_EQ(delta.cg_block_panels, 1u);
    options.batch_block = false;
    for (std::size_t j = 0; j < sink_maps.size(); ++j) {
      const IrDropResult single =
          solve_irdrop(*assembled, vrs, sink_maps[j], options);
      ASSERT_EQ(batch[j].node_voltages.size(), single.node_voltages.size());
      for (std::size_t i = 0; i < single.node_voltages.size(); ++i)
        EXPECT_NEAR(batch[j].node_voltages[i], single.node_voltages[i], 1e-9)
            << "map " << j << " node " << i;
    }
  }
}

TEST(IrDropBatch, AssembledMeshCachesTheHierarchy) {
  const auto assembled = assemble_mesh(Length{10e-3}, Length{10e-3}, 33, 33,
                                       2e-3);
  EXPECT_FALSE(assembled->mg_symbolic.empty());
  EXPECT_EQ(assembled->mg_symbolic.rows(), assembled->mesh.node_count());
  EXPECT_GT(assembled->mg_symbolic.level_count(), 1u);
}

}  // namespace
}  // namespace vpd
