// Fault-injection & resilience subsystem: injection semantics in the
// evaluator (dropout redistribution, attach faults, derates, stage-2
// dropout, mesh damage), the N-0 bit-identity property, campaign
// determinism (parallel == serial, counter-based scenario sampling), and
// the closed-form degradation policy. Runs in its own ctest executable
// labelled `fault` so the threaded campaign paths can be exercised under
// -DVPD_SANITIZE=ON in isolation (ctest -L fault).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "vpd/arch/evaluator.hpp"
#include "vpd/common/error.hpp"
#include "vpd/core/explorer.hpp"
#include "vpd/fault/campaign.hpp"
#include "vpd/fault/fault_model.hpp"
#include "vpd/fault/resilience.hpp"

namespace vpd {
namespace {

/// The paper-mode options every sweep/explorer test pins (A2's published
/// 48 below-die VRs need the relaxed area budget), at a coarser mesh to
/// keep the campaign populations fast.
EvaluationOptions paper_options(std::size_t mesh_nodes = 41) {
  EvaluationOptions o;
  o.below_die_area_fraction = 1.6;
  o.mesh_nodes = mesh_nodes;
  return o;
}

std::vector<ArchitectureKind> fault_grid_architectures() {
  return {ArchitectureKind::kA1_InterposerPeriphery,
          ArchitectureKind::kA2_InterposerBelowDie,
          ArchitectureKind::kA3_TwoStage12V,
          ArchitectureKind::kA3_TwoStage6V};
}

// ---------------------------------------------------------------------------
// FaultInjection validation and fault-model lowering
// ---------------------------------------------------------------------------

TEST(FaultInjection, ValidatesIndicesOrderingAndScales) {
  FaultInjection f;
  f.dropped_sites = {5};
  EXPECT_THROW(f.validate(4, 0), InvalidArgument);  // out of range
  f.dropped_sites = {2, 1};
  EXPECT_THROW(f.validate(4, 0), InvalidArgument);  // unsorted
  f.dropped_sites = {0, 1, 2, 3};
  EXPECT_THROW(f.validate(4, 0), InfeasibleDesign);  // all dropped
  f.dropped_sites = {1};
  f.attach_scale = {{0, 0.0}};
  EXPECT_THROW(f.validate(4, 0), InvalidArgument);  // zero scale
  f.attach_scale = {{0, 10.0}};
  f.dropped_stage2 = {0};
  EXPECT_THROW(f.validate(4, 0), InvalidArgument);  // no stage 2
  EXPECT_THROW(f.validate(4, 1), InfeasibleDesign);  // all stage 2 dropped
  EXPECT_NO_THROW(f.validate(4, 2));
  EXPECT_FALSE(f.empty());
  EXPECT_TRUE(FaultInjection{}.empty());
}

TEST(FaultModel, LoweringCollapsesAndSortsEvents) {
  FaultSeverity severity;  // defaults: derate 0.5/1.25, attach 10x
  FaultScenario scenario;
  scenario.faults = {
      {FaultKind::kAttachFault, 3, Length{}, Length{}},
      {FaultKind::kVrDropout, 1, Length{}, Length{}},
      {FaultKind::kVrDerate, 1, Length{}, Length{}},   // dropout wins
      {FaultKind::kAttachFault, 3, Length{}, Length{}},  // compounds
      {FaultKind::kVrDerate, 0, Length{}, Length{}},
      {FaultKind::kStage2Dropout, 2, Length{}, Length{}},
      {FaultKind::kMeshRegionFault, 0, Length{5e-3}, Length{5e-3}},
  };
  const FaultInjection injection = to_injection(scenario, severity);
  EXPECT_EQ(injection.dropped_sites, std::vector<std::size_t>{1});
  ASSERT_EQ(injection.attach_scale.size(), 1u);
  EXPECT_EQ(injection.attach_scale[0].first, 3u);
  EXPECT_DOUBLE_EQ(injection.attach_scale[0].second, 100.0);  // 10 * 10
  ASSERT_EQ(injection.derates.size(), 1u);  // site 1's derate collapsed away
  EXPECT_EQ(injection.derates[0].first, 0u);
  EXPECT_DOUBLE_EQ(injection.derates[0].second.loss_scale, 1.25);
  EXPECT_EQ(injection.dropped_stage2, std::vector<std::size_t>{2});
  ASSERT_EQ(injection.mesh_perturbation.size(), 1u);
  EXPECT_DOUBLE_EQ(injection.mesh_perturbation[0].scale, 0.1);
  EXPECT_NO_THROW(injection.validate(4, 3));
  EXPECT_NO_THROW(to_injection(FaultScenario{"N-0", {}}, severity));
  // Scale 0 is the fully-severed-copper damage model, not an error; only
  // negative scales are rejected.
  severity.mesh_conductance_scale = 0.0;
  EXPECT_NO_THROW(to_injection(scenario, severity));
  severity.mesh_conductance_scale = -0.1;
  EXPECT_THROW(to_injection(scenario, severity), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Evaluator under injection
// ---------------------------------------------------------------------------

TEST(FaultEvaluator, A0RejectsInjection) {
  EvaluationOptions options = paper_options();
  options.faults.dropped_sites = {0};
  EXPECT_THROW(
      evaluate_architecture(ArchitectureKind::kA0_PcbConversion,
                            paper_system(), TopologyKind::kDsch,
                            DeviceTechnology::kGalliumNitride, options),
      InvalidArgument);
}

TEST(FaultEvaluator, DropoutRedistributesCurrentAcrossSurvivors) {
  const PowerDeliverySpec spec = paper_system();
  const EvaluationOptions nominal_options = paper_options(21);
  const ArchitectureEvaluation nominal = evaluate_architecture(
      ArchitectureKind::kA1_InterposerPeriphery, spec, TopologyKind::kDsch,
      DeviceTechnology::kGalliumNitride, nominal_options);
  EXPECT_TRUE(nominal.fault_site_currents.empty());  // nominal: spread only

  EvaluationOptions faulted_options = nominal_options;
  faulted_options.faults.dropped_sites = {0, 1};
  const ArchitectureEvaluation faulted = evaluate_architecture(
      ArchitectureKind::kA1_InterposerPeriphery, spec, TopologyKind::kDsch,
      DeviceTechnology::kGalliumNitride, faulted_options);

  ASSERT_EQ(faulted.fault_site_currents.size(), nominal.vr_count_stage2);
  EXPECT_EQ(faulted.fault_site_currents[0], 0.0);
  EXPECT_EQ(faulted.fault_site_currents[1], 0.0);
  double sum = 0.0;
  for (double amps : faulted.fault_site_currents) sum += amps;
  // Conservation: the survivors pick up the full die current.
  EXPECT_NEAR(sum, spec.die_current().value, 1e-6 * spec.die_current().value);
  // The deployment stays as designed; losses and droop get worse.
  EXPECT_EQ(faulted.vr_count_stage2, nominal.vr_count_stage2);
  EXPECT_LT(faulted.min_distribution_voltage->value,
            nominal.min_distribution_voltage->value);
  EXPECT_GT(faulted.total_loss().value, nominal.total_loss().value);
  // Neighbours of the dropped sites carry more than the far survivors.
  EXPECT_GT(*std::max_element(faulted.fault_site_currents.begin(),
                              faulted.fault_site_currents.end()),
            nominal.vr_current_spread->max);
}

TEST(FaultEvaluator, DerateScalesConversionLossOnly) {
  const PowerDeliverySpec spec = paper_system();
  const EvaluationOptions base = paper_options(21);
  const ArchitectureEvaluation nominal = evaluate_architecture(
      ArchitectureKind::kA2_InterposerBelowDie, spec, TopologyKind::kDsch,
      DeviceTechnology::kGalliumNitride, base);

  EvaluationOptions options = base;
  options.faults.derates = {{0, VrDerate{0.5, 1.25}}};
  const ArchitectureEvaluation derated = evaluate_architecture(
      ArchitectureKind::kA2_InterposerBelowDie, spec, TopologyKind::kDsch,
      DeviceTechnology::kGalliumNitride, options);

  // A derate never touches the mesh solve: the distribution solution is
  // bit-identical; the conversion loss rises (and, through the
  // self-consistent feed sizing, drags the upstream losses slightly).
  EXPECT_EQ(derated.min_distribution_voltage->value,
            nominal.min_distribution_voltage->value);
  EXPECT_EQ(derated.cg_iterations, nominal.cg_iterations);
  EXPECT_EQ(derated.vr_current_spread->max, nominal.vr_current_spread->max);
  EXPECT_GT(derated.conversion_stage2.value, nominal.conversion_stage2.value);
}

TEST(FaultEvaluator, AttachFaultDeepensDroop) {
  const PowerDeliverySpec spec = paper_system();
  const EvaluationOptions base = paper_options(21);
  const ArchitectureEvaluation nominal = evaluate_architecture(
      ArchitectureKind::kA1_InterposerPeriphery, spec, TopologyKind::kDsch,
      DeviceTechnology::kGalliumNitride, base);

  EvaluationOptions options = base;
  options.faults.attach_scale = {{0, 25.0}};
  const ArchitectureEvaluation faulted = evaluate_architecture(
      ArchitectureKind::kA1_InterposerPeriphery, spec, TopologyKind::kDsch,
      DeviceTechnology::kGalliumNitride, options);
  // The faulted site sources less; the rail droops deeper.
  EXPECT_LT(faulted.fault_site_currents[0], nominal.vr_current_spread->min);
  EXPECT_LT(faulted.min_distribution_voltage->value,
            nominal.min_distribution_voltage->value);
}

TEST(FaultEvaluator, MeshDamageDeepensDroop) {
  const PowerDeliverySpec spec = paper_system();
  const EvaluationOptions base = paper_options(21);
  const ArchitectureEvaluation nominal = evaluate_architecture(
      ArchitectureKind::kA1_InterposerPeriphery, spec, TopologyKind::kDsch,
      DeviceTechnology::kGalliumNitride, base);
  EvaluationOptions options = base;
  const double side = spec.die_side().value;
  options.faults.mesh_perturbation = {
      EdgeScaleRegion{Length{0.3 * side}, Length{0.3 * side},
                      Length{0.7 * side}, Length{0.7 * side}, 0.1}};
  const ArchitectureEvaluation damaged = evaluate_architecture(
      ArchitectureKind::kA1_InterposerPeriphery, spec, TopologyKind::kDsch,
      DeviceTechnology::kGalliumNitride, options);
  EXPECT_LT(damaged.min_distribution_voltage->value,
            nominal.min_distribution_voltage->value);
}

TEST(FaultEvaluator, Stage2DropoutLoadsSurvivorsNotTheDesign) {
  const PowerDeliverySpec spec = paper_system();
  const EvaluationOptions base = paper_options(21);
  const ArchitectureEvaluation nominal = evaluate_architecture(
      ArchitectureKind::kA3_TwoStage12V, spec, TopologyKind::kDsch,
      DeviceTechnology::kGalliumNitride, base);

  EvaluationOptions options = base;
  options.faults.dropped_stage2 = {0, 1, 2, 3};
  const ArchitectureEvaluation faulted = evaluate_architecture(
      ArchitectureKind::kA3_TwoStage12V, spec, TopologyKind::kDsch,
      DeviceTechnology::kGalliumNitride, options);

  // Survivors carry more current -> more stage-2 loss; the deployment
  // (both stage counts) is still the design-time one.
  EXPECT_GT(faulted.conversion_stage2.value, nominal.conversion_stage2.value);
  EXPECT_EQ(faulted.vr_count_stage2, nominal.vr_count_stage2);
  EXPECT_EQ(faulted.vr_count_stage1, nominal.vr_count_stage1);

  // Dropping every stage-2 VR is not a solvable fault state.
  EvaluationOptions fatal = base;
  fatal.faults.dropped_stage2.resize(nominal.vr_count_stage2);
  for (std::size_t i = 0; i < fatal.faults.dropped_stage2.size(); ++i)
    fatal.faults.dropped_stage2[i] = i;
  EXPECT_THROW(
      evaluate_architecture(ArchitectureKind::kA3_TwoStage12V, spec,
                            TopologyKind::kDsch,
                            DeviceTechnology::kGalliumNitride, fatal),
      InfeasibleDesign);
}

// ---------------------------------------------------------------------------
// Campaigns
// ---------------------------------------------------------------------------

void expect_bit_identical(const ArchitectureEvaluation& a,
                          const ArchitectureEvaluation& b,
                          const std::string& label) {
  EXPECT_EQ(a.total_loss().value, b.total_loss().value) << label;
  EXPECT_EQ(a.vertical_loss.value, b.vertical_loss.value) << label;
  EXPECT_EQ(a.horizontal_loss.value, b.horizontal_loss.value) << label;
  EXPECT_EQ(a.conversion_stage1.value, b.conversion_stage1.value) << label;
  EXPECT_EQ(a.conversion_stage2.value, b.conversion_stage2.value) << label;
  EXPECT_EQ(a.input_power.value, b.input_power.value) << label;
  EXPECT_EQ(a.cg_iterations, b.cg_iterations) << label;
  ASSERT_EQ(a.min_distribution_voltage.has_value(),
            b.min_distribution_voltage.has_value())
      << label;
  if (a.min_distribution_voltage) {
    EXPECT_EQ(a.min_distribution_voltage->value,
              b.min_distribution_voltage->value)
        << label;
  }
  ASSERT_EQ(a.vr_current_spread.has_value(), b.vr_current_spread.has_value())
      << label;
  if (a.vr_current_spread) {
    EXPECT_EQ(a.vr_current_spread->min, b.vr_current_spread->min) << label;
    EXPECT_EQ(a.vr_current_spread->max, b.vr_current_spread->max) << label;
  }
  EXPECT_EQ(a.fault_site_currents, b.fault_site_currents) << label;
}

// Property (issue satellite): the N-0 scenario of a fault campaign —
// evaluated through the sweep engine with an explicitly empty injection —
// reproduces the nominal ArchitectureEvaluation bit for bit for every
// architecture x topology of the default grid.
TEST(FaultCampaign, NominalScenarioMatchesExplorerBitForBit) {
  const PowerDeliverySpec spec = paper_system();
  const EvaluationOptions options = paper_options();
  FaultCampaignConfig config;
  // Scenario population trimmed to the N-0 baseline: this test is about
  // the zero-fault path, not the fault families.
  config.include_dropouts = false;
  config.include_derates = false;
  config.include_attach_faults = false;
  config.include_mesh_regions = false;
  config.include_stage2_dropouts = false;
  config.sweep.threads = 2;
  const FaultCampaignRunner runner(spec, config);
  const ArchitectureExplorer explorer(spec, options);

  for (ArchitectureKind arch : fault_grid_architectures()) {
    for (TopologyKind topo : all_topologies()) {
      const std::string label = sweep_point_label(
          arch, topo, DeviceTechnology::kGalliumNitride);
      const FaultCampaignReport report =
          runner.run(arch, topo, DeviceTechnology::kGalliumNitride, options);
      const ExplorationEntry entry = explorer.evaluate(arch, topo);
      const ArchitectureEvaluation& expected =
          entry.evaluation ? *entry.evaluation : *entry.extrapolated;
      ASSERT_EQ(report.outcomes.size(), 1u) << label;
      ASSERT_EQ(report.outcomes[0].scenario.label, "N-0") << label;
      ASSERT_TRUE(report.outcomes[0].evaluated) << label;
      EXPECT_TRUE(report.outcomes[0].injection.empty()) << label;
      expect_bit_identical(report.nominal, expected, label);
      expect_bit_identical(*report.outcomes[0].evaluation, expected, label);
    }
  }
}

TEST(FaultCampaign, ParallelCampaignIsBitIdenticalToSerial) {
  const PowerDeliverySpec spec = paper_system();
  const EvaluationOptions options = paper_options(21);
  FaultCampaignConfig config;
  config.include_derates = false;       // trim the population for speed:
  config.include_attach_faults = false;  // dropouts + mesh + N-2 samples
  config.nk_samples = 6;
  config.nk_order = 2;
  FaultCampaignConfig serial = config;
  serial.sweep.threads = 1;
  FaultCampaignConfig parallel = config;
  parallel.sweep.threads = 4;

  const FaultCampaignReport a =
      FaultCampaignRunner(spec, serial)
          .run(ArchitectureKind::kA1_InterposerPeriphery, TopologyKind::kDsch,
               DeviceTechnology::kGalliumNitride, options);
  const FaultCampaignReport b =
      FaultCampaignRunner(spec, parallel)
          .run(ArchitectureKind::kA1_InterposerPeriphery, TopologyKind::kDsch,
               DeviceTechnology::kGalliumNitride, options);

  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  EXPECT_GT(a.outcomes.size(), 1u);
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    const std::string label = a.outcomes[i].scenario.label;
    EXPECT_EQ(label, b.outcomes[i].scenario.label);
    ASSERT_EQ(a.outcomes[i].evaluated, b.outcomes[i].evaluated) << label;
    if (!a.outcomes[i].evaluated) continue;
    expect_bit_identical(*a.outcomes[i].evaluation,
                         *b.outcomes[i].evaluation, label);
    EXPECT_EQ(a.outcomes[i].resilience.margin, b.outcomes[i].resilience.margin)
        << label;
    EXPECT_EQ(a.outcomes[i].resilience.load_shed_fraction,
              b.outcomes[i].resilience.load_shed_fraction)
        << label;
  }
  EXPECT_EQ(a.survivor_count(), b.survivor_count());
  EXPECT_EQ(a.worst_droop_fraction(), b.worst_droop_fraction());
}

// Regression (issue satellite): a campaign whose mesh damage model is
// fully severed copper (conductance scale 0) must run to completion with
// finite post-fault metrics. Before the severing fix the zero-scale
// regions dropped entries out of the compiled sparsity pattern and handed
// CG a singular operator, aborting the whole campaign.
TEST(FaultCampaign, ZeroScaleSeveringCampaignCompletesWithFiniteMetrics) {
  const PowerDeliverySpec spec = paper_system();
  const EvaluationOptions options = paper_options(21);
  FaultCampaignConfig config;
  config.include_dropouts = false;       // mesh-region N-1 set only
  config.include_derates = false;
  config.include_attach_faults = false;
  config.include_stage2_dropouts = false;
  config.severity.mesh_conductance_scale = 0.0;
  // Wide enough to fully disconnect interior nodes at the 21-node mesh.
  config.severity.mesh_region_side = Length{4e-3};
  config.mesh_region_grid = 3;
  config.sweep.threads = 2;
  const FaultCampaignRunner runner(spec, config);

  const FaultCampaignReport report =
      runner.run(ArchitectureKind::kA1_InterposerPeriphery, TopologyKind::kDsch,
                 DeviceTechnology::kGalliumNitride, options);

  ASSERT_EQ(report.outcomes.size(),
            1u + config.mesh_region_grid * config.mesh_region_grid);
  for (const FaultScenarioOutcome& outcome : report.outcomes) {
    ASSERT_TRUE(outcome.evaluated) << outcome.scenario.label;
    const ArchitectureEvaluation& eval = *outcome.evaluation;
    EXPECT_TRUE(std::isfinite(eval.total_loss().value))
        << outcome.scenario.label;
    EXPECT_TRUE(std::isfinite(eval.input_power.value))
        << outcome.scenario.label;
    ASSERT_TRUE(eval.min_distribution_voltage.has_value())
        << outcome.scenario.label;
    EXPECT_TRUE(std::isfinite(eval.min_distribution_voltage->value))
        << outcome.scenario.label;
    EXPECT_GE(eval.min_distribution_voltage->value, 0.0)
        << outcome.scenario.label;
  }
  EXPECT_GT(report.solver.cg_solves, 0u);
  EXPECT_GT(report.solver.cg_iterations, 0u);
}

TEST(FaultCampaign, SampledScenariosArePrefixStable) {
  // Counter-based seeding: scenario i only depends on (seed, i), so a
  // 10-sample campaign's first 5 sampled scenarios equal the 5-sample
  // campaign's — the population is order- and thread-independent.
  const PowerDeliverySpec spec = paper_system();
  FaultCampaignConfig small_config;
  small_config.nk_samples = 5;
  FaultCampaignConfig large_config;
  large_config.nk_samples = 10;
  const auto small_scenarios =
      FaultCampaignRunner(spec, small_config).generate_scenarios(12, 8);
  const auto large_scenarios =
      FaultCampaignRunner(spec, large_config).generate_scenarios(12, 8);
  ASSERT_EQ(large_scenarios.size(), small_scenarios.size() + 5);
  for (std::size_t i = 0; i < small_scenarios.size(); ++i) {
    ASSERT_EQ(small_scenarios[i].label, large_scenarios[i].label);
    ASSERT_EQ(small_scenarios[i].faults.size(),
              large_scenarios[i].faults.size());
    for (std::size_t k = 0; k < small_scenarios[i].faults.size(); ++k) {
      EXPECT_EQ(small_scenarios[i].faults[k].kind,
                large_scenarios[i].faults[k].kind);
      EXPECT_EQ(small_scenarios[i].faults[k].site,
                large_scenarios[i].faults[k].site);
      EXPECT_EQ(small_scenarios[i].faults[k].x.value,
                large_scenarios[i].faults[k].x.value);
      EXPECT_EQ(small_scenarios[i].faults[k].y.value,
                large_scenarios[i].faults[k].y.value);
    }
  }
  // A different seed draws a different sampled population.
  FaultCampaignConfig reseeded = small_config;
  reseeded.seed = 0xfeedULL;
  const auto other =
      FaultCampaignRunner(spec, reseeded).generate_scenarios(12, 8);
  bool any_different = false;
  for (std::size_t i = small_scenarios.size() - 5; i < small_scenarios.size();
       ++i) {
    const Fault& x = small_scenarios[i].faults[0];
    const Fault& y = other[i].faults[0];
    any_different |= x.kind != y.kind || x.site != y.site ||
                     x.x.value != y.x.value || x.y.value != y.y.value;
  }
  EXPECT_TRUE(any_different);
}

TEST(FaultCampaign, ExhaustiveN1CoversEveryFaultSite) {
  const PowerDeliverySpec spec = paper_system();
  const EvaluationOptions options = paper_options(21);
  FaultCampaignConfig config;
  config.sweep.threads = 4;
  const FaultCampaignRunner runner(spec, config);
  const FaultCampaignReport report =
      runner.run(ArchitectureKind::kA2_InterposerBelowDie, TopologyKind::kDsch,
                 DeviceTechnology::kGalliumNitride, options);

  const std::size_t sites = report.nominal.vr_count_stage2;
  ASSERT_GT(sites, 0u);
  // N-0 + (drop + derate + attach) per site + 3x3 mesh-region grid.
  EXPECT_EQ(report.scenario_count(), 1 + 3 * sites + 9);
  std::set<std::string> labels;
  for (const FaultScenarioOutcome& outcome : report.outcomes) {
    labels.insert(outcome.scenario.label);
    EXPECT_TRUE(outcome.evaluated) << outcome.scenario.label;
  }
  EXPECT_EQ(labels.size(), report.scenario_count());  // no duplicates

  // Survivability is a fraction, the histogram buckets every evaluated
  // scenario, and the nominal state dominates every faulted one.
  EXPECT_GE(report.survivability(), 0.0);
  EXPECT_LE(report.survivability(), 1.0);
  const MarginHistogram histogram = report.margin_histogram(8);
  std::size_t bucketed = histogram.unevaluated;
  for (std::size_t count : histogram.counts) bucketed += count;
  EXPECT_EQ(bucketed, report.scenario_count());
  EXPECT_GE(report.worst_droop_fraction(),
            report.outcomes[0].resilience.droop_fraction);
}

TEST(FaultCampaign, RejectsA0AndDirtyBaseOptions) {
  FaultCampaignRunner runner((paper_system()));
  EXPECT_THROW(runner.run(ArchitectureKind::kA0_PcbConversion,
                          TopologyKind::kDsch),
               InvalidArgument);
  EvaluationOptions dirty = paper_options();
  dirty.faults.dropped_sites = {0};
  EXPECT_THROW(runner.run(ArchitectureKind::kA1_InterposerPeriphery,
                          TopologyKind::kDsch,
                          DeviceTechnology::kGalliumNitride, dirty),
               InvalidArgument);
}

// ---------------------------------------------------------------------------
// Resilience checks and the degradation policy
// ---------------------------------------------------------------------------

TEST(Resilience, NominalDesignsMatchThePapersDroopStory) {
  // The vertical architectures (A2, A3) meet the default resilience spec
  // fault-free. A1 does not: its periphery-only lateral distribution at
  // the 1 V rail droops far beyond a 5% DC budget — the paper's core
  // argument against lateral power delivery — and the checker must report
  // that as a droop violation with a corrective load shed, not hide it.
  const PowerDeliverySpec spec = paper_system();
  const EvaluationOptions options = paper_options(21);
  const ResilienceSpec rspec;
  for (ArchitectureKind arch :
       {ArchitectureKind::kA2_InterposerBelowDie,
        ArchitectureKind::kA3_TwoStage12V, ArchitectureKind::kA3_TwoStage6V}) {
    const ArchitectureEvaluation eval = evaluate_architecture(
        arch, spec, TopologyKind::kDsch, DeviceTechnology::kGalliumNitride,
        options);
    const ResilienceContext context{spec, arch, TopologyKind::kDsch,
                                    DeviceTechnology::kGalliumNitride};
    const ResilienceReport report =
        check_resilience(eval, FaultInjection{}, context, rspec);
    EXPECT_TRUE(report.survives) << to_string(arch);
    EXPECT_EQ(report.load_shed_fraction, 0.0) << to_string(arch);
    EXPECT_GT(report.margin, 0.0) << to_string(arch);
    EXPECT_LT(report.droop_fraction, rspec.droop_tolerance)
        << to_string(arch);
  }

  const ArchitectureEvaluation a1 = evaluate_architecture(
      ArchitectureKind::kA1_InterposerPeriphery, spec, TopologyKind::kDsch,
      DeviceTechnology::kGalliumNitride, options);
  const ResilienceContext context{spec,
                                  ArchitectureKind::kA1_InterposerPeriphery,
                                  TopologyKind::kDsch,
                                  DeviceTechnology::kGalliumNitride};
  const ResilienceReport report =
      check_resilience(a1, FaultInjection{}, context, rspec);
  EXPECT_FALSE(report.survives);
  EXPECT_GT(report.droop_fraction, rspec.droop_tolerance);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_EQ(report.violations[0].kind, SpecViolation::Kind::kDroop);
  EXPECT_GT(report.load_shed_fraction, 0.0);
}

TEST(Resilience, SheddingPolicyRestoresDroopMargin) {
  // Force a droop violation with a tight tolerance, then verify the
  // closed-form policy: re-evaluating the same deployment at the shed
  // load meets the tolerance (the mesh solve is linear in total load for
  // a single-stage architecture, so the policy is exact up to the CG
  // tolerance).
  const PowerDeliverySpec spec = paper_system();
  EvaluationOptions options = paper_options(21);
  options.fixed_final_stage_vrs = 48;  // pin the deployment across loads
  options.faults.dropped_sites = {0, 1, 2, 3, 4, 5};
  const ArchitectureEvaluation faulted = evaluate_architecture(
      ArchitectureKind::kA1_InterposerPeriphery, spec, TopologyKind::kDsch,
      DeviceTechnology::kGalliumNitride, options);

  ResilienceSpec rspec;
  rspec.droop_tolerance = 0.5 * ((spec.die_voltage.value -
                                  faulted.min_distribution_voltage->value) /
                                 spec.die_voltage.value);
  ASSERT_GT(rspec.droop_tolerance, 0.0);
  const ResilienceContext context{spec,
                                  ArchitectureKind::kA1_InterposerPeriphery,
                                  TopologyKind::kDsch,
                                  DeviceTechnology::kGalliumNitride};
  const ResilienceReport report =
      check_resilience(faulted, options.faults, context, rspec);
  ASSERT_FALSE(report.survives);
  EXPECT_LT(report.margin, 0.0);
  ASSERT_GT(report.load_shed_fraction, 0.0);
  ASSERT_LT(report.load_shed_fraction, 1.0);

  PowerDeliverySpec shed_spec = spec;
  shed_spec.total_power =
      Power{spec.total_power.value * (1.0 - report.load_shed_fraction)};
  const ArchitectureEvaluation capped = evaluate_architecture(
      ArchitectureKind::kA1_InterposerPeriphery, shed_spec,
      TopologyKind::kDsch, DeviceTechnology::kGalliumNitride, options);
  const double shed_droop =
      (shed_spec.die_voltage.value - capped.min_distribution_voltage->value) /
      shed_spec.die_voltage.value;
  EXPECT_LE(shed_droop, rspec.droop_tolerance * (1.0 + 1e-9));
  // The policy sheds exactly enough: the binding check (the violation
  // with the worst value/limit ratio) lands on its limit at the shed load.
  double worst_ratio = 0.0;
  for (const SpecViolation& violation : report.violations) {
    worst_ratio = std::max(worst_ratio, violation.value / violation.limit);
  }
  EXPECT_NEAR(worst_ratio * (1.0 - report.load_shed_fraction), 1.0, 1e-9);
}

TEST(Resilience, OvercurrentViolationsNameTheSiteAndScaleOut) {
  const PowerDeliverySpec spec = paper_system();
  EvaluationOptions options = paper_options(21);
  // Drop most VRs so the survivors run far beyond rating.
  const ArchitectureEvaluation nominal = evaluate_architecture(
      ArchitectureKind::kA1_InterposerPeriphery, spec, TopologyKind::kDsch,
      DeviceTechnology::kGalliumNitride, options);
  const std::size_t sites = nominal.vr_count_stage2;
  for (std::size_t s = 0; s + 8 < sites; ++s)
    options.faults.dropped_sites.push_back(s);
  const ArchitectureEvaluation faulted = evaluate_architecture(
      ArchitectureKind::kA1_InterposerPeriphery, spec, TopologyKind::kDsch,
      DeviceTechnology::kGalliumNitride, options);
  const ResilienceContext context{spec,
                                  ArchitectureKind::kA1_InterposerPeriphery,
                                  TopologyKind::kDsch,
                                  DeviceTechnology::kGalliumNitride};
  const ResilienceReport report =
      check_resilience(faulted, options.faults, context, ResilienceSpec{});
  ASSERT_FALSE(report.survives);
  bool overcurrent_seen = false;
  for (const SpecViolation& violation : report.violations) {
    if (violation.kind == SpecViolation::Kind::kVrOvercurrent) {
      overcurrent_seen = true;
      EXPECT_LT(violation.site, sites);
      EXPECT_GT(violation.value, violation.limit);
    }
  }
  EXPECT_TRUE(overcurrent_seen);
  EXPECT_GT(report.worst_vr_utilization, 1.0);
  EXPECT_GT(report.load_shed_fraction, 0.0);
}

}  // namespace
}  // namespace vpd
