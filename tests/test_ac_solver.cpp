#include "vpd/circuit/ac_solver.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "vpd/common/error.hpp"

namespace vpd {
namespace {

using namespace vpd::literals;

TEST(AcSolver, ResistiveDividerIsFrequencyFlat) {
  Netlist nl;
  const NodeId in = nl.add_node("in");
  const NodeId mid = nl.add_node("mid");
  const ElementId src = nl.add_vsource("V1", in, kGround, 1.0_V);
  nl.add_resistor("R1", in, mid, 1.0_Ohm);
  nl.add_resistor("R2", mid, kGround, 3.0_Ohm);
  for (double f : {10.0, 1e3, 1e6}) {
    const AcSolution sol = solve_ac(nl, Frequency{f}, src);
    EXPECT_NEAR(std::abs(sol.voltage("mid")), 0.75, 1e-9) << f;
    EXPECT_NEAR(std::arg(sol.voltage("mid")), 0.0, 1e-9) << f;
  }
}

TEST(AcSolver, RcLowpassCornerFrequency) {
  // R = 1k, C = 1uF: f_c = 1/(2 pi RC) ~ 159 Hz; |H| = 1/sqrt(2) there.
  Netlist nl;
  const NodeId in = nl.add_node("in");
  const NodeId out = nl.add_node("out");
  const ElementId src = nl.add_vsource("V1", in, kGround, 1.0_V);
  nl.add_resistor("R1", in, out, Resistance{1000.0});
  nl.add_capacitor("C1", out, kGround, 1.0_uF);
  const double fc = 1.0 / (2.0 * M_PI * 1000.0 * 1e-6);
  const AcSolution at_fc = solve_ac(nl, Frequency{fc}, src);
  EXPECT_NEAR(std::abs(at_fc.voltage("out")), 1.0 / std::sqrt(2.0), 1e-6);
  EXPECT_NEAR(std::arg(at_fc.voltage("out")), -M_PI / 4.0, 1e-6);
  // A decade above: ~ -20 dB/decade.
  const AcSolution decade = solve_ac(nl, Frequency{10.0 * fc}, src);
  EXPECT_NEAR(std::abs(decade.voltage("out")), 1.0 / std::sqrt(101.0),
              1e-4);
}

TEST(AcSolver, InductorImpedanceRisesWithFrequency) {
  Netlist nl;
  const NodeId in = nl.add_node("in");
  const NodeId out = nl.add_node("out");
  const ElementId src = nl.add_vsource("V1", in, kGround, 1.0_V);
  nl.add_inductor("L1", in, out, Inductance{1e-3});
  nl.add_resistor("R1", out, kGround, Resistance{100.0});
  // f where wL = R: f = R/(2 pi L) ~ 15.9 kHz; |V_out| = 1/sqrt(2).
  const double f_equal = 100.0 / (2.0 * M_PI * 1e-3);
  const AcSolution sol = solve_ac(nl, Frequency{f_equal}, src);
  EXPECT_NEAR(std::abs(sol.voltage("out")), 1.0 / std::sqrt(2.0), 1e-6);
  // Inductor current lags: check branch current magnitude V/|Z|.
  EXPECT_NEAR(std::abs(sol.current("L1")),
              1.0 / std::hypot(100.0, 100.0), 1e-9);
}

TEST(AcSolver, SeriesRlcResonance) {
  // L = 1 uH, C = 1 uF -> f0 ~ 159 kHz; at resonance the reactances
  // cancel and the full source voltage lands on R.
  Netlist nl;
  const NodeId in = nl.add_node("in");
  const NodeId a = nl.add_node("a");
  const NodeId b = nl.add_node("b");
  const ElementId src = nl.add_vsource("V1", in, kGround, 1.0_V);
  nl.add_inductor("L1", in, a, 1.0_uH);
  nl.add_capacitor("C1", a, b, 1.0_uF);
  nl.add_resistor("R1", b, kGround, Resistance{0.5});
  const double f0 = 1.0 / (2.0 * M_PI * std::sqrt(1e-6 * 1e-6));
  const AcSolution sol = solve_ac(nl, Frequency{f0}, src);
  EXPECT_NEAR(std::abs(sol.voltage("b")), 1.0, 1e-6);
  EXPECT_NEAR(std::abs(sol.current("L1")), 2.0, 1e-5);
}

TEST(AcSolver, NonStimulusSourcesAreNulled) {
  Netlist nl;
  const NodeId a = nl.add_node("a");
  const NodeId b = nl.add_node("b");
  const ElementId s1 = nl.add_vsource("V1", a, kGround, 5.0_V);
  nl.add_resistor("R1", a, b, 1.0_Ohm);
  nl.add_vsource("V2", b, kGround, 7.0_V);  // nulled -> short
  const AcSolution sol = solve_ac(nl, 1.0_kHz, s1);
  // V2 shorts node b to ground; divider leaves all drive across R1.
  EXPECT_NEAR(std::abs(sol.voltage("a")), 1.0, 1e-9);
  EXPECT_NEAR(std::abs(sol.voltage("b")), 0.0, 1e-9);
}

TEST(AcSolver, StimulusValidation) {
  Netlist nl;
  const NodeId a = nl.add_node("a");
  const ElementId r = nl.add_resistor("R1", a, kGround, 1.0_Ohm);
  nl.add_vsource("V1", a, kGround, 1.0_V);
  EXPECT_THROW(solve_ac(nl, 1.0_kHz, r), InvalidArgument);
  EXPECT_THROW(solve_ac(nl, Frequency{0.0}, r), InvalidArgument);
}

TEST(Impedance, ResistivePdnIsFlat) {
  Netlist nl;
  const NodeId pol = nl.add_node("pol");
  nl.add_resistor("Rpdn", pol, kGround, 1.0_mOhm);
  const ElementId port = nl.add_isource("port", pol, kGround, 1.0_A);
  const auto sweep = impedance_sweep(nl, port, {1e3, 1e5, 1e7});
  for (const ImpedancePoint& p : sweep) {
    EXPECT_NEAR(p.magnitude(), 1e-3, 1e-9) << p.frequency;
    EXPECT_NEAR(p.phase_degrees(), 0.0, 1e-6) << p.frequency;
  }
}

TEST(Impedance, RlcAntiResonancePeak) {
  // Classic PDN shape: VRM inductance in parallel with decap.
  // L = 1 nH (to an ideal VR), C = 100 uF with 0.1 mOhm ESR.
  Netlist nl;
  const NodeId pol = nl.add_node("pol");
  const NodeId esr = nl.add_node("esr");
  const NodeId vr = nl.add_node("vr");
  nl.add_vsource("Vvr", vr, kGround, 1.0_V);
  nl.add_inductor("Lvr", vr, pol, Inductance{1e-9});
  nl.add_resistor("Resr", pol, esr, Resistance{1e-4});
  nl.add_capacitor("Cdecap", esr, kGround, Capacitance{100e-6});
  const ElementId port = nl.add_isource("port", pol, kGround, 1.0_A);

  // Anti-resonance at f0 = 1/(2 pi sqrt(LC)) ~ 503 kHz.
  const double f0 = 1.0 / (2.0 * M_PI * std::sqrt(1e-9 * 100e-6));
  std::vector<double> freqs;
  for (double f = 1e4; f < 1e8; f *= 1.2) freqs.push_back(f);
  const auto sweep = impedance_sweep(nl, port, freqs);
  const ImpedancePoint peak = peak_impedance(sweep);
  EXPECT_NEAR(peak.frequency, f0, 0.25 * f0);
  // Peak exceeds both asymptotes.
  EXPECT_GT(peak.magnitude(), 5e-4);
  // Low-frequency end: the VR inductor shorts the port -> small Z.
  EXPECT_LT(sweep.front().magnitude(), 1e-4);
  // Inductive phase below resonance.
  EXPECT_GT(sweep.front().phase_degrees(), 45.0);
}

TEST(Impedance, TargetImpedanceHelper) {
  // 30 mV allowed ripple on a 300 A step -> 0.1 mOhm target.
  EXPECT_NEAR(target_impedance(30.0_mV, Current{300.0}).value, 1e-4,
              1e-12);
  EXPECT_THROW(target_impedance(Voltage{0.0}, 1.0_A), InvalidArgument);
}

TEST(Impedance, PortMustBeCurrentSource) {
  Netlist nl;
  const NodeId pol = nl.add_node("pol");
  const ElementId r = nl.add_resistor("R1", pol, kGround, 1.0_Ohm);
  EXPECT_THROW(impedance_sweep(nl, r, {1e3}), InvalidArgument);
  const ElementId port = nl.add_isource("port", pol, kGround, 1.0_A);
  EXPECT_THROW(impedance_sweep(nl, port, {}), InvalidArgument);
}

TEST(Impedance, SwitchStateChangesImpedance) {
  Netlist nl;
  const NodeId pol = nl.add_node("pol");
  nl.add_resistor("Rbase", pol, kGround, Resistance{10.0});
  nl.add_switch("S1", pol, kGround, Resistance{1.0}, Resistance{1e9},
                false);
  const ElementId port = nl.add_isource("port", pol, kGround, 1.0_A);
  AcOptions open_opts;
  const auto open_sweep = impedance_sweep(nl, port, {1e3}, open_opts);
  AcOptions closed_opts;
  closed_opts.switch_states = SwitchStates{true};
  const auto closed_sweep = impedance_sweep(nl, port, {1e3}, closed_opts);
  EXPECT_NEAR(open_sweep[0].magnitude(), 10.0, 1e-6);
  EXPECT_NEAR(closed_sweep[0].magnitude(), 10.0 / 11.0, 1e-6);
}

}  // namespace
}  // namespace vpd
