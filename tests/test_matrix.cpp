#include "vpd/common/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "vpd/common/error.hpp"
#include "vpd/common/rng.hpp"

namespace vpd {
namespace {

TEST(Matrix, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, InitializerListConstruction) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), InvalidArgument);
}

TEST(Matrix, IdentityHasOnesOnDiagonal) {
  const Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, AddSubtractScale) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{4.0, 3.0}, {2.0, 1.0}};
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(sum(1, 1), 5.0);
  const Matrix diff = a - b;
  EXPECT_DOUBLE_EQ(diff(0, 0), -3.0);
  const Matrix scaled = 2.0 * a;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2);
  Matrix b(3, 3);
  EXPECT_THROW(a += b, InvalidArgument);
  EXPECT_THROW(a * b, InvalidArgument);
}

TEST(Matrix, MatrixProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatrixVectorProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Vector x{1.0, -1.0};
  const Vector y = a * x;
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(Matrix, Transpose) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Lu, SolvesSmallSystemExactly) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Vector b{3.0, 5.0};
  const Vector x = solve_dense(a, b);
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, SolvesSystemRequiringPivoting) {
  // Zero leading pivot forces a row swap.
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const Vector b{2.0, 3.0};
  const Vector x = solve_dense(a, b);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, SingularMatrixThrows) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(LuFactorization{a}, NumericalError);
}

TEST(Lu, NonSquareThrows) {
  EXPECT_THROW(LuFactorization{Matrix(2, 3)}, InvalidArgument);
}

TEST(Lu, DeterminantMatchesClosedForm) {
  const Matrix a{{3.0, 8.0}, {4.0, 6.0}};
  EXPECT_NEAR(LuFactorization{a}.determinant(), -14.0, 1e-12);
}

TEST(Lu, DeterminantSignSurvivesPivoting) {
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_NEAR(LuFactorization{a}.determinant(), -1.0, 1e-12);
}

TEST(Lu, FactorOnceSolveManyRhs) {
  const Matrix a{{4.0, 1.0, 0.0}, {1.0, 4.0, 1.0}, {0.0, 1.0, 4.0}};
  const LuFactorization lu{a};
  for (double scale : {1.0, -2.0, 10.0}) {
    const Vector b{scale, 2.0 * scale, 3.0 * scale};
    const Vector x = lu.solve(b);
    const Vector residual = a * x - b;
    EXPECT_LT(norm_inf(residual), 1e-12) << "scale=" << scale;
  }
}

TEST(Lu, RcondDetectsIllConditioning) {
  const Matrix good = Matrix::identity(3);
  EXPECT_GT(LuFactorization{good}.rcond_estimate(), 0.5);
  const Matrix bad{{1.0, 0.0}, {0.0, 1e-14}};
  EXPECT_LT(LuFactorization{bad}.rcond_estimate(), 1e-10);
}

TEST(Lu, RandomSystemsHaveSmallResidual) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 5 + rng.next_below(20);
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
    // Diagonal boost keeps the random matrices comfortably nonsingular.
    for (std::size_t i = 0; i < n; ++i) a(i, i) += 2.0;
    Vector b(n);
    for (std::size_t i = 0; i < n; ++i) b[i] = rng.uniform(-5.0, 5.0);
    const Vector x = solve_dense(a, b);
    EXPECT_LT(norm_inf(a * x - b), 1e-9) << "trial " << trial << " n=" << n;
  }
}

TEST(VectorOps, DotNormAxpy) {
  const Vector a{1.0, 2.0, 2.0};
  const Vector b{2.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 4.0);
  EXPECT_DOUBLE_EQ(norm2(a), 3.0);
  EXPECT_DOUBLE_EQ(norm_inf(a), 2.0);
  Vector y = b;
  axpy(2.0, a, y);
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[2], 4.0);
}

TEST(VectorOps, SizeMismatchThrows) {
  const Vector a{1.0};
  const Vector b{1.0, 2.0};
  EXPECT_THROW(dot(a, b), InvalidArgument);
  Vector y{0.0};
  EXPECT_THROW(axpy(1.0, b, y), InvalidArgument);
  EXPECT_THROW(a + b, InvalidArgument);
  EXPECT_THROW(a - b, InvalidArgument);
}

TEST(Matrix, MaxAbs) {
  const Matrix a{{1.0, -7.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.max_abs(), 7.0);
  EXPECT_DOUBLE_EQ(Matrix().max_abs(), 0.0);
}

}  // namespace
}  // namespace vpd
