#include "vpd/converters/loss_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "vpd/common/error.hpp"

namespace vpd {
namespace {

using namespace vpd::literals;

TEST(LossModel, LossIsQuadratic) {
  const QuadraticLossModel m(1.0, 0.1, 0.01);
  EXPECT_NEAR(m.loss(10.0_A).value, 1.0 + 1.0 + 1.0, 1e-12);
  EXPECT_NEAR(m.loss(Current{0.0}).value, 1.0, 1e-12);
}

TEST(LossModel, EfficiencyPeaksAtSqrtK0OverK2) {
  const QuadraticLossModel m(1.5, 0.0, 1.0 / 600.0);
  EXPECT_NEAR(m.peak_current().value, std::sqrt(1.5 * 600.0), 1e-9);
  // Efficiency at the peak exceeds efficiency slightly off-peak.
  const double at_peak = m.efficiency(m.peak_current(), 1.0_V);
  EXPECT_GT(at_peak, m.efficiency(Current{m.peak_current().value * 0.7},
                                  1.0_V));
  EXPECT_GT(at_peak, m.efficiency(Current{m.peak_current().value * 1.4},
                                  1.0_V));
}

TEST(LossModel, FitFromPeakReproducesRequestedPoint) {
  // DPMIH's published point: 90.9% at 30 A, Vout = 1 V.
  const QuadraticLossModel m =
      QuadraticLossModel::fit_from_peak(0.909, 30.0_A, 1.0_V);
  EXPECT_NEAR(m.peak_current().value, 30.0, 1e-9);
  EXPECT_NEAR(m.peak_efficiency(1.0_V), 0.909, 1e-12);
}

TEST(LossModel, FitHonorsLinearTerm) {
  const QuadraticLossModel m =
      QuadraticLossModel::fit_from_peak(0.90, 10.0_A, 1.0_V, 0.05);
  EXPECT_NEAR(m.k1(), 0.05, 1e-15);
  EXPECT_NEAR(m.peak_efficiency(1.0_V), 0.90, 1e-12);
  EXPECT_NEAR(m.peak_current().value, 10.0, 1e-9);
}

TEST(LossModel, FitRejectsImpossiblePeaks) {
  // k1 alone already exceeds the allowed loss.
  EXPECT_THROW(QuadraticLossModel::fit_from_peak(0.95, 10.0_A, 1.0_V, 0.2),
               InvalidArgument);
  EXPECT_THROW(QuadraticLossModel::fit_from_peak(1.0, 10.0_A, 1.0_V),
               InvalidArgument);
  EXPECT_THROW(QuadraticLossModel::fit_from_peak(0.9, Current{0.0}, 1.0_V),
               InvalidArgument);
}

TEST(LossModel, EfficiencyIsAlwaysInUnitInterval) {
  const QuadraticLossModel m =
      QuadraticLossModel::fit_from_peak(0.915, 10.0_A, 1.0_V);
  for (double i = 0.1; i <= 60.0; i += 0.7) {
    const double eta = m.efficiency(Current{i}, 1.0_V);
    EXPECT_GT(eta, 0.0) << i;
    EXPECT_LT(eta, 1.0) << i;
  }
}

TEST(LossModel, HigherOutputVoltageImprovesEfficiency) {
  const QuadraticLossModel m(1.0, 0.0, 0.01);
  EXPECT_GT(m.efficiency(10.0_A, 12.0_V), m.efficiency(10.0_A, 1.0_V));
}

TEST(LossModel, ScaledAdjustsCoefficients) {
  const QuadraticLossModel m(2.0, 0.1, 0.04);
  const QuadraticLossModel s = m.scaled(0.5, 2.0);
  EXPECT_NEAR(s.k0(), 1.0, 1e-15);
  EXPECT_NEAR(s.k1(), 0.1, 1e-15);
  EXPECT_NEAR(s.k2(), 0.08, 1e-15);
  EXPECT_THROW(m.scaled(0.0, 1.0), InvalidArgument);
}

TEST(LossModel, ScalingSwitchingDownShiftsPeakDown) {
  // Halving k0 moves the peak to lower current: I* = sqrt(k0/k2).
  const QuadraticLossModel m(2.0, 0.0, 0.02);
  const QuadraticLossModel s = m.scaled(0.25, 1.0);
  EXPECT_NEAR(s.peak_current().value, 0.5 * m.peak_current().value, 1e-12);
  EXPECT_GT(s.peak_efficiency(1.0_V), m.peak_efficiency(1.0_V));
}

TEST(LossModel, Validation) {
  EXPECT_THROW(QuadraticLossModel(0.0, 0.0, 0.1), InvalidArgument);
  EXPECT_THROW(QuadraticLossModel(1.0, -0.1, 0.1), InvalidArgument);
  EXPECT_THROW(QuadraticLossModel(1.0, 0.0, 0.0), InvalidArgument);
  const QuadraticLossModel m(1.0, 0.0, 0.1);
  EXPECT_THROW(m.loss(Current{-1.0}), InvalidArgument);
  EXPECT_THROW(m.efficiency(Current{0.0}, 1.0_V), InvalidArgument);
}

// Parameterized sweep: fitting any (eta*, I*) pair and reading it back is
// exact, a round-trip property of the fit.
struct PeakPoint {
  double eta;
  double amps;
};

class LossModelFitSweep : public ::testing::TestWithParam<PeakPoint> {};

TEST_P(LossModelFitSweep, RoundTripsPeakPoint) {
  const PeakPoint p = GetParam();
  const QuadraticLossModel m =
      QuadraticLossModel::fit_from_peak(p.eta, Current{p.amps}, 1.0_V);
  EXPECT_NEAR(m.peak_current().value, p.amps, 1e-9 * p.amps);
  EXPECT_NEAR(m.peak_efficiency(1.0_V), p.eta, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    PublishedPoints, LossModelFitSweep,
    ::testing::Values(PeakPoint{0.909, 30.0},   // DPMIH
                      PeakPoint{0.915, 10.0},   // DSCH
                      PeakPoint{0.904, 3.0},    // 3LHD
                      PeakPoint{0.80, 1.0}, PeakPoint{0.98, 100.0},
                      PeakPoint{0.5, 7.0}));

}  // namespace
}  // namespace vpd
