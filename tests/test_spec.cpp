#include "vpd/core/spec.hpp"

#include <gtest/gtest.h>

#include "vpd/common/error.hpp"

namespace vpd {
namespace {

using namespace vpd::literals;

TEST(Spec, PaperSystemHeadlineNumbers) {
  const PowerDeliverySpec spec = paper_system();
  spec.validate();
  EXPECT_NEAR(spec.total_power.value, 1000.0, 1e-12);
  EXPECT_NEAR(spec.die_current().value, 1000.0, 1e-9);
  EXPECT_NEAR(as_A_per_mm2(spec.current_density()), 2.0, 1e-9);
  EXPECT_NEAR(as_mm(spec.die_side()), 22.36, 0.01);
}

TEST(Spec, InputCurrentAtFeedVoltage) {
  const PowerDeliverySpec spec = paper_system();
  EXPECT_NEAR(spec.input_current(Power{1200.0}).value, 25.0, 1e-9);
}

TEST(Spec, ValidationCatchesBadValues) {
  PowerDeliverySpec spec = paper_system();
  spec.total_power = Power{0.0};
  EXPECT_THROW(spec.validate(), InvalidArgument);
  spec = paper_system();
  spec.pcb_voltage = 0.5_V;  // below die voltage
  EXPECT_THROW(spec.validate(), InvalidArgument);
  spec = paper_system();
  spec.die_area = Area{0.0};
  EXPECT_THROW(spec.validate(), InvalidArgument);
}

TEST(Spec, DensityScalesWithArea) {
  PowerDeliverySpec spec = paper_system();
  spec.die_area = 1200.0_mm2;
  // The paper's A0 observation: 1 kA over 1200 mm^2 ~ 0.8 A/mm^2.
  EXPECT_NEAR(as_A_per_mm2(spec.current_density()), 0.83, 0.01);
}

}  // namespace
}  // namespace vpd
