#include "vpd/thermal/thermal.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "vpd/common/error.hpp"
#include "vpd/workload/power_map.hpp"

namespace vpd {
namespace {

using namespace vpd::literals;

ThermalSolver paper_die(std::size_t n = 21) {
  ThermalStack stack;
  stack.lateral_sheet_k_per_w = 9.5;
  stack.theta_to_coolant = 1.5e-5;
  stack.coolant_temperature = 40.0;
  return ThermalSolver(22.36_mm, n, stack);
}

TEST(Thermal, ZeroPowerSitsAtCoolantTemperature) {
  const ThermalSolver solver = paper_die();
  const Vector t = solver.solve(Vector(solver.mesh().node_count(), 0.0));
  for (double temp : t) EXPECT_NEAR(temp, 40.0, 1e-6);
}

TEST(Thermal, UniformPowerGivesUniformRise) {
  // 1 kW over 500 mm^2 = 200 W/cm^2; with theta 0.15 K cm^2/W the rise
  // is 200 * 0.15 = 30 K everywhere (no lateral gradients to drive).
  const ThermalSolver solver = paper_die();
  const Vector heat =
      uniform_power_map(solver.mesh(), Current{1000.0});  // 1000 "W"
  const Vector t = solver.solve(heat);
  for (double temp : t) EXPECT_NEAR(temp, 70.0, 0.01);
}

TEST(Thermal, HotspotPeaksAtItsCenter) {
  const ThermalSolver solver = paper_die();
  const Vector heat = hotspot_power_map(solver.mesh(), Current{1000.0},
                                        0.5, 0.5, 0.12, 0.3);
  const Vector t = solver.solve(heat);
  const std::size_t center = solver.mesh().node(10, 10);
  const std::size_t corner = solver.mesh().node(0, 0);
  EXPECT_GT(t[center], t[corner] + 5.0);
  EXPECT_NEAR(ThermalSolver::max_temperature(t), t[center], 1e-9);
  // Lateral spreading keeps the hotspot below the no-spreading estimate.
  const double no_spreading =
      40.0 + heat[center] / (22.36e-3 * 22.36e-3 /
                             solver.mesh().node_count() / 1.5e-5);
  EXPECT_LT(t[center], no_spreading);
}

TEST(Thermal, LinearityInPower) {
  const ThermalSolver solver = paper_die(11);
  Vector heat(solver.mesh().node_count(), 0.0);
  heat[60] = 50.0;
  const Vector t1 = solver.solve(heat);
  for (double& h : heat) h *= 2.0;
  const Vector t2 = solver.solve(heat);
  // Rise doubles: t2 - 40 = 2 (t1 - 40).
  for (std::size_t i = 0; i < t1.size(); ++i)
    EXPECT_NEAR(t2[i] - 40.0, 2.0 * (t1[i] - 40.0), 1e-6);
}

TEST(Thermal, BetterCoolingLowersTemperature) {
  ThermalStack strong;
  strong.theta_to_coolant = 0.5e-5;
  ThermalStack weak;
  weak.theta_to_coolant = 3e-5;
  const ThermalSolver cold(22.36_mm, 15, strong);
  const ThermalSolver hot(22.36_mm, 15, weak);
  const Vector heat = uniform_power_map(cold.mesh(), Current{1000.0});
  EXPECT_LT(ThermalSolver::max_temperature(cold.solve(heat)),
            ThermalSolver::max_temperature(hot.solve(heat)));
}

TEST(Thermal, Validation) {
  ThermalStack bad;
  bad.theta_to_coolant = 0.0;
  EXPECT_THROW(ThermalSolver(22.36_mm, 11, bad), InvalidArgument);
  const ThermalSolver solver = paper_die(11);
  EXPECT_THROW(solver.solve(Vector(3, 0.0)), InvalidArgument);
  Vector negative(solver.mesh().node_count(), 0.0);
  negative[0] = -1.0;
  EXPECT_THROW(solver.solve(negative), InvalidArgument);
}

TEST(Electrothermal, ConvergesAndUpliftsLoss) {
  const ThermalSolver solver = paper_die();
  const Vector load = uniform_power_map(solver.mesh(), Current{1000.0});
  std::vector<ThermalVr> vrs;
  // 15 below-die VRs at ~9 W base loss each (DPMIH-ish).
  for (std::size_t k = 0; k < 15; ++k) {
    ThermalVr vr;
    vr.node = (k * 29) % solver.mesh().node_count();
    vr.base_loss = Power{9.0};
    vrs.push_back(vr);
  }
  const ElectrothermalResult r = solve_electrothermal(solver, load, vrs);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.iterations, 1u);
  // Die sits ~30 K above coolant; VR conduction loss rises accordingly.
  EXPECT_GT(r.max_temperature, 70.0);
  EXPECT_LT(r.max_temperature, 135.0);  // VR node is a point source
  EXPECT_GT(r.loss_uplift, 0.05);   // > 5% loss uplift from heating
  EXPECT_LT(r.loss_uplift, 0.30);
  EXPECT_NEAR(r.total_vr_loss.value, 15.0 * 9.0 * (1.0 + r.loss_uplift),
              1e-6);
}

TEST(Electrothermal, ZeroTempcoMeansNoUplift) {
  const ThermalSolver solver = paper_die(11);
  const Vector load = uniform_power_map(solver.mesh(), Current{500.0});
  std::vector<ThermalVr> vrs(4);
  for (std::size_t k = 0; k < 4; ++k) {
    vrs[k].node = k * 25;
    vrs[k].base_loss = Power{5.0};
    vrs[k].tempco_per_k = 0.0;
  }
  const ElectrothermalResult r = solve_electrothermal(solver, load, vrs);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.loss_uplift, 0.0, 1e-12);
}

TEST(Electrothermal, Validation) {
  const ThermalSolver solver = paper_die(11);
  const Vector load(solver.mesh().node_count(), 0.0);
  EXPECT_THROW(solve_electrothermal(solver, load, {}), InvalidArgument);
  std::vector<ThermalVr> bad(1);
  bad[0].node = 99999;
  EXPECT_THROW(solve_electrothermal(solver, load, bad), InvalidArgument);
}


TEST(ThermalTransient, StepResponseApproachesSteadyState) {
  const ThermalSolver solver = paper_die(11);
  const Vector heat = uniform_power_map(solver.mesh(), Current{1000.0});
  const auto r = solver.solve_transient(
      [&](double) { return heat; }, Seconds{0.2}, Seconds{2e-3});
  // Starts at coolant, rises monotonically toward the 70 C steady state.
  EXPECT_NEAR(r.mean_temperature.front(), 40.0, 1e-6);
  for (std::size_t i = 1; i < r.mean_temperature.size(); ++i)
    EXPECT_GE(r.mean_temperature[i], r.mean_temperature[i - 1] - 1e-9);
  EXPECT_NEAR(r.mean_temperature.back(), 70.0, 1.0);
  // After one time constant: ~63% of the rise.
  const double tau = r.time_constant;
  EXPECT_NEAR(tau, 1700.0 * 1.5e-5, 1e-6);
  std::size_t idx = 0;
  while (idx + 1 < r.times.size() && r.times[idx] < tau) ++idx;
  const double rise = (r.mean_temperature[idx] - 40.0) / 30.0;
  EXPECT_NEAR(rise, 0.63, 0.08);
}

TEST(ThermalTransient, BurstPowerIsThermallyFiltered) {
  // 1 ms bursts at 50% duty: the junction never reaches the steady-state
  // temperature of the peak power, and ripples around the average's.
  const ThermalSolver solver = paper_die(11);
  const Vector peak = uniform_power_map(solver.mesh(), Current{2000.0});
  const Vector off(solver.mesh().node_count(), 0.0);
  const auto r = solver.solve_transient(
      [&](double t) {
        const double phase = std::fmod(t, 2e-3);
        return phase < 1e-3 ? peak : off;
      },
      Seconds{0.3}, Seconds{0.25e-3});
  const double t_max =
      *std::max_element(r.max_temperature.begin(), r.max_temperature.end());
  // Steady state of the peak power would be 40 + 60 = 100 C; the average
  // power (1 kW) settles at 70 C. The filtered response stays between.
  EXPECT_LT(t_max, 90.0);
  EXPECT_GT(t_max, 65.0);
}

TEST(ThermalTransient, Validation) {
  const ThermalSolver solver = paper_die(11);
  const Vector heat(solver.mesh().node_count(), 0.0);
  EXPECT_THROW(solver.solve_transient(nullptr, Seconds{1.0}, Seconds{0.1}),
               InvalidArgument);
  EXPECT_THROW(solver.solve_transient([&](double) { return heat; },
                                      Seconds{0.0}, Seconds{0.1}),
               InvalidArgument);
  EXPECT_THROW(solver.solve_transient([&](double) { return Vector(3); },
                                      Seconds{1.0}, Seconds{0.1}),
               InvalidArgument);
}

}  // namespace
}  // namespace vpd
