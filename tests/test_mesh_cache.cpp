// MeshSolveCache: keying, hit/miss accounting, identity of shared
// operators, and equivalence with per-call assembly (the property the
// sweep engine's bit-identical guarantee rests on).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "vpd/package/irdrop.hpp"
#include "vpd/package/mesh_cache.hpp"

namespace vpd {
namespace {

using vpd::literals::operator""_mm;
using vpd::literals::operator""_V;

TEST(MeshSolveCache, HitsShareOneAssembly) {
  MeshSolveCache cache;
  const auto a = cache.get(10.0_mm, 10.0_mm, 11, 11, 2e-3);
  const auto b = cache.get(10.0_mm, 10.0_mm, 11, 11, 2e-3);
  EXPECT_EQ(a.get(), b.get());  // same immutable object
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(MeshSolveCache, DistinctKeysAssembleSeparately) {
  MeshSolveCache cache;
  const auto base = cache.get(10.0_mm, 10.0_mm, 11, 11, 2e-3);
  EXPECT_NE(base.get(), cache.get(10.0_mm, 10.0_mm, 11, 11, 4e-3).get());
  EXPECT_NE(base.get(), cache.get(10.0_mm, 10.0_mm, 21, 11, 2e-3).get());
  EXPECT_NE(base.get(), cache.get(12.0_mm, 10.0_mm, 11, 11, 2e-3).get());
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.stats().hits, 0u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(MeshSolveCache, CachedAssemblyMatchesDirectAssembly) {
  MeshSolveCache cache;
  const auto cached = cache.get(22.36_mm, 22.36_mm, 21, 21, 2e-3);
  const auto direct = assemble_mesh(22.36_mm, 22.36_mm, 21, 21, 2e-3);
  ASSERT_EQ(cached->laplacian.nonzero_count(),
            direct->laplacian.nonzero_count());
  EXPECT_EQ(cached->laplacian.values(), direct->laplacian.values());
  EXPECT_EQ(cached->laplacian.col_indices(), direct->laplacian.col_indices());
}

TEST(MeshSolveCache, SolveThroughCacheIsBitIdenticalToDirectSolve) {
  MeshSolveCache cache;
  const auto assembled = cache.get(10.0_mm, 10.0_mm, 15, 15, 2e-3);
  const GridMesh direct(10.0_mm, 10.0_mm, 15, 15, 2e-3);

  std::vector<VrAttachment> vrs{
      {assembled->mesh.node(7, 0), 1.0_V, Resistance{1e-4}},
      {assembled->mesh.node(7, 14), 1.0_V, Resistance{1e-4}}};
  Vector sinks(assembled->mesh.node_count(),
               50.0 / assembled->mesh.node_count());
  const IrDropResult via_cache = solve_irdrop(*assembled, vrs, sinks);
  const IrDropResult via_mesh = solve_irdrop(direct, vrs, sinks);
  ASSERT_EQ(via_cache.node_voltages.size(), via_mesh.node_voltages.size());
  for (std::size_t i = 0; i < via_cache.node_voltages.size(); ++i) {
    EXPECT_EQ(via_cache.node_voltages[i], via_mesh.node_voltages[i]);
  }
  EXPECT_EQ(via_cache.vr_currents, via_mesh.vr_currents);
  EXPECT_EQ(via_cache.cg_iterations, via_mesh.cg_iterations);
}

TEST(MeshSolveCache, ConcurrentGettersBuildEachKeyOnce) {
  MeshSolveCache cache;
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const AssembledMesh>> seen(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&cache, &seen, t] {
        seen[t] = cache.get(10.0_mm, 10.0_mm, 21, 21, 2e-3);
      });
    }
    for (std::thread& th : threads) th.join();
  }
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[0].get(), seen[t].get());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, static_cast<std::size_t>(kThreads - 1));
}

}  // namespace
}  // namespace vpd
