// MeshSolveCache: keying, hit/miss accounting, identity of shared
// operators, and equivalence with per-call assembly (the property the
// sweep engine's bit-identical guarantee rests on).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "vpd/package/irdrop.hpp"
#include "vpd/package/mesh_cache.hpp"

namespace vpd {
namespace {

using vpd::literals::operator""_mm;
using vpd::literals::operator""_V;

TEST(MeshSolveCache, HitsShareOneAssembly) {
  MeshSolveCache cache;
  const auto a = cache.get(10.0_mm, 10.0_mm, 11, 11, 2e-3);
  const auto b = cache.get(10.0_mm, 10.0_mm, 11, 11, 2e-3);
  EXPECT_EQ(a.get(), b.get());  // same immutable object
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(MeshSolveCache, DistinctKeysAssembleSeparately) {
  MeshSolveCache cache;
  const auto base = cache.get(10.0_mm, 10.0_mm, 11, 11, 2e-3);
  EXPECT_NE(base.get(), cache.get(10.0_mm, 10.0_mm, 11, 11, 4e-3).get());
  EXPECT_NE(base.get(), cache.get(10.0_mm, 10.0_mm, 21, 11, 2e-3).get());
  EXPECT_NE(base.get(), cache.get(12.0_mm, 10.0_mm, 11, 11, 2e-3).get());
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.stats().hits, 0u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(MeshSolveCache, CachedAssemblyMatchesDirectAssembly) {
  MeshSolveCache cache;
  const auto cached = cache.get(22.36_mm, 22.36_mm, 21, 21, 2e-3);
  const auto direct = assemble_mesh(22.36_mm, 22.36_mm, 21, 21, 2e-3);
  ASSERT_EQ(cached->laplacian.nonzero_count(),
            direct->laplacian.nonzero_count());
  EXPECT_EQ(cached->laplacian.values(), direct->laplacian.values());
  EXPECT_EQ(cached->laplacian.col_indices(), direct->laplacian.col_indices());
}

TEST(MeshSolveCache, AssemblyCarriesTheMultigridHierarchy) {
  // Every assembled mesh ships a ready multigrid hierarchy sized to its
  // grid, so kMultigrid solves through the cache never rebuild it. A
  // 33x33 grid coarsens to at most 64 nodes in three steps, so the
  // hierarchy must have several levels, not a degenerate single one.
  MeshSolveCache cache;
  const auto assembled = cache.get(10.0_mm, 10.0_mm, 33, 33, 2e-3);
  ASSERT_FALSE(assembled->mg_symbolic.empty());
  EXPECT_EQ(assembled->mg_symbolic.rows(), assembled->mesh.node_count());
  EXPECT_GE(assembled->mg_symbolic.level_count(), 3u);
  // The hierarchy is usable as-is for a solve against the cached operator.
  std::vector<VrAttachment> vrs{
      {assembled->mesh.node(16, 0), 1.0_V, Resistance{1e-4}}};
  Vector sinks(assembled->mesh.node_count(),
               50.0 / assembled->mesh.node_count());
  IrDropOptions options;
  options.warm_start_voltage = 1.0;
  options.preconditioner = CgPreconditioner::kMultigrid;
  const IrDropResult result = solve_irdrop(*assembled, vrs, sinks, options);
  EXPECT_GT(result.cg_iterations, 0u);
  EXPECT_GT(result.min_node_voltage.value, 0.8);
}

TEST(MeshSolveCache, SolveThroughCacheIsBitIdenticalToDirectSolve) {
  MeshSolveCache cache;
  const auto assembled = cache.get(10.0_mm, 10.0_mm, 15, 15, 2e-3);
  const GridMesh direct(10.0_mm, 10.0_mm, 15, 15, 2e-3);

  std::vector<VrAttachment> vrs{
      {assembled->mesh.node(7, 0), 1.0_V, Resistance{1e-4}},
      {assembled->mesh.node(7, 14), 1.0_V, Resistance{1e-4}}};
  Vector sinks(assembled->mesh.node_count(),
               50.0 / assembled->mesh.node_count());
  const IrDropResult via_cache = solve_irdrop(*assembled, vrs, sinks);
  const IrDropResult via_mesh = solve_irdrop(direct, vrs, sinks);
  ASSERT_EQ(via_cache.node_voltages.size(), via_mesh.node_voltages.size());
  for (std::size_t i = 0; i < via_cache.node_voltages.size(); ++i) {
    EXPECT_EQ(via_cache.node_voltages[i], via_mesh.node_voltages[i]);
  }
  EXPECT_EQ(via_cache.vr_currents, via_mesh.vr_currents);
  EXPECT_EQ(via_cache.cg_iterations, via_mesh.cg_iterations);
}

// Regression for the latent aliasing defect: the cache key originally
// carried only (width, height, nx, ny, sheet), so a conductance-perturbed
// request would have returned the nominal operator. The key now includes
// a digest of the perturbation; a perturbed mesh must never hit the
// nominal entry.
TEST(MeshSolveCache, PerturbedRequestNeverHitsNominalEntry) {
  MeshSolveCache cache;
  const MeshPerturbation damage{
      EdgeScaleRegion{2.0_mm, 2.0_mm, 4.0_mm, 4.0_mm, 0.1}};
  const auto nominal = cache.get(10.0_mm, 10.0_mm, 15, 15, 2e-3);
  const auto perturbed = cache.get(10.0_mm, 10.0_mm, 15, 15, 2e-3, damage);
  EXPECT_NE(nominal.get(), perturbed.get());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_TRUE(perturbed->mesh.perturbed());
  EXPECT_FALSE(nominal->mesh.perturbed());
  // The perturbed operator really differs from the nominal one.
  EXPECT_NE(nominal->laplacian.values(), perturbed->laplacian.values());
  // Same perturbation hits its own entry; the nominal entry stays intact.
  EXPECT_EQ(perturbed.get(),
            cache.get(10.0_mm, 10.0_mm, 15, 15, 2e-3, damage).get());
  EXPECT_EQ(nominal.get(), cache.get(10.0_mm, 10.0_mm, 15, 15, 2e-3).get());
  EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(MeshSolveCache, PerturbationDigestSeparatesNominalAndVariants) {
  EXPECT_EQ(mesh_perturbation_digest(MeshPerturbation{}), 0u);
  const MeshPerturbation a{
      EdgeScaleRegion{2.0_mm, 2.0_mm, 4.0_mm, 4.0_mm, 0.1}};
  MeshPerturbation b = a;
  b.front().scale = 0.2;
  EXPECT_NE(mesh_perturbation_digest(a), 0u);  // non-empty never keys as 0
  EXPECT_EQ(mesh_perturbation_digest(a), mesh_perturbation_digest(a));
  EXPECT_NE(mesh_perturbation_digest(a), mesh_perturbation_digest(b));
}

TEST(MeshSolveCache, PerturbedCachedAssemblyMatchesDirectAssembly) {
  const MeshPerturbation damage{
      EdgeScaleRegion{1.0_mm, 1.0_mm, 5.0_mm, 3.0_mm, 0.25}};
  MeshSolveCache cache;
  const auto cached = cache.get(10.0_mm, 10.0_mm, 21, 21, 2e-3, damage);
  const auto direct = assemble_mesh(10.0_mm, 10.0_mm, 21, 21, 2e-3, damage);
  ASSERT_EQ(cached->laplacian.nonzero_count(),
            direct->laplacian.nonzero_count());
  EXPECT_EQ(cached->laplacian.values(), direct->laplacian.values());
  EXPECT_EQ(cached->laplacian.col_indices(), direct->laplacian.col_indices());
}

TEST(MeshSolveCache, ConcurrentGettersBuildEachKeyOnce) {
  MeshSolveCache cache;
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const AssembledMesh>> seen(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&cache, &seen, t] {
        seen[t] = cache.get(10.0_mm, 10.0_mm, 21, 21, 2e-3);
      });
    }
    for (std::thread& th : threads) th.join();
  }
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[0].get(), seen[t].get());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, static_cast<std::size_t>(kThreads - 1));
}

}  // namespace
}  // namespace vpd
