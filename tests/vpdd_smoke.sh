#!/bin/sh
# End-to-end vpdd smoke test: pipe 20 NDJSON lines (10 pipelined
# evaluation requests, one of them malformed, two droop-campaign
# requests and two optimize requests — one valid, one rejected each —
# an evaluate_batch request whose two same-operator members must solve
# as one block panel,
# plus metrics / trace / unknown control verbs, a malformed line whose
# "id" must still be echoed, and
# a final graceful-shutdown verb) through the daemon with tracing
# enabled, and check that every line gets an in-order, id-tagged
# response with the expected status, that the trace file is a Chrome
# trace-event document, and that the shutdown verb drains and exits 0.
# Pure POSIX shell + grep so it runs in every CI matrix, sanitizers
# included.
set -eu

VPDD="${1:?usage: vpdd_smoke.sh /path/to/vpdd}"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

requests="$workdir/requests.ndjson"
responses="$workdir/responses.ndjson"
trace="$workdir/trace.json"

cat > "$requests" <<'EOF'
{"id":1,"architecture":"A1","topology":"DSCH"}
{"id":2,"architecture":"A2","topology":"DPMIH"}
{"id":3,"architecture":"A1","topology":"DSCH"}
{"id":4,"architecture":"A0"}
{"id":5,"architecture":"A3@12V","topology":"DSCH"}
{"id":6,"architecture":"A1","topology":"3LHD"}
this line is not JSON {{{
{"id":8,"architecture":"A9","topology":"DSCH"}
{"id":9,"architecture":"A2","topology":"DSCH","fault_scenario":{"faults":[{"kind":"vr-dropout","site":3}]}}
{"id":10,"architecture":"A3@12V","topology":"DSCH","options":{"mesh_nodes":21}}
{"id":14,"cmd":"transient","architecture":"A1","topology":"DSCH","options":{"mesh_nodes":21},"config":{"tile_grid":1,"include_bursts":false,"include_ramps":false,"max_dropout_sites":1,"threads":2}}
{"id":15,"cmd":"transient","architecture":"A0"}
{"id":16,"cmd":"optimize","space":{"architectures":["A3@12V"],"topologies":["DSCH"],"vr_count":{"lo":36,"hi":40}},"config":{"population":4,"generations":1,"survivability":{"max_elites":1},"threads":2},"options":{"mesh_nodes":11}}
{"id":17,"cmd":"optimize","space":{"vr_count":{"lo":0,"hi":4}}}
{"id":18,"cmd":"evaluate_batch","requests":[{"architecture":"A3@12V","topology":"DSCH","options":{"mesh_nodes":31}},{"architecture":"A3@12V","topology":"DSCH","options":{"mesh_nodes":31},"fault_scenario":{"faults":[{"kind":"stage2-dropout","site":0}]}}]}
{"id":11,"cmd":"metrics"}
{"id":12,"cmd":"trace"}
{"id":13,"cmd":"frobnicate"}
{"id":21,"architecture":
{"id":99,"cmd":"shutdown"}
EOF

"$VPDD" --threads 2 --metrics --trace "$trace" \
  < "$requests" > "$responses" 2> "$workdir/metrics.json" \
  || fail "vpdd must exit 0 after a graceful shutdown verb"

fail() {
  echo "vpdd_smoke: $1" >&2
  echo "--- responses ---" >&2
  cat "$responses" >&2
  exit 1
}

# One response line per request, in request order.
[ "$(wc -l < "$responses")" -eq 20 ] || fail "expected 20 response lines"
expected_ids='1 2 3 4 5 6 null 8 9 10 14 15 16 17 18 11 12 13 21 99'
actual_ids="$(grep -o '^{"id":[^,]*' "$responses" | sed 's/^{"id"://' | tr '\n' ' ' | sed 's/ $//')"
[ "$actual_ids" = "$expected_ids" ] || fail "response ids/order wrong: $actual_ids"

# Statuses: the malformed line, the unknown architecture and the unknown
# cmd produce structured errors, the over-rated A2/DPMIH and 3LHD
# combinations are excluded, the control verbs succeed, the rest evaluate.
check_status() {
  grep -q "^{\"id\":$1,\"status\":\"$2\"" "$responses" \
    || fail "request id=$1 did not report status=$2"
}
check_status 1 ok
check_status 2 excluded
check_status 3 ok
check_status 4 ok
check_status 5 ok
check_status 6 excluded
check_status null error
check_status 8 error
check_status 9 ok
check_status 10 ok
check_status 14 ok
check_status 15 error
check_status 16 ok
check_status 17 error
check_status 18 ok
check_status 11 ok
check_status 12 ok
check_status 13 error
check_status 21 error
check_status 99 ok

# A malformed line still echoes its request id when the raw bytes carry
# one, so pipelining clients never receive an orphaned error.
grep '^{"id":21,' "$responses" | grep -q '"status":"error"' \
  || fail "the truncated id=21 line must get an id-tagged error"

# The shutdown verb drains in-flight work and replies with the final
# metrics snapshot before the daemon exits 0.
grep '^{"id":99,' "$responses" | grep -q '"shutdown":true' \
  || fail "the shutdown response must acknowledge the drain"
grep '^{"id":99,' "$responses" | grep -q '"metrics":{' \
  || fail "the shutdown response must carry the final metrics"

# Error responses carry a message, never a result body.
grep '"status":"error"' "$responses" | grep -q '"error":"' \
  || fail "error responses must carry an error message"
grep '"status":"error"' "$responses" | grep -q '"result"' \
  && fail "error responses must not carry a result body"

# Evaluated responses carry a versioned body with the stage breakdown.
grep '^{"id":1,' "$responses" | grep -q '"schema_version":2' \
  || fail "responses must carry schema_version 2"
grep '^{"id":1,' "$responses" | grep -q '"timings":{"queue_seconds":' \
  || fail "evaluated responses must carry stage timings"

# The "transient" verb runs a droop campaign: the response carries the
# per-scenario outcomes and the campaign's own telemetry snapshot; the A0
# request is rejected with a structured error.
grep '^{"id":14,' "$responses" | grep -q '"pass_fraction":' \
  || fail "transient responses must carry the campaign pass fraction"
grep '^{"id":14,' "$responses" | grep -q '"outcomes":\[' \
  || fail "transient responses must carry per-scenario outcomes"
grep '^{"id":14,' "$responses" | grep -q '"observability":{' \
  || fail "transient responses must carry the telemetry snapshot"
grep '^{"id":15,' "$responses" | grep -q 'distribution mesh' \
  || fail "the A0 transient request must explain the rejection"

# The "optimize" verb runs the seeded Pareto search: the response carries
# the front, the hypervolume and the versioned body; the degenerate space
# is rejected with a structured error before any evaluation runs.
grep '^{"id":16,' "$responses" | grep -q '"schema_version":2' \
  || fail "optimize responses must carry schema_version 2"
grep '^{"id":16,' "$responses" | grep -q '"front":\[' \
  || fail "optimize responses must carry the Pareto front"
grep '^{"id":16,' "$responses" | grep -q '"hypervolume":' \
  || fail "optimize responses must carry the hypervolume"
grep '^{"id":17,' "$responses" | grep -q '"status":"error"' \
  || fail "the degenerate optimize space must be rejected"

# The "evaluate_batch" verb resolves its members together: the response
# carries one result per request in request order, and the two
# same-operator A3 members (nominal vs stage2-dropout — same mesh, sink
# scaling only) must have been solved as one two-column block panel.
grep '^{"id":18,' "$responses" | grep -q '"results":\[' \
  || fail "evaluate_batch responses must carry the results array"
grep '^{"id":18,' "$responses" | grep -q '"timings":' \
  || fail "evaluate_batch results must carry per-member bodies"

# The "metrics" verb resolves after every earlier request and reports the
# unified telemetry shape, including the serve.transient.* instruments.
grep '^{"id":11,' "$responses" | grep -q '"metrics":{' \
  || fail "the metrics verb must return a metrics body"
grep '^{"id":11,' "$responses" | grep -q '"counters":{' \
  || fail "metrics bodies must carry the unified counters shape"
grep '^{"id":11,' "$responses" | grep -q '"serve.transient.requests":1' \
  || fail "metrics must count the resolved transient request"
grep '^{"id":11,' "$responses" | grep -q '"serve.optimize.requests":1' \
  || fail "metrics must count the resolved optimize request"
grep '^{"id":11,' "$responses" | grep -q '"serve.batch.requests":2' \
  || fail "metrics must count both evaluate_batch members"
grep '^{"id":11,' "$responses" | grep -q '"serve.batch.panel_columns":2' \
  || fail "the two same-operator batch members must form a block panel"

# The "trace" verb flushed the buffer to the --trace file, which must be
# a Chrome trace-event document with at least one recorded span.
grep '^{"id":12,' "$responses" | grep -q '"trace":{"path":' \
  || fail "the trace verb must report the written path"
[ "$(head -c 15 "$trace")" = '{"traceEvents":' ] \
  || fail "trace file is not a Chrome trace-event document"
grep -q '"name":"vpd.evaluate"' "$trace" \
  || fail "trace file should contain evaluator spans"

# The duplicate (id=3) is served without a second evaluation, and the
# --metrics shutdown dump is the unified telemetry snapshot (the pre-v2
# flat aliases are gone — docs/observability.md).
grep -q '"serve.requests": 8' "$workdir/metrics.json" \
  || fail "metrics dump should count 8 schema-valid requests"
grep -q '"serve.evaluated": 7' "$workdir/metrics.json" \
  || fail "metrics dump should show the duplicate was not re-evaluated"
grep -q '"counters": {' "$workdir/metrics.json" \
  || fail "metrics dump should carry the unified telemetry shape"

echo "vpdd_smoke: OK (20 pipelined lines: 10 requests, 1 batch, 2 malformed, 2 transient, 2 optimize, 3 control verbs, 1 shutdown)"
