// Sweep engine: determinism (parallel bit-identical to serial and to the
// explorer), cache semantics under concurrency, result ordering, error
// transport, and the worker pool itself. These run in their own ctest
// executable labelled `sweep` so the thread-pool paths can be exercised
// under -DVPD_SANITIZE=ON in isolation.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>

#include "vpd/common/error.hpp"
#include "vpd/sweep/sweep.hpp"
#include "vpd/sweep/thread_pool.hpp"

namespace vpd {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, WaitIdleCoversTasksSubmittedByTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&pool, &count] {
      count.fetch_add(1, std::memory_order_relaxed);
      pool.submit(
          [&count] { count.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit(
          [&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // ~ThreadPool joins after the queue is drained
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroThreadsPicksHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

// ---------------------------------------------------------------------------
// SweepGridBuilder
// ---------------------------------------------------------------------------

TEST(SweepGrid, DefaultGridMatchesExplorerOrder) {
  const std::vector<SweepPoint> points = SweepGridBuilder().build();
  // A0 once plus 4 VPD architectures x 3 topologies.
  ASSERT_EQ(points.size(), 13u);
  EXPECT_EQ(points[0].architecture, ArchitectureKind::kA0_PcbConversion);
  EXPECT_FALSE(points[0].topology.has_value());
  std::size_t i = 1;
  for (ArchitectureKind arch : all_architectures()) {
    if (arch == ArchitectureKind::kA0_PcbConversion) continue;
    for (TopologyKind topo : all_topologies()) {
      ASSERT_LT(i, points.size());
      EXPECT_EQ(points[i].architecture, arch);
      EXPECT_EQ(points[i].topology, topo);
      ++i;
    }
  }
  EXPECT_EQ(i, points.size());
}

TEST(SweepGrid, LabelsAreUniqueAndNamed) {
  const std::vector<SweepPoint> points =
      SweepGridBuilder()
          .technologies({DeviceTechnology::kSilicon,
                         DeviceTechnology::kGalliumNitride})
          .build();
  std::set<std::string> labels;
  for (const SweepPoint& p : points) labels.insert(p.label);
  EXPECT_EQ(labels.size(), points.size());
  EXPECT_EQ(points[0].label, "A0/Si");
  EXPECT_EQ(sweep_point_label(ArchitectureKind::kA1_InterposerPeriphery,
                              TopologyKind::kDsch,
                              DeviceTechnology::kGalliumNitride),
            "A1/DSCH");
}

TEST(SweepGrid, OptionVariantsMultiplyTheGrid) {
  SweepGridBuilder builder;
  builder.architectures({ArchitectureKind::kA1_InterposerPeriphery})
      .topologies({TopologyKind::kDsch});
  EvaluationOptions coarse;
  coarse.mesh_nodes = 21;
  EvaluationOptions fine;
  fine.mesh_nodes = 61;
  builder.add_option_variant(coarse, "coarse").add_option_variant(fine,
                                                                  "fine");
  const std::vector<SweepPoint> points = builder.build();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].options.mesh_nodes, 21u);
  EXPECT_EQ(points[1].options.mesh_nodes, 61u);
  EXPECT_EQ(points[0].label, "A1/DSCH/coarse");
  EXPECT_EQ(points[1].label, "A1/DSCH/fine");
}

// ---------------------------------------------------------------------------
// SweepRunner determinism
// ---------------------------------------------------------------------------

EvaluationOptions paper_options() {
  EvaluationOptions o;
  o.below_die_area_fraction = 1.6;
  return o;
}

void expect_identical(const ExplorationEntry& a, const ExplorationEntry& b,
                      const std::string& label) {
  ASSERT_EQ(a.excluded(), b.excluded()) << label;
  ASSERT_EQ(a.evaluation.has_value(), b.evaluation.has_value()) << label;
  ASSERT_EQ(a.extrapolated.has_value(), b.extrapolated.has_value()) << label;
  const auto check = [&](const ArchitectureEvaluation& x,
                         const ArchitectureEvaluation& y) {
    // Exact equality on doubles is the point: bit-identical results.
    EXPECT_EQ(x.total_loss().value, y.total_loss().value) << label;
    EXPECT_EQ(x.vertical_loss.value, y.vertical_loss.value) << label;
    EXPECT_EQ(x.horizontal_loss.value, y.horizontal_loss.value) << label;
    EXPECT_EQ(x.input_power.value, y.input_power.value) << label;
    EXPECT_EQ(x.cg_iterations, y.cg_iterations) << label;
    ASSERT_EQ(x.vr_current_spread.has_value(),
              y.vr_current_spread.has_value())
        << label;
    if (x.vr_current_spread) {
      EXPECT_EQ(x.vr_current_spread->min, y.vr_current_spread->min) << label;
      EXPECT_EQ(x.vr_current_spread->max, y.vr_current_spread->max) << label;
    }
  };
  if (a.evaluation) check(*a.evaluation, *b.evaluation);
  if (a.extrapolated) check(*a.extrapolated, *b.extrapolated);
}

TEST(SweepRunner, ParallelIsBitIdenticalToSerial) {
  const std::vector<SweepPoint> points =
      SweepGridBuilder(paper_options()).build();
  const PowerDeliverySpec spec = paper_system();

  SweepConfig serial_config;
  serial_config.threads = 1;
  SweepConfig parallel_config;
  parallel_config.threads = 4;
  const SweepReport serial = SweepRunner(spec, serial_config).run(points);
  const SweepReport parallel = SweepRunner(spec, parallel_config).run(points);

  ASSERT_EQ(serial.outcomes.size(), points.size());
  ASSERT_EQ(parallel.outcomes.size(), points.size());
  EXPECT_EQ(serial.threads_used, 1u);
  EXPECT_EQ(parallel.threads_used, 4u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(parallel.outcomes[i].point.label, points[i].label);
    expect_identical(serial.outcomes[i].entry, parallel.outcomes[i].entry,
                     points[i].label);
  }
}

TEST(SweepRunner, MatchesTheSerialExplorer) {
  const EvaluationOptions options = paper_options();
  const PowerDeliverySpec spec = paper_system();
  const ExplorationResult explored =
      ArchitectureExplorer(spec, options).explore();
  SweepConfig config;
  config.threads = 4;
  const SweepReport sweep =
      SweepRunner(spec, config).run(SweepGridBuilder(options).build());
  ASSERT_EQ(explored.entries.size(), sweep.outcomes.size());
  for (std::size_t i = 0; i < sweep.outcomes.size(); ++i) {
    expect_identical(explored.entries[i], sweep.outcomes[i].entry,
                     sweep.outcomes[i].point.label);
  }
}

TEST(SweepRunner, CacheDoesNotChangeResults) {
  const std::vector<SweepPoint> points =
      SweepGridBuilder(paper_options()).build();
  const PowerDeliverySpec spec = paper_system();
  SweepConfig cached;
  cached.threads = 2;
  SweepConfig uncached;
  uncached.threads = 2;
  uncached.use_mesh_cache = false;
  const SweepReport with = SweepRunner(spec, cached).run(points);
  const SweepReport without = SweepRunner(spec, uncached).run(points);
  for (std::size_t i = 0; i < points.size(); ++i) {
    expect_identical(with.outcomes[i].entry, without.outcomes[i].entry,
                     points[i].label);
  }
  EXPECT_EQ(without.cache_stats.hits, 0u);
  EXPECT_EQ(without.cache_stats.misses, 0u);
}

TEST(SweepRunner, CacheMissesEqualDistinctGeometries) {
  // 12 mesh-solving points on one geometry -> exactly one miss, however
  // the workers interleave (the cache assembles under its lock).
  const std::vector<SweepPoint> points =
      SweepGridBuilder(paper_options()).build();
  SweepConfig config;
  config.threads = 4;
  const SweepReport report =
      SweepRunner(paper_system(), config).run(points);
  EXPECT_EQ(report.cache_stats.misses, 1u);
  EXPECT_EQ(report.cache_stats.hits, 11u);  // A0 never touches the mesh
}

TEST(SweepRunner, ExternalCachePersistsAcrossRuns) {
  MeshSolveCache cache;
  SweepConfig config;
  config.threads = 2;
  config.cache = &cache;
  const SweepRunner runner(paper_system(), config);
  const std::vector<SweepPoint> points =
      SweepGridBuilder(paper_options()).build();
  const SweepReport first = runner.run(points);
  EXPECT_EQ(first.cache_stats.misses, 1u);
  const SweepReport second = runner.run(points);
  // The second run finds everything already assembled; per-run stats are
  // deltas, not lifetime totals.
  EXPECT_EQ(second.cache_stats.misses, 0u);
  EXPECT_EQ(second.cache_stats.hits, 12u);
}

TEST(SweepRunner, StatsCarryDeterministicCgIterations) {
  const std::vector<SweepPoint> points =
      SweepGridBuilder(paper_options()).build();
  SweepConfig a;
  a.threads = 1;
  SweepConfig b;
  b.threads = 4;
  const SweepReport serial = SweepRunner(paper_system(), a).run(points);
  const SweepReport parallel = SweepRunner(paper_system(), b).run(points);
  EXPECT_GT(serial.total_cg_iterations(), 0u);
  EXPECT_EQ(serial.total_cg_iterations(), parallel.total_cg_iterations());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(serial.outcomes[i].stats.cg_iterations,
              parallel.outcomes[i].stats.cg_iterations);
    EXPECT_GE(serial.outcomes[i].stats.wall_seconds, 0.0);
  }
}

TEST(SweepRunner, InfeasiblePointsComeBackExcludedNotThrown) {
  SweepPoint p;
  p.architecture = ArchitectureKind::kA1_InterposerPeriphery;
  p.topology = TopologyKind::kDickson;  // over-rated at the paper's load
  p.options = paper_options();
  p.label = "A1/3LHD";
  const SweepReport report = SweepRunner(paper_system()).run({p});
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_TRUE(report.outcomes[0].entry.excluded());
  EXPECT_FALSE(report.outcomes[0].entry.exclusion_reason.empty());
}

TEST(SweepRunner, HarnessErrorsAreRethrownOnTheCallingThread) {
  SweepPoint good;
  good.architecture = ArchitectureKind::kA0_PcbConversion;
  good.options = paper_options();
  SweepPoint bad = good;
  bad.architecture = ArchitectureKind::kA1_InterposerPeriphery;
  bad.topology = TopologyKind::kDsch;
  bad.options.irdrop_relative_tolerance = -1.0;  // invalid configuration
  SweepConfig config;
  config.threads = 2;
  EXPECT_THROW(SweepRunner(paper_system(), config).run({good, bad, good}),
               InvalidArgument);
}

}  // namespace
}  // namespace vpd
