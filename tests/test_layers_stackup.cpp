#include <gtest/gtest.h>

#include "vpd/common/error.hpp"
#include "vpd/package/layers.hpp"
#include "vpd/package/stackup.hpp"

namespace vpd {
namespace {

using namespace vpd::literals;

TEST(Layers, SheetResistanceFromGeometry) {
  // 70 um copper, 4 planes: 1.7e-8 / 70e-6 / 4 ~ 60.7 uOhm/sq.
  EXPECT_NEAR(pcb_power_planes().sheet_resistance() * 1e6, 60.7, 0.5);
  // Thinner layers have higher sheet resistance.
  EXPECT_GT(package_power_planes().sheet_resistance(),
            pcb_power_planes().sheet_resistance());
  EXPECT_GT(interposer_rdl().sheet_resistance(),
            package_power_planes().sheet_resistance());
  EXPECT_GT(die_grid().sheet_resistance(),
            interposer_rdl().sheet_resistance());
}

TEST(Layers, SegmentResistanceAndLoss) {
  const LateralSegment seg{"test", pcb_power_planes(), 2.0};
  EXPECT_NEAR(seg.resistance().value,
              2.0 * pcb_power_planes().sheet_resistance(), 1e-15);
  EXPECT_NEAR(seg.loss(10.0_A).value, 100.0 * seg.resistance().value,
              1e-12);
}

TEST(Layers, DefaultSegmentsHaveSubMilliohmResistances) {
  // Sanity band: each default lateral segment is in the 0.01-0.5 mOhm
  // range — the regime where a 1 kA current produces the paper's tens of
  // percent loss.
  for (const LateralSegment& seg :
       {pcb_lateral_segment(), package_lateral_segment(),
        interposer_lateral_segment()}) {
    EXPECT_GT(as_mOhm(seg.resistance()), 0.01) << seg.name;
    EXPECT_LT(as_mOhm(seg.resistance()), 0.5) << seg.name;
  }
}

TEST(Stackup, StageLossIsQuadraticInCurrent) {
  PowerPath path;
  path.add_lateral(pcb_lateral_segment(), 10.0_A);
  const Power at10 = path.total_loss();
  PowerPath path2;
  path2.add_lateral(pcb_lateral_segment(), 20.0_A);
  EXPECT_NEAR(path2.total_loss().value, 4.0 * at10.value, 1e-12);
}

TEST(Stackup, VerticalLateralSplit) {
  PowerPath path;
  const auto bga = interconnect_spec(InterconnectLevel::kPcbToPackage);
  path.add_vertical(bga, 21.0_A);
  path.add_lateral(pcb_lateral_segment(), 21.0_A);
  EXPECT_GT(path.vertical_loss().value, 0.0);
  EXPECT_GT(path.lateral_loss().value, 0.0);
  EXPECT_NEAR(path.total_loss().value,
              path.vertical_loss().value + path.lateral_loss().value,
              1e-15);
  ASSERT_EQ(path.stages().size(), 2u);
  EXPECT_TRUE(path.stages()[0].vertical);
  EXPECT_FALSE(path.stages()[1].vertical);
}

TEST(Stackup, ViaCountDefaultsToCurrentLimit) {
  PowerPath path;
  const auto bga = interconnect_spec(InterconnectLevel::kPcbToPackage);
  path.add_vertical(bga, 21.0_A);  // 1 A per via -> 21 vias
  EXPECT_EQ(path.stages()[0].vias_per_net, 21u);
  // Override wins.
  PowerPath path2;
  path2.add_vertical(bga, 21.0_A, 100);
  EXPECT_EQ(path2.stages()[0].vias_per_net, 100u);
  EXPECT_LT(path2.stages()[0].resistance.value,
            path.stages()[0].resistance.value);
}

TEST(Stackup, VerticalLossIsNegligibleAtHighViaCount) {
  // The paper's observation: vertical interconnect loss is negligible.
  // 1 kA through 25,000 C4 vias: R = 2 * 1.16 mOhm / 25000 ~ 93 nOhm
  // -> less than 0.1 W of the 1 kW delivered.
  PowerPath path;
  const auto c4 = interconnect_spec(InterconnectLevel::kPackageToInterposer);
  path.add_vertical(c4, Current{1000.0});
  EXPECT_LT(path.total_loss().value, 0.5);
}

TEST(Stackup, DropAccumulates) {
  PowerPath path;
  path.add_lateral(pcb_lateral_segment(), 100.0_A);
  path.add_lateral(package_lateral_segment(), 100.0_A);
  const double expected = 100.0 * (pcb_lateral_segment().resistance().value +
                                   package_lateral_segment().resistance().value);
  EXPECT_NEAR(path.total_drop().value, expected, 1e-12);
}

TEST(Stackup, Validation) {
  PowerPath path;
  EXPECT_THROW(path.add_lateral(pcb_lateral_segment(), Current{0.0}),
               InvalidArgument);
  const auto bga = interconnect_spec(InterconnectLevel::kPcbToPackage);
  EXPECT_THROW(path.add_vertical(bga, Current{-1.0}), InvalidArgument);
  PathStage bad;
  bad.name = "bad";
  bad.resistance = Resistance{-1.0};
  EXPECT_THROW(path.add_stage(bad), InvalidArgument);
}

}  // namespace
}  // namespace vpd
