#include "vpd/common/sparse.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "vpd/common/error.hpp"
#include "vpd/common/matrix.hpp"
#include "vpd/common/rng.hpp"

namespace vpd {
namespace {

TEST(Triplets, DuplicatesSumOnCompile) {
  TripletList t(2, 2);
  t.add(0, 0, 1.0);
  t.add(0, 0, 2.5);
  t.add(1, 1, 1.0);
  const CsrMatrix m(t);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 1.0);
  EXPECT_EQ(m.nonzero_count(), 2u);
}

TEST(Triplets, ZeroEntriesStayStructural) {
  // Exact-zero entries (a fully severed mesh edge) must stay in the
  // pattern: in-place stamping and cached symbolic factorizations key off
  // the nominal structure, so a scale=0 fault may not change it.
  TripletList t(2, 2);
  t.add(0, 0, 0.0);
  t.add(0, 1, 1.0);
  t.add(0, 1, -1.0);  // cancels to zero
  CsrMatrix m(t);
  EXPECT_EQ(m.nonzero_count(), 2u);  // stored zeros, both slots kept
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
  // The retained slot accepts in-place stamps, exactly like its nominal
  // counterpart.
  m.add_to_entry(0, 1, 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
}

TEST(Triplets, OutOfRangeThrows) {
  TripletList t(2, 2);
  EXPECT_THROW(t.add(2, 0, 1.0), InvalidArgument);
  EXPECT_THROW(t.add(0, 2, 1.0), InvalidArgument);
}

TEST(Csr, MultiplyMatchesDense) {
  TripletList t(3, 3);
  t.add(0, 0, 2.0);
  t.add(0, 2, -1.0);
  t.add(1, 1, 3.0);
  t.add(2, 0, -1.0);
  t.add(2, 2, 2.0);
  const CsrMatrix m(t);
  const Vector x{1.0, 2.0, 3.0};
  const Vector y = m.multiply(x);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
  EXPECT_DOUBLE_EQ(y[2], 5.0);
}

TEST(Csr, MultiplySizeMismatchThrows) {
  TripletList t(2, 2);
  t.add(0, 0, 1.0);
  const CsrMatrix m(t);
  EXPECT_THROW(m.multiply(Vector{1.0, 2.0, 3.0}), InvalidArgument);
}

TEST(Csr, DiagonalExtraction) {
  TripletList t(3, 3);
  t.add(0, 0, 4.0);
  t.add(2, 2, 5.0);
  t.add(0, 1, 1.0);
  const CsrMatrix m(t);
  const Vector d = m.diagonal();
  EXPECT_DOUBLE_EQ(d[0], 4.0);
  EXPECT_DOUBLE_EQ(d[1], 0.0);
  EXPECT_DOUBLE_EQ(d[2], 5.0);
}

TEST(Csr, SymmetryDetection) {
  TripletList sym(2, 2);
  sym.add(0, 0, 2.0);
  sym.add(0, 1, -1.0);
  sym.add(1, 0, -1.0);
  sym.add(1, 1, 2.0);
  EXPECT_TRUE(CsrMatrix(sym).is_symmetric());

  TripletList asym(2, 2);
  asym.add(0, 1, 1.0);
  EXPECT_FALSE(CsrMatrix(asym).is_symmetric());
}

// Builds the standard 1-D Poisson (tridiagonal 2,-1) SPD matrix.
CsrMatrix poisson1d(std::size_t n) {
  TripletList t(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    t.add(i, i, 2.0);
    if (i + 1 < n) {
      t.add(i, i + 1, -1.0);
      t.add(i + 1, i, -1.0);
    }
  }
  return CsrMatrix(t);
}

TEST(Cg, SolvesPoissonSystem) {
  const std::size_t n = 50;
  const CsrMatrix a = poisson1d(n);
  Vector b(n, 1.0);
  const CgResult r = solve_cg(a, b);
  EXPECT_TRUE(r.converged);
  const Vector residual = a.multiply(r.x) - b;
  EXPECT_LT(norm2(residual), 1e-8 * norm2(b));
}

TEST(Cg, MatchesDenseSolution) {
  const std::size_t n = 20;
  const CsrMatrix a = poisson1d(n);
  Matrix dense(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) dense(i, j) = a.at(i, j);
  Vector b(n);
  Rng rng(7);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  const Vector x_dense = solve_dense(dense, b);
  const CgResult r = solve_cg(a, b);
  ASSERT_TRUE(r.converged);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(r.x[i], x_dense[i], 1e-7);
}

TEST(Cg, ZeroRhsGivesZeroSolution) {
  const CsrMatrix a = poisson1d(10);
  const CgResult r = solve_cg(a, Vector(10, 0.0));
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0u);
  EXPECT_DOUBLE_EQ(norm2(r.x), 0.0);
}

TEST(Cg, NonPositiveDiagonalThrows) {
  TripletList t(2, 2);
  t.add(0, 0, 1.0);
  t.add(1, 1, -1.0);
  const CsrMatrix a(t);
  EXPECT_THROW(solve_cg(a, Vector{1.0, 1.0}), NumericalError);
}

TEST(Cg, IndefiniteMatrixDetected) {
  // Positive diagonal but indefinite: [[1, 2], [2, 1]].
  TripletList t(2, 2);
  t.add(0, 0, 1.0);
  t.add(0, 1, 2.0);
  t.add(1, 0, 2.0);
  t.add(1, 1, 1.0);
  const CsrMatrix a(t);
  EXPECT_THROW(solve_cg(a, Vector{1.0, -1.0}), NumericalError);
}

TEST(Cg, ShapeMismatchThrows) {
  const CsrMatrix a = poisson1d(4);
  EXPECT_THROW(solve_cg(a, Vector(5, 1.0)), InvalidArgument);
}

TEST(Cg, RespectsIterationCap) {
  const CsrMatrix a = poisson1d(200);
  Vector b(200, 1.0);
  CgOptions opts;
  opts.max_iterations = 3;
  const CgResult r = solve_cg(a, b, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 3u);
  EXPECT_GT(r.residual_norm, 0.0);
}

TEST(Csr, AddToEntryUpdatesInPlace) {
  const CsrMatrix base = poisson1d(4);
  CsrMatrix m = base;
  m.add_to_entry(1, 1, 2.5);   // diagonal shunt stamp
  m.add_to_entry(0, 1, -0.5);  // off-diagonal update
  EXPECT_DOUBLE_EQ(m.at(1, 1), 4.5);
  EXPECT_DOUBLE_EQ(m.at(0, 1), -1.5);
  // The sparsity pattern is fixed: structural zeros cannot be created.
  EXPECT_THROW(m.add_to_entry(0, 3, 1.0), InvalidArgument);
  EXPECT_THROW(m.add_to_entry(4, 0, 1.0), InvalidArgument);
}

TEST(Csr, InfinityNormIsMaxAbsRowSum) {
  TripletList t(3, 3);
  t.add(0, 0, 2.0);
  t.add(0, 2, -3.0);  // row 0: |2| + |-3| = 5
  t.add(1, 1, 4.0);   // row 1: 4
  t.add(2, 2, 1.0);   // row 2: 1
  EXPECT_DOUBLE_EQ(CsrMatrix(t).infinity_norm(), 5.0);
  EXPECT_DOUBLE_EQ(poisson1d(5).infinity_norm(), 4.0);  // 1+2+1 interior
}

TEST(Cg, WarmStartCutsIterationsWithoutChangingTheAnswer) {
  const std::size_t n = 100;
  const CsrMatrix a = poisson1d(n);
  Vector b(n, 1.0);
  const CgResult cold = solve_cg(a, b);
  ASSERT_TRUE(cold.converged);

  CgOptions warm_opts;
  warm_opts.x0 = cold.x;  // previous solution: residual starts tiny
  const CgResult warm = solve_cg(a, b, warm_opts);
  ASSERT_TRUE(warm.converged);
  EXPECT_LT(warm.iterations, cold.iterations);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(warm.x[i], cold.x[i], 1e-6 * std::abs(cold.x[i]));

  CgOptions bad;
  bad.x0 = Vector(n + 1, 0.0);
  EXPECT_THROW(solve_cg(a, b, bad), InvalidArgument);
}

TEST(Cg, StiffSystemConvergesViaBackwardError) {
  // Conductances spanning nine decades (die sheet vs via shunts in the
  // stacked-mesh model). rtol * ||b|| sits below the rounding floor
  // eps * ||A|| * ||x||, so a pure relative-residual criterion can never
  // fire; the normwise backward-error criterion is attainable and honest.
  const std::size_t n = 40;
  TripletList t(n, n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double g = (i % 2 == 0) ? 1e3 : 1e12;  // branch conductance
    t.add(i, i, g);
    t.add(i + 1, i + 1, g);
    t.add(i, i + 1, -g);
    t.add(i + 1, i, -g);
  }
  t.add(0, 0, 1e12);  // stiff ground shunt makes the Laplacian SPD
  const CsrMatrix a(t);
  Vector b(n, 1.0);
  CgOptions opts;
  opts.relative_tolerance = 1e-12;
  const CgResult r = solve_cg(a, b, opts);
  ASSERT_TRUE(r.converged);
  // The reported residual satisfies the backward-error bound.
  const double eta =
      r.residual_norm / (a.infinity_norm() * norm2(r.x) + norm2(b));
  EXPECT_LE(eta, 1e-12);
  // And the true residual matches what the solver reported.
  EXPECT_NEAR(norm2(a.multiply(r.x) - b), r.residual_norm,
              1e-6 * r.residual_norm + 1e-300);
}

// Property sweep: grounded resistive-grid Laplacians of varying size are
// SPD; CG must converge and satisfy current conservation (A x = b).
class CgGridSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CgGridSweep, ConvergesOnGroundedGridLaplacian) {
  const std::size_t side = GetParam();
  const std::size_t n = side * side;
  TripletList t(n, n);
  auto id = [side](std::size_t r, std::size_t c) { return r * side + c; };
  Rng rng(1234 + side);
  for (std::size_t r = 0; r < side; ++r) {
    for (std::size_t c = 0; c < side; ++c) {
      if (c + 1 < side) {
        const double g = rng.uniform(0.5, 2.0);
        t.add(id(r, c), id(r, c), g);
        t.add(id(r, c + 1), id(r, c + 1), g);
        t.add(id(r, c), id(r, c + 1), -g);
        t.add(id(r, c + 1), id(r, c), -g);
      }
      if (r + 1 < side) {
        const double g = rng.uniform(0.5, 2.0);
        t.add(id(r, c), id(r, c), g);
        t.add(id(r + 1, c), id(r + 1, c), g);
        t.add(id(r, c), id(r + 1, c), -g);
        t.add(id(r + 1, c), id(r, c), -g);
      }
    }
  }
  t.add(0, 0, 1.0);  // ground shunt makes the Laplacian nonsingular
  const CsrMatrix a(t);
  ASSERT_TRUE(a.is_symmetric(1e-12));

  Vector b(n);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  const CgResult result = solve_cg(a, b);
  ASSERT_TRUE(result.converged) << "side=" << side;
  EXPECT_LT(norm2(a.multiply(result.x) - b), 1e-8 * norm2(b));
}

INSTANTIATE_TEST_SUITE_P(GridSizes, CgGridSweep,
                         ::testing::Values<std::size_t>(2, 4, 8, 16, 32));

}  // namespace
}  // namespace vpd
