// Property sweep of the architecture evaluator across the system-spec
// space: invariants that must hold for any sane (power, area, feed
// voltage) combination, not just the paper's headline point.
#include <gtest/gtest.h>

#include <tuple>

#include "vpd/arch/evaluator.hpp"
#include "vpd/common/error.hpp"

namespace vpd {
namespace {

struct SpecPoint {
  double watts;
  double die_mm2;
  double pcb_volts;
};

class EvaluatorSpecSweep : public ::testing::TestWithParam<SpecPoint> {
 protected:
  static PowerDeliverySpec make_spec(const SpecPoint& p) {
    PowerDeliverySpec spec = paper_system();
    spec.total_power = Power{p.watts};
    spec.die_area = Area{p.die_mm2 * 1e-6};
    spec.pcb_voltage = Voltage{p.pcb_volts};
    return spec;
  }
  static EvaluationOptions options() {
    EvaluationOptions o;
    o.below_die_area_fraction = 1.6;
    o.mesh_nodes = 31;
    return o;
  }
};

TEST_P(EvaluatorSpecSweep, BreakdownInvariants) {
  const PowerDeliverySpec spec = make_spec(GetParam());
  for (ArchitectureKind arch : all_architectures()) {
    ArchitectureEvaluation eval;
    try {
      eval = evaluate_architecture(arch, spec, TopologyKind::kDsch,
                                   DeviceTechnology::kGalliumNitride,
                                   options());
    } catch (const InfeasibleDesign&) {
      continue;  // genuinely infeasible points are allowed to refuse
    }
    SCOPED_TRACE(std::string(to_string(arch)) + " @ " +
                 std::to_string(GetParam().watts) + " W");
    // All loss components are non-negative and sum to the total.
    EXPECT_GE(eval.vertical_loss.value, 0.0);
    EXPECT_GE(eval.horizontal_loss.value, 0.0);
    EXPECT_GE(eval.conversion_stage1.value, 0.0);
    EXPECT_GE(eval.conversion_stage2.value, 0.0);
    EXPECT_NEAR(eval.total_loss().value,
                eval.vertical_loss.value + eval.horizontal_loss.value +
                    eval.conversion_loss().value,
                1e-9);
    // Efficiency is a valid fraction.
    const double eta = eval.efficiency(spec.total_power);
    EXPECT_GT(eta, 0.0);
    EXPECT_LT(eta, 1.0);
    // Vertical interconnect stays a minor contributor everywhere.
    EXPECT_LT(eval.vertical_loss.value,
              0.1 * spec.total_power.value + 1.0);
    // Per-VR currents (when present) sum to the die current.
    if (eval.vr_current_spread) {
      const Summary& s = *eval.vr_current_spread;
      EXPECT_NEAR(s.mean * static_cast<double>(s.count),
                  arch == ArchitectureKind::kA3_TwoStage12V ||
                          arch == ArchitectureKind::kA3_TwoStage6V
                      ? (spec.total_power.value +
                         eval.conversion_stage2.value) /
                            intermediate_voltage(arch).value
                      : spec.die_current().value,
                  0.01 * spec.die_current().value);
    }
  }
}

TEST_P(EvaluatorSpecSweep, VpdBeatsPcbConversion) {
  const PowerDeliverySpec spec = make_spec(GetParam());
  const double a0 = evaluate_architecture(
                        ArchitectureKind::kA0_PcbConversion, spec,
                        TopologyKind::kDsch,
                        DeviceTechnology::kGalliumNitride, options())
                        .total_loss()
                        .value;
  try {
    const double a2 = evaluate_architecture(
                          ArchitectureKind::kA2_InterposerBelowDie, spec,
                          TopologyKind::kDsch,
                          DeviceTechnology::kGalliumNitride, options())
                          .total_loss()
                          .value;
    EXPECT_LT(a2, a0);
  } catch (const InfeasibleDesign&) {
    // A2 may be unplaceable at extreme densities; A0's loss still stands.
  }
}

INSTANTIATE_TEST_SUITE_P(
    SpecSpace, EvaluatorSpecSweep,
    ::testing::Values(SpecPoint{400.0, 400.0, 48.0},
                      SpecPoint{1000.0, 500.0, 48.0},   // the paper point
                      SpecPoint{1000.0, 800.0, 48.0},
                      SpecPoint{1500.0, 600.0, 48.0},
                      SpecPoint{700.0, 500.0, 24.0},
                      SpecPoint{2000.0, 900.0, 54.0}));

}  // namespace
}  // namespace vpd
