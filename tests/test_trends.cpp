#include "vpd/core/trends.hpp"

#include <gtest/gtest.h>

#include "vpd/common/error.hpp"

namespace vpd {
namespace {

using namespace vpd::literals;

TEST(Trends, ChipDatasetShapeMatchesFigureOne) {
  const auto chips = hpc_chip_dataset();
  ASSERT_GE(chips.size(), 6u);
  for (const auto& c : chips) {
    EXPECT_FALSE(c.is_server) << c.name;
    EXPECT_GT(c.power.value, 100.0) << c.name;
    EXPECT_LT(c.power.value, 1500.0) << c.name;
    EXPECT_GT(c.pds_efficiency, 0.6) << c.name;
    EXPECT_LT(c.pds_efficiency, 0.95) << c.name;
  }
}

TEST(Trends, ChipsApproachOneAmpPerMm2) {
  // The paper: power density in modern HPC accelerators approaches
  // 1 A/mm^2 (Fig. 1).
  const auto chips = hpc_chip_dataset();
  double max_density = 0.0;
  for (const auto& c : chips)
    max_density = std::max(max_density, as_A_per_mm2(c.current_density()));
  EXPECT_GT(max_density, 0.8);
  EXPECT_LT(max_density, 1.5);
}

TEST(Trends, ChipsApproachOneKilowatt) {
  const auto chips = hpc_chip_dataset();
  double max_power = 0.0;
  for (const auto& c : chips) max_power = std::max(max_power, c.power.value);
  // "rapidly approaching a thousand watts for an individual chip".
  EXPECT_GE(max_power, 600.0);
}

TEST(Trends, ServersReachTwentyKilowatts) {
  const auto servers = hpc_server_dataset();
  double max_power = 0.0;
  for (const auto& s : servers) {
    EXPECT_TRUE(s.is_server) << s.name;
    max_power = std::max(max_power, s.power.value);
  }
  EXPECT_GE(max_power, 15000.0);  // "20 kW for a server system"
}

TEST(Trends, CurrentDemandGrewOrdersOfMagnitude) {
  const auto current = current_demand_trend();
  ASSERT_GE(current.size(), 5u);
  // Monotonically increasing.
  for (std::size_t i = 1; i < current.size(); ++i)
    EXPECT_GT(current[i].value, current[i - 1].value);
  EXPECT_GT(trend_growth(current), 100.0);  // orders of magnitude
}

TEST(Trends, PackagingFeatureOnlyShrankFourfold) {
  const auto feature = packaging_feature_trend();
  for (std::size_t i = 1; i < feature.size(); ++i)
    EXPECT_LT(feature[i].value, feature[i - 1].value);
  // The paper/Fig. 2: feature decreased by only ~4x.
  EXPECT_NEAR(1.0 / trend_growth(feature), 4.0, 0.5);
}

TEST(Trends, CurrentDensityValidation) {
  HpcSystemPoint p;
  p.name = "x";
  p.power = 100.0_W;
  p.silicon_area = 100.0_mm2;
  EXPECT_NEAR(as_A_per_mm2(p.current_density()), 1.0, 1e-9);
  EXPECT_THROW(p.current_density(Voltage{0.0}), InvalidArgument);
  p.silicon_area = Area{0.0};
  EXPECT_THROW(p.current_density(), InvalidArgument);
}

TEST(Trends, GrowthValidation) {
  EXPECT_THROW(trend_growth({{2000, 1.0}}), InvalidArgument);
  EXPECT_THROW(trend_growth({{2000, 0.0}, {2010, 1.0}}), InvalidArgument);
}

}  // namespace
}  // namespace vpd
