#include <gtest/gtest.h>

#include "vpd/circuit/spice_export.hpp"
#include "vpd/common/error.hpp"
#include "vpd/converters/dsch.hpp"
#include "vpd/core/variation.hpp"

namespace vpd {
namespace {

using namespace vpd::literals;

// ---- Monte Carlo variation ---------------------------------------------------

TEST(Variation, ConverterDistributionCentersOnNominal) {
  const auto conv = dsch_converter();
  const EfficiencyDistribution d = sample_converter_efficiency(
      conv->loss_model(), 1.0_V, 20.0_A, 0.85, {}, 2000, 7);
  EXPECT_EQ(d.samples, 2000u);
  // Median stays near the nominal value; spread is finite.
  const double nominal = conv->efficiency(20.0_A);
  EXPECT_NEAR(d.efficiency_at_load.median, nominal, 0.01);
  EXPECT_GT(d.efficiency_at_load.stddev, 0.001);
  EXPECT_LT(d.efficiency_at_load.stddev, 0.05);
  // 85% target at 20 A is comfortably met.
  EXPECT_GT(d.yield, 0.99);
}

TEST(Variation, TighterToleranceNarrowsSpread) {
  const auto conv = dsch_converter();
  ConverterTolerance loose;
  loose.fixed_loss_sigma = 0.3;
  loose.conduction_loss_sigma = 0.3;
  ConverterTolerance tight;
  tight.fixed_loss_sigma = 0.03;
  tight.conduction_loss_sigma = 0.03;
  const auto dl = sample_converter_efficiency(conv->loss_model(), 1.0_V,
                                              20.0_A, 0.85, loose, 1000, 3);
  const auto dt = sample_converter_efficiency(conv->loss_model(), 1.0_V,
                                              20.0_A, 0.85, tight, 1000, 3);
  EXPECT_LT(dt.efficiency_at_load.stddev, dl.efficiency_at_load.stddev);
}

TEST(Variation, AggressiveTargetReducesYield) {
  const auto conv = dsch_converter();
  const auto relaxed = sample_converter_efficiency(
      conv->loss_model(), 1.0_V, 20.0_A, 0.85, {}, 500, 11);
  const auto harsh = sample_converter_efficiency(
      conv->loss_model(), 1.0_V, 20.0_A, 0.92, {}, 500, 11);
  EXPECT_GT(relaxed.yield, harsh.yield);
  EXPECT_LT(harsh.yield, 0.5);  // 92% at 20 A is past the nominal curve
}

TEST(Variation, DeterministicForFixedSeed) {
  const auto conv = dsch_converter();
  const auto a = sample_converter_efficiency(conv->loss_model(), 1.0_V,
                                             10.0_A, 0.9, {}, 200, 42);
  const auto b = sample_converter_efficiency(conv->loss_model(), 1.0_V,
                                             10.0_A, 0.9, {}, 200, 42);
  EXPECT_DOUBLE_EQ(a.efficiency_at_load.mean, b.efficiency_at_load.mean);
  EXPECT_DOUBLE_EQ(a.yield, b.yield);
}

TEST(Variation, ArchitectureLossDistribution) {
  EvaluationOptions options;
  options.below_die_area_fraction = 1.6;
  // Full 41-node mesh: coarser grids overstate the corner-VR currents
  // (patch granularity) and trip the rating check.
  const LossDistribution d = sample_architecture_loss(
      paper_system(), ArchitectureKind::kA1_InterposerPeriphery,
      TopologyKind::kDsch, DeviceTechnology::kGalliumNitride, options,
      /*target=*/0.22, {}, 25, 5);
  EXPECT_EQ(d.samples, 25u);
  // Nominal A1/DSCH is ~17.5%; the spread stays in a plausible band.
  EXPECT_GT(d.loss_fraction.median, 0.14);
  EXPECT_LT(d.loss_fraction.median, 0.21);
  EXPECT_GT(d.yield, 0.8);
}

TEST(Variation, Validation) {
  const auto conv = dsch_converter();
  EXPECT_THROW(sample_converter_efficiency(conv->loss_model(), 1.0_V,
                                           10.0_A, 1.5, {}, 100),
               InvalidArgument);
  EXPECT_THROW(sample_converter_efficiency(conv->loss_model(), 1.0_V,
                                           10.0_A, 0.9, {}, 1),
               InvalidArgument);
}

// ---- SPICE export -------------------------------------------------------------

Netlist demo_netlist() {
  Netlist nl;
  const NodeId in = nl.add_node("in");
  const NodeId out = nl.add_node("out");
  nl.add_vsource("V1", in, kGround, 12.0_V);
  nl.add_resistor("R1", in, out, Resistance{2.5});
  nl.add_capacitor("C1", out, kGround, 10.0_uF, 1.0_V);
  nl.add_inductor("L1", out, kGround, 4.7_uH, Current{0.5});
  nl.add_isource("Iload", out, kGround, 3.0_A);
  nl.add_switch("S1", in, out, Resistance{0.01}, Resistance{1e9}, true);
  return nl;
}

TEST(SpiceExport, EmitsAllElements) {
  const std::string deck = to_spice(demo_netlist());
  EXPECT_NE(deck.find("V1 in 0 DC 12"), std::string::npos);
  EXPECT_NE(deck.find("R1 in out 2.5"), std::string::npos);
  EXPECT_NE(deck.find("C1 out 0 1e-05 IC=1"), std::string::npos);
  EXPECT_NE(deck.find("L1 out 0 4.7e-06 IC=0.5"), std::string::npos);
  EXPECT_NE(deck.find("Iload out 0 DC 3"), std::string::npos);
  EXPECT_NE(deck.find(".op"), std::string::npos);
  EXPECT_NE(deck.find(".end"), std::string::npos);
}

TEST(SpiceExport, SwitchFrozenAtState) {
  const std::string closed = to_spice(demo_netlist());
  EXPECT_NE(closed.find("R_S1 in out 0.01"), std::string::npos);
  EXPECT_NE(closed.find("switch frozen closed"), std::string::npos);

  SpiceExportOptions opts;
  opts.switch_states = SwitchStates{false};
  const std::string open = to_spice(demo_netlist(), opts);
  EXPECT_NE(open.find("R_S1 in out 1e+09"), std::string::npos);
}

TEST(SpiceExport, OptionsControlAnalysisCards) {
  SpiceExportOptions opts;
  opts.operating_point = false;
  opts.tran_card = "1n 100u";
  opts.initial_conditions = false;
  opts.title = "my deck";
  const std::string deck = to_spice(demo_netlist(), opts);
  EXPECT_EQ(deck.find(".op"), std::string::npos);
  EXPECT_NE(deck.find(".tran 1n 100u"), std::string::npos);
  EXPECT_EQ(deck.find("IC="), std::string::npos);
  EXPECT_NE(deck.find("* my deck"), std::string::npos);
}

TEST(SpiceExport, SanitizesAwkwardNames) {
  Netlist nl;
  const NodeId n = nl.add_node("node-1.a");
  nl.add_resistor("weird name", n, kGround, Resistance{1.0});
  nl.add_vsource("V1", n, kGround, 1.0_V);
  const std::string deck = to_spice(nl);
  EXPECT_NE(deck.find("R_weird_name node_1_a 0 1"), std::string::npos);
}

TEST(SpiceExport, StateSizeValidation) {
  SpiceExportOptions opts;
  opts.switch_states = SwitchStates{true, false};  // netlist has 1 switch
  EXPECT_THROW(to_spice(demo_netlist(), opts), InvalidArgument);
}

}  // namespace
}  // namespace vpd
