#!/bin/sh
# End-to-end fleet smoke test for the scale-out serving layer.
#
# Part 1 (bit-identity): the same pipelined NDJSON stream — evaluations
# with duplicates, an excluded design point, a malformed line carrying an
# id, a seeded optimize run — is answered identically by a single vpdd on
# stdin and by a vpd-router fronting a 3-shard vpdd fleet, modulo the
# from_cache/wall-clock tails (cache placement and wall times
# legitimately differ). The optimize line also exercises canonical-key
# routing: the verb must pin to one shard, not round-robin.
#
# Part 2 (socket fleet): vpd-router listens on a Unix socket in front of
# 2 vpdd shards; vpd-client pipelines requests, a fleet_metrics verb and
# a graceful shutdown through the socket. Every line must be answered in
# order (zero loss through the drain), the fleet snapshot must carry the
# summed per-shard serve counters, and the router must exit 0.
#
# Pure POSIX shell + grep so it runs in every CI matrix, sanitizers
# included.
set -eu

VPD_ROUTER="${1:?usage: fleet_smoke.sh /path/to/vpd-router /path/to/vpdd /path/to/vpd-client}"
VPDD="${2:?usage: fleet_smoke.sh /path/to/vpd-router /path/to/vpdd /path/to/vpd-client}"
VPD_CLIENT="${3:?usage: fleet_smoke.sh /path/to/vpd-router /path/to/vpdd /path/to/vpd-client}"

workdir="$(mktemp -d)"
router_pid=""
cleanup() {
  [ -n "$router_pid" ] && kill "$router_pid" 2>/dev/null
  rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
  echo "fleet_smoke: $1" >&2
  for f in "$workdir"/*.ndjson; do
    echo "--- $f ---" >&2
    cat "$f" >&2 || true
  done
  exit 1
}

# --- Part 1: router responses are bit-identical to a single vpdd -----------

stream="$workdir/stream.ndjson"
cat > "$stream" <<'EOF'
{"id":1,"architecture":"A1","topology":"DSCH"}
{"id":2,"architecture":"A2","topology":"DPMIH"}
{"id":3,"architecture":"A1","topology":"DSCH"}
{"id":4,"architecture":"A0"}
{"id":5,"architecture":"A3@12V","topology":"DSCH"}
{"id":6,"architecture":"A9","topology":"DSCH"}
{"id":7,"architecture":
{"id":8,"architecture":"A1","topology":"DSCH","options":{"mesh_nodes":21}}
{"id":9,"cmd":"optimize","space":{"architectures":["A3@12V"],"topologies":["DSCH"],"vr_count":{"lo":36,"hi":40}},"config":{"population":4,"generations":1,"threads":2},"options":{"mesh_nodes":11}}
EOF

"$VPDD" --threads 2 < "$stream" > "$workdir/single.ndjson" \
  || fail "single vpdd exited non-zero"
"$VPD_ROUTER" --shards 3 --vpdd "$VPDD" --threads 2 \
  < "$stream" > "$workdir/fleet.ndjson" \
  || fail "vpd-router exited non-zero"

# from_cache and the wall-clock tails differ run to run (they are
# metadata, not results); everything before them must match byte for
# byte. Optimize reports order their deterministic fields (front,
# hypervolume, evaluations) ahead of "wall_seconds" for exactly this cut.
strip_meta() { sed 's/,"from_cache".*//; s/,"wall_seconds".*//' "$1"; }
strip_meta "$workdir/single.ndjson" > "$workdir/single.stripped"
strip_meta "$workdir/fleet.ndjson" > "$workdir/fleet.stripped"
cmp -s "$workdir/single.stripped" "$workdir/fleet.stripped" \
  || { diff "$workdir/single.stripped" "$workdir/fleet.stripped" >&2 || true
       fail "fleet responses differ from single-process vpdd"; }

# The malformed id=7 line still got an id-tagged error through the fleet.
grep '^{"id":7,' "$workdir/fleet.ndjson" | grep -q '"status":"error"' \
  || fail "malformed line must get an id-tagged error through the router"

# The optimize verb came back through the fleet with the seeded Pareto
# front intact (the bit-identity diff above already proved it matches the
# single-process run).
grep '^{"id":9,' "$workdir/fleet.ndjson" | grep -q '"front":\[' \
  || fail "optimize through the router must carry the Pareto front"

# --- Part 2: socket fleet with drain ---------------------------------------

sock="$workdir/fleet.sock"
"$VPD_ROUTER" --shards 2 --vpdd "$VPDD" --threads 2 \
  --listen "unix:$sock" 2> "$workdir/router.log" &
router_pid=$!

tries=0
while [ ! -S "$sock" ]; do
  tries=$((tries + 1))
  [ "$tries" -le 100 ] || fail "router socket never appeared"
  kill -0 "$router_pid" 2>/dev/null || fail "router died during startup"
  sleep 0.1
done

cat > "$workdir/socket_requests.ndjson" <<'EOF'
{"id":10,"architecture":"A1","topology":"DSCH"}
{"id":11,"architecture":"A2","topology":"DSCH"}
{"id":12,"architecture":"A1","topology":"DSCH"}
{"id":13,"cmd":"fleet_metrics"}
{"id":14,"cmd":"shutdown"}
EOF

"$VPD_CLIENT" "unix:$sock" \
  < "$workdir/socket_requests.ndjson" > "$workdir/socket.ndjson" \
  || fail "vpd-client exited non-zero"

# Zero loss through the graceful drain: every line answered, in order.
[ "$(wc -l < "$workdir/socket.ndjson")" -eq 5 ] \
  || fail "expected 5 socket responses (zero-loss drain)"
ids="$(grep -o '^{"id":[^,]*' "$workdir/socket.ndjson" \
       | sed 's/^{"id"://' | tr '\n' ' ' | sed 's/ $//')"
[ "$ids" = "10 11 12 13 14" ] || fail "socket response ids/order wrong: $ids"
grep '^{"id":10,' "$workdir/socket.ndjson" | grep -q '"status":"ok"' \
  || fail "evaluation through the socket fleet must succeed"

# The fleet snapshot is the merge of both shards plus the router's own
# net.* instruments: 3 evaluations were forwarded before the verb, and
# both shards must have reported in.
fleet_line="$(grep '^{"id":13,' "$workdir/socket.ndjson")"
echo "$fleet_line" | grep -q '"fleet":{"shards":2' \
  || fail "fleet_metrics must report the shard count"
echo "$fleet_line" | grep -q '"serve.requests":3' \
  || fail "fleet_metrics must sum per-shard serve.requests to 3"
echo "$fleet_line" | grep -q '"net.router.shards_reporting":2' \
  || fail "both shards must contribute to the fleet snapshot"
echo "$fleet_line" | grep -q '"net.router.forwarded":' \
  || fail "fleet_metrics must include the router's own instruments"

# The shutdown ack carries the drained fleet's final merged metrics.
grep '^{"id":14,' "$workdir/socket.ndjson" | grep -q '"shutdown":true' \
  || fail "the shutdown response must acknowledge the drain"
grep '^{"id":14,' "$workdir/socket.ndjson" | grep -q '"metrics":{' \
  || fail "the shutdown response must carry the final fleet metrics"

# The duplicate id=12 landed on the same shard as id=10 (key affinity),
# so the fleet evaluated only 2 distinct points before the metrics verb.
echo "$fleet_line" | grep -q '"serve.evaluated":2' \
  || fail "key affinity must dedup the duplicate onto one shard's caches"

wait "$router_pid" || fail "router must exit 0 after a client-driven drain"
router_pid=""

echo "fleet_smoke: OK (bit-identity vs single vpdd incl. optimize, 2-shard socket fleet, zero-loss drain)"
