#include "vpd/converters/control.hpp"

#include <gtest/gtest.h>

#include "vpd/circuit/transient.hpp"
#include "vpd/common/error.hpp"

namespace vpd {
namespace {

using namespace vpd::literals;

PiControllerParams stable_pi() {
  PiControllerParams p;
  p.reference = 1.0_V;
  p.f_sw = 1.0_MHz;
  p.initial_duty = 1.0 / 12.0;
  p.kp = 0.02;
  p.ki = 3.0e3;
  return p;
}

// A 12 V synchronous buck with a damping resistive load (0.1 Ohm = 10 A
// at 1 V) and an optional extra current-source load.
NodeId build_buck(Netlist& nl, SourceFn v_in, SourceFn extra_load) {
  const NodeId vin = nl.add_node("vin");
  const NodeId sw = nl.add_node("sw");
  const NodeId out = nl.add_node("out");
  nl.add_vsource("Vin", vin, kGround, std::move(v_in));
  nl.add_switch("S_hi", vin, sw, Resistance{1e-3}, Resistance{1e8});
  nl.add_switch("S_lo", sw, kGround, Resistance{1e-3}, Resistance{1e8});
  nl.add_inductor("L1", sw, out, Inductance{2e-6}, Current{10.0});
  nl.add_capacitor("Cout", out, kGround, Capacitance{100e-6}, 1.0_V);
  nl.add_resistor("Rload", out, kGround, Resistance{0.1});
  if (extra_load) nl.add_isource("Iextra", out, kGround, std::move(extra_load));
  return out;
}

TransientResult run(const Netlist& nl, VoltageModePiController& pi,
                    double t_stop) {
  TransientOptions opts;
  opts.t_stop = Seconds{t_stop};
  opts.dt = Seconds{4e-9};
  opts.controller = pi.controller();
  opts.observer = pi.observer();
  return simulate(nl, opts);
}

TEST(Control, HoldsReferenceAtSteadyState) {
  Netlist nl;
  const NodeId out = build_buck(nl, [](double) { return 12.0; }, {});
  VoltageModePiController pi(stable_pi(), out, 0, 1);
  const TransientResult r = run(nl, pi, 300e-6);
  EXPECT_NEAR(r.voltage(out).tail(30e-6).average(), 1.0, 0.01);
  // Integral has absorbed the switch-drop error; duty near 1/12.
  EXPECT_NEAR(pi.duty(), 1.0 / 12.0, 0.02);
}

TEST(Control, RejectsLineStep) {
  // Vin steps 12 -> 16 V at t = 200 us; open loop would jump to ~1.33 V,
  // the PI loop pulls the duty down and restores 1 V.
  Netlist nl;
  const NodeId out = build_buck(
      nl, [](double t) { return t < 200e-6 ? 12.0 : 16.0; }, {});
  VoltageModePiController pi(stable_pi(), out, 0, 1);
  const TransientResult r = run(nl, pi, 900e-6);
  const Trace vout = r.voltage(out);
  // Disturbed right after the step...
  EXPECT_GT(vout.max(200e-6, 300e-6), 1.02);
  // ...but settled back near 1 V at the end.
  EXPECT_NEAR(vout.tail(50e-6).average(), 1.0, 0.02);
  // The duty command ended near the new conversion ratio 1/16.
  EXPECT_LT(pi.duty(), 1.0 / 12.0 - 0.01);
}

TEST(Control, RecoversFromLoadStep) {
  // Extra 15 A drawn from t = 200 us.
  Netlist nl;
  const NodeId out = build_buck(
      nl, [](double) { return 12.0; },
      [](double t) { return t < 200e-6 ? 0.0 : 15.0; });
  VoltageModePiController pi(stable_pi(), out, 0, 1);
  const TransientResult r = run(nl, pi, 700e-6);
  const Trace vout = r.voltage(out);
  // Visible droop right after the step, recovery by the end.
  EXPECT_LT(vout.min(200e-6, 320e-6), 0.99);
  EXPECT_NEAR(vout.tail(50e-6).average(), 1.0, 0.02);
}

TEST(Control, DutyStaysWithinLimits) {
  // Unreachable reference saturates the duty at max_duty (anti-windup
  // keeps the integrator bounded).
  Netlist nl;
  const NodeId out = build_buck(nl, [](double) { return 12.0; }, {});
  PiControllerParams p = stable_pi();
  p.reference = Voltage{20.0};  // cannot exceed Vin
  VoltageModePiController pi(p, out, 0, 1);
  run(nl, pi, 100e-6);
  EXPECT_NEAR(pi.duty(), p.max_duty, 1e-9);
}

TEST(Control, ParameterValidation) {
  PiControllerParams p = stable_pi();
  p.f_sw = Frequency{0.0};
  EXPECT_THROW(VoltageModePiController(p, 1, 0, 1), InvalidArgument);
  p = stable_pi();
  p.min_duty = 0.5;
  p.max_duty = 0.4;
  EXPECT_THROW(VoltageModePiController(p, 1, 0, 1), InvalidArgument);
  p = stable_pi();
  p.initial_duty = 0.001;  // below min
  EXPECT_THROW(VoltageModePiController(p, 1, 0, 1), InvalidArgument);
  EXPECT_THROW(VoltageModePiController(stable_pi(), 1, 2, 2),
               InvalidArgument);
}

}  // namespace
}  // namespace vpd
