#include <gtest/gtest.h>

#include "vpd/common/error.hpp"
#include "vpd/converters/catalog.hpp"
#include "vpd/converters/dickson.hpp"
#include "vpd/converters/dpmih.hpp"
#include "vpd/converters/dsch.hpp"
#include "vpd/converters/transformer_stage.hpp"

namespace vpd {
namespace {

using namespace vpd::literals;

TEST(Hybrid, DpmihMatchesPublishedPeak) {
  const auto c = dpmih_converter();
  EXPECT_NEAR(c->efficiency(30.0_A), 0.909, 1e-9);
  EXPECT_NEAR(c->loss_model().peak_current().value, 30.0, 1e-9);
  EXPECT_TRUE(c->supports(100.0_A));
  EXPECT_FALSE(c->supports(101.0_A));
}

TEST(Hybrid, DschMatchesPublishedPeak) {
  const auto c = dsch_converter();
  EXPECT_NEAR(c->efficiency(10.0_A), 0.915, 1e-9);
  EXPECT_TRUE(c->supports(30.0_A));
  EXPECT_FALSE(c->supports(31.0_A));
  EXPECT_EQ(c->device_technology(), DeviceTechnology::kSilicon);
}

TEST(Hybrid, DicksonMatchesPublishedPeak) {
  const auto c = dickson_converter();
  EXPECT_NEAR(c->efficiency(3.0_A), 0.904, 1e-9);
  EXPECT_FALSE(c->supports(20.0_A));  // the paper's Fig. 7 exclusion
  // Extrapolated estimate is still computable, clearly flagged by API name.
  EXPECT_GT(c->loss_extrapolated(20.0_A).value, 0.0);
}

TEST(Hybrid, AreasFollowSwitchDensity) {
  // Table II: area = switches / (switches per mm^2).
  EXPECT_NEAR(as_mm2(dpmih_converter()->spec().area), 8.0 / 0.15, 1e-6);
  EXPECT_NEAR(as_mm2(dsch_converter()->spec().area), 5.0 / 0.69, 1e-6);
  EXPECT_NEAR(as_mm2(dickson_converter()->spec().area), 11.0 / 1.22, 1e-6);
}

TEST(Hybrid, SwitchDensityRoundTrips) {
  EXPECT_NEAR(dpmih_converter()->spec().switches_per_mm2(), 0.15, 1e-9);
  EXPECT_NEAR(dsch_converter()->spec().switches_per_mm2(), 0.69, 1e-9);
  EXPECT_NEAR(dickson_converter()->spec().switches_per_mm2(), 1.22, 1e-9);
}

TEST(Hybrid, GanRetargetingImprovesSiliconDesigns) {
  const auto si = dsch_converter(DeviceTechnology::kSilicon);
  const auto gan = dsch_converter(DeviceTechnology::kGalliumNitride);
  EXPECT_GT(gan->loss_model().peak_efficiency(1.0_V),
            si->loss_model().peak_efficiency(1.0_V));
  // The improvement is bounded: not all loss is device switching loss.
  EXPECT_LT(gan->loss_model().peak_efficiency(1.0_V), 0.97);
  EXPECT_EQ(gan->device_technology(), DeviceTechnology::kGalliumNitride);
}

TEST(Hybrid, GanRetargetingIsNoOpForGanDesigns) {
  const auto a = dpmih_converter(DeviceTechnology::kGalliumNitride);
  EXPECT_NEAR(a->loss_model().k0(), dpmih_converter()->loss_model().k0(),
              1e-15);
}

TEST(Hybrid, PreserveEfficiencyRetargetKeepsEtaCurve) {
  // The paper's methodology: the converter's efficiency at a given load
  // current carries over to the new conversion scheme unchanged.
  const auto full = dpmih_converter();
  const auto first_stage = full->with_conversion(48.0_V, 12.0_V);
  EXPECT_NEAR(first_stage->spec().v_out.value, 12.0, 1e-12);
  for (double i : {10.0, 30.0, 60.0, 100.0}) {
    EXPECT_NEAR(first_stage->efficiency(Current{i}),
                full->efficiency(Current{i}), 1e-9)
        << i;
  }
  // Loss at the same current is 12x larger (12x the processed power).
  EXPECT_NEAR(first_stage->loss(30.0_A).value,
              12.0 * full->loss(30.0_A).value, 1e-9);
}

TEST(Hybrid, PhysicsRetargetScalesSwitchingLoss) {
  const auto full = dpmih_converter();
  const auto same_vin = full->with_conversion(
      48.0_V, 12.0_V,
      HybridSwitchedConverter::ConversionRetarget::kScaleSwitchingWithVin);
  // Same input voltage -> same fixed loss; efficiency at 12 V much better.
  EXPECT_NEAR(same_vin->loss_model().k0(), full->loss_model().k0(), 1e-12);
  EXPECT_GT(same_vin->efficiency(30.0_A), full->efficiency(30.0_A));

  const auto second_stage = dsch_converter()->with_conversion(
      12.0_V, 1.0_V,
      HybridSwitchedConverter::ConversionRetarget::kScaleSwitchingWithVin);
  // Quarter input voltage -> quarter switching loss (linear exponent).
  EXPECT_NEAR(second_stage->loss_model().k0(),
              dsch_converter()->loss_model().k0() * 12.0 / 48.0, 1e-12);
}

TEST(Hybrid, ConversionRetargetingValidation) {
  const auto c = dpmih_converter();
  EXPECT_THROW(c->with_conversion(1.0_V, 12.0_V), InvalidArgument);
  EXPECT_THROW(
      c->with_conversion(
          12.0_V, 1.0_V,
          HybridSwitchedConverter::ConversionRetarget::kScaleSwitchingWithVin,
          -1.0),
      InvalidArgument);
}

TEST(Catalog, EnumeratesAllTopologies) {
  const auto all = all_topologies();
  ASSERT_EQ(all.size(), 3u);
  for (TopologyKind kind : all) {
    const auto c = make_topology(kind);
    EXPECT_EQ(c->device_technology(), DeviceTechnology::kGalliumNitride);
    EXPECT_GT(c->spec().max_current.value, 0.0);
  }
  EXPECT_STREQ(to_string(TopologyKind::kDpmih), "DPMIH");
  EXPECT_STREQ(to_string(TopologyKind::kDsch), "DSCH");
  EXPECT_STREQ(to_string(TopologyKind::kDickson), "3LHD");
}

TEST(Catalog, PublishedTableTwoRowsMatchData) {
  const auto rows = published_table_two();
  ASSERT_EQ(rows.size(), 3u);
  for (const TableTwoRow& row : rows) {
    const HybridConverterData d = topology_data(row.kind);
    EXPECT_EQ(row.switches, d.switch_count) << row.label;
    EXPECT_EQ(row.inductors, d.inductor_count) << row.label;
    EXPECT_EQ(row.capacitors, d.capacitor_count) << row.label;
    EXPECT_NEAR(row.max_load.value, d.max_current.value, 1e-12) << row.label;
    EXPECT_NEAR(row.switches_per_mm2, d.switches_per_mm2, 1e-12)
        << row.label;
  }
  // Published placement counts (Table II, last two rows).
  EXPECT_EQ(rows[0].vrs_along_periphery, 8u);
  EXPECT_EQ(rows[0].vrs_below_die, 7u);
  EXPECT_EQ(rows[1].vrs_along_periphery, 48u);
  EXPECT_EQ(rows[2].vrs_below_die, 48u);
}

TEST(FixedEfficiency, FlatCurve) {
  const auto pcb = pcb_reference_converter();
  // 90% at any load in range (the paper's A0 model).
  EXPECT_NEAR(pcb->efficiency(100.0_A), 0.90, 1e-3);
  EXPECT_NEAR(pcb->efficiency(1000.0_A), 0.90, 1e-3);
  EXPECT_NEAR(pcb->rated_efficiency(), 0.90, 1e-12);
}

TEST(FixedEfficiency, TransformerStage) {
  const auto xfmr = transformer_first_stage();
  EXPECT_NEAR(xfmr->efficiency(50.0_A), 0.965, 1e-3);
  EXPECT_NEAR(xfmr->spec().v_out.value, 12.0, 1e-12);
}

TEST(Hybrid, EfficiencyCurveShapeAcrossLoadRange) {
  // Below the peak current, efficiency rises; above, it falls.
  const auto c = dpmih_converter();
  double prev = c->efficiency(5.0_A);
  for (double i = 10.0; i <= 30.0; i += 5.0) {
    const double eta = c->efficiency(Current{i});
    EXPECT_GT(eta, prev) << i;
    prev = eta;
  }
  for (double i = 40.0; i <= 100.0; i += 10.0) {
    const double eta = c->efficiency(Current{i});
    EXPECT_LT(eta, prev) << i;
    prev = eta;
  }
}

}  // namespace
}  // namespace vpd
