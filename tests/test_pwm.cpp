#include "vpd/circuit/pwm.hpp"

#include <gtest/gtest.h>

#include "vpd/common/error.hpp"

namespace vpd {
namespace {

using namespace vpd::literals;

TEST(PwmSignal, BasicDutyWindow) {
  const PwmSignal s(1.0_MHz, 0.25);
  EXPECT_TRUE(s.is_high(0.0));
  EXPECT_TRUE(s.is_high(0.2e-6));
  EXPECT_FALSE(s.is_high(0.3e-6));
  EXPECT_FALSE(s.is_high(0.9e-6));
  // Next period repeats.
  EXPECT_TRUE(s.is_high(1.1e-6));
}

TEST(PwmSignal, DutyFractionMeasured) {
  const PwmSignal s(Frequency{1.0}, 0.3);
  int high = 0;
  const int samples = 10000;
  for (int i = 0; i < samples; ++i)
    if (s.is_high(static_cast<double>(i) / samples)) ++high;
  EXPECT_NEAR(high / static_cast<double>(samples), 0.3, 0.001);
}

TEST(PwmSignal, PhaseShiftsWindow) {
  const PwmSignal s(Frequency{1.0}, 0.25, 0.5);
  EXPECT_FALSE(s.is_high(0.0));
  EXPECT_TRUE(s.is_high(0.6));
  EXPECT_FALSE(s.is_high(0.8));
}

TEST(PwmSignal, NegativeTimeWrapsCleanly) {
  const PwmSignal s(Frequency{1.0}, 0.5);
  EXPECT_TRUE(s.is_high(-0.9));   // equivalent to t=0.1
  EXPECT_FALSE(s.is_high(-0.4));  // equivalent to t=0.6
}

TEST(PwmSignal, Validation) {
  EXPECT_THROW(PwmSignal(Frequency{0.0}, 0.5), InvalidArgument);
  EXPECT_THROW(PwmSignal(Frequency{1.0}, 1.5), InvalidArgument);
  EXPECT_THROW(PwmSignal(Frequency{1.0}, 0.5, 1.0), InvalidArgument);
}

TEST(PwmSignal, ComplementNeverOverlaps) {
  const PwmSignal hs(1.0_MHz, 0.4);
  const PwmSignal ls = hs.complement(10.0_ns);
  for (int i = 0; i < 2000; ++i) {
    const double t = 2e-6 * i / 2000.0;
    EXPECT_FALSE(hs.is_high(t) && ls.is_high(t)) << "overlap at t=" << t;
  }
}

TEST(PwmSignal, ComplementCoversOffTimeMinusDeadTime) {
  const PwmSignal hs(Frequency{1.0}, 0.4);
  const PwmSignal ls = hs.complement(Seconds{0.05});
  int high = 0;
  const int samples = 100000;
  for (int i = 0; i < samples; ++i)
    if (ls.is_high(static_cast<double>(i) / samples)) ++high;
  // On-window = (1 - 0.4) - 2*0.05 = 0.5 of the period.
  EXPECT_NEAR(high / static_cast<double>(samples), 0.5, 0.002);
}

TEST(PwmSignal, ComplementWithZeroDeadTimeIsExactComplement) {
  const PwmSignal hs(Frequency{1.0}, 0.3);
  const PwmSignal ls = hs.complement();
  for (int i = 1; i < 1000; ++i) {
    const double t = static_cast<double>(i) / 1000.0 + 1e-9;
    EXPECT_NE(hs.is_high(t), ls.is_high(t)) << "t=" << t;
  }
}

TEST(PwmSignal, ExcessiveDeadTimeThrows) {
  const PwmSignal hs(Frequency{1.0}, 0.9);
  EXPECT_THROW(hs.complement(Seconds{0.2}), InvalidArgument);
}

TEST(GateDrive, ControllerDrivesAssignedSwitches) {
  Netlist nl;
  const NodeId a = nl.add_node("a");
  const NodeId b = nl.add_node("b");
  nl.add_switch("S_hi", a, b);
  nl.add_switch("S_lo", b, kGround);
  GateDrive drive(nl);
  EXPECT_FALSE(drive.fully_assigned());
  drive.assign_pair("S_hi", "S_lo", PwmSignal(Frequency{1.0}, 0.25),
                    Seconds{0.01});
  EXPECT_TRUE(drive.fully_assigned());

  auto ctrl = drive.controller();
  SwitchStates states(2, false);
  ctrl(0.1, states);
  EXPECT_TRUE(states[0]);
  EXPECT_FALSE(states[1]);
  ctrl(0.5, states);
  EXPECT_FALSE(states[0]);
  EXPECT_TRUE(states[1]);
}

TEST(GateDrive, RejectsDuplicateAndUnknownAssignments) {
  Netlist nl;
  const NodeId a = nl.add_node("a");
  nl.add_switch("S1", a, kGround);
  nl.add_resistor("R1", a, kGround, 1.0_Ohm);
  GateDrive drive(nl);
  drive.assign("S1", PwmSignal(Frequency{1.0}, 0.5));
  EXPECT_THROW(drive.assign("S1", PwmSignal(Frequency{1.0}, 0.5)),
               InvalidArgument);
  EXPECT_THROW(drive.assign("R1", PwmSignal(Frequency{1.0}, 0.5)),
               InvalidArgument);
  EXPECT_THROW(drive.assign("missing", PwmSignal(Frequency{1.0}, 0.5)),
               InvalidArgument);
}

TEST(GateDrive, UnassignedSwitchesKeepState) {
  Netlist nl;
  const NodeId a = nl.add_node("a");
  nl.add_switch("S1", a, kGround);
  nl.add_switch("S2", a, kGround, Resistance{1e-3}, Resistance{1e9}, true);
  GateDrive drive(nl);
  drive.assign("S1", PwmSignal(Frequency{1.0}, 0.5));
  auto ctrl = drive.controller();
  SwitchStates states{false, true};
  ctrl(0.75, states);
  EXPECT_FALSE(states[0]);  // PWM low at 0.75
  EXPECT_TRUE(states[1]);   // untouched
}

}  // namespace
}  // namespace vpd
