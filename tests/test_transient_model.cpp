#include "vpd/arch/transient_model.hpp"

#include <gtest/gtest.h>

#include "vpd/arch/evaluator.hpp"
#include "vpd/common/error.hpp"

namespace vpd {
namespace {

using namespace vpd::literals;

EvaluationOptions paper_mode() {
  EvaluationOptions o;
  o.below_die_area_fraction = 1.6;
  o.mesh_nodes = 31;
  return o;
}

ArchitectureEvaluation eval(ArchitectureKind arch) {
  return evaluate_architecture(arch, paper_system(), TopologyKind::kDsch,
                               DeviceTechnology::kGalliumNitride,
                               paper_mode());
}

TEST(ReducedPdn, EffectiveResistanceReproducesPpdnLoss) {
  const auto a1 = eval(ArchitectureKind::kA1_InterposerPeriphery);
  const ReducedPdnModel model = build_reduced_pdn(paper_system(), a1);
  const double i = paper_system().die_current().value;
  EXPECT_NEAR(model.effective_resistance.value * i * i,
              a1.ppdn_loss().value, 1e-6 * a1.ppdn_loss().value);
  EXPECT_GT(model.decap.value, 1e-6);
}

TEST(ReducedPdn, LoopInductanceOrderingMatchesArchitectures) {
  const auto a0 = build_reduced_pdn(
      paper_system(), eval(ArchitectureKind::kA0_PcbConversion));
  const auto a1 = build_reduced_pdn(
      paper_system(), eval(ArchitectureKind::kA1_InterposerPeriphery));
  const auto a2 = build_reduced_pdn(
      paper_system(), eval(ArchitectureKind::kA2_InterposerBelowDie));
  EXPECT_GT(a0.loop_inductance.value, a1.loop_inductance.value);
  EXPECT_GT(a1.loop_inductance.value, a2.loop_inductance.value);
  EXPECT_GT(a0.effective_resistance.value, a1.effective_resistance.value);
}

TEST(ReducedPdn, DcOperatingPointHoldsRail) {
  // No load step yet: the rail sits at die voltage minus the base drop.
  const auto a2 = eval(ArchitectureKind::kA2_InterposerBelowDie);
  const ReducedPdnModel model = build_reduced_pdn(paper_system(), a2);
  const DroopResult r = simulate_load_step(
      model, paper_system(), Current{200.0}, Current{1.0},
      Seconds{100e-9});
  // With a 1 A step the droop is microvolts-scale.
  EXPECT_LT(r.droop.value, 5e-3);
}

TEST(ReducedPdn, DroopOrderingAcrossArchitectures) {
  // Same 200 -> 500 A step: A0's board loop droops far more than the
  // interposer architectures.
  auto droop = [&](ArchitectureKind arch) {
    const ReducedPdnModel model =
        build_reduced_pdn(paper_system(), eval(arch));
    return simulate_load_step(model, paper_system(), Current{200.0},
                              Current{300.0}, Seconds{100e-9})
        .droop.value;
  };
  const double d_a0 = droop(ArchitectureKind::kA0_PcbConversion);
  const double d_a1 = droop(ArchitectureKind::kA1_InterposerPeriphery);
  const double d_a2 = droop(ArchitectureKind::kA2_InterposerBelowDie);
  EXPECT_GT(d_a0, 3.0 * d_a2);
  EXPECT_GE(d_a1, d_a2 - 1e-4);
  // All sensible magnitudes: millivolts to a few hundred millivolts.
  EXPECT_LT(d_a0, 0.8);
  EXPECT_GT(d_a2, 1e-4);
}

TEST(ReducedPdn, RecoveryWithinWindow) {
  const auto a2 = eval(ArchitectureKind::kA2_InterposerBelowDie);
  const ReducedPdnModel model = build_reduced_pdn(paper_system(), a2);
  const DroopResult r = simulate_load_step(
      model, paper_system(), Current{200.0}, Current{300.0},
      Seconds{100e-9});
  EXPECT_GT(r.recovery_time.value, 0.0);
  EXPECT_LT(r.recovery_time.value, 18e-6);
}

TEST(ReducedPdn, Validation) {
  const auto a2 = eval(ArchitectureKind::kA2_InterposerBelowDie);
  const ReducedPdnModel model = build_reduced_pdn(paper_system(), a2);
  EXPECT_THROW(simulate_load_step(model, paper_system(), Current{-1.0},
                                  Current{1.0}, Seconds{1e-9}),
               InvalidArgument);
  EXPECT_THROW(simulate_load_step(model, paper_system(), Current{1.0},
                                  Current{0.0}, Seconds{1e-9}),
               InvalidArgument);
}

}  // namespace
}  // namespace vpd
