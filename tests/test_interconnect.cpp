#include "vpd/package/interconnect.hpp"

#include <gtest/gtest.h>

#include "vpd/common/error.hpp"

namespace vpd {
namespace {

using namespace vpd::literals;

TEST(TableOne, HasAllFiveLevels) {
  const auto specs = table_one();
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(specs[0].type, "BGA");
  EXPECT_EQ(specs[1].type, "C4");
  EXPECT_EQ(specs[2].type, "TSV");
  EXPECT_EQ(specs[3].type, "u-bump");
  EXPECT_EQ(specs[4].type, "Cu pad");
}

TEST(TableOne, GeometryMatchesPublishedValues) {
  const auto bga = interconnect_spec(InterconnectLevel::kPcbToPackage);
  EXPECT_NEAR(as_um(bga.diameter), 400.0, 1e-9);
  EXPECT_NEAR(as_um2(bga.cross_section), 125664.0, 1e-6);
  EXPECT_NEAR(as_um(bga.height), 300.0, 1e-9);
  EXPECT_NEAR(as_um(bga.pitch), 800.0, 1e-9);
  EXPECT_NEAR(as_mm2(bga.platform_area), 1800.0, 1e-6);

  const auto tsv = interconnect_spec(InterconnectLevel::kThroughInterposer);
  EXPECT_EQ(tsv.material, "Cu");
  EXPECT_NEAR(as_um2(tsv.cross_section), 20.0, 1e-9);
  EXPECT_NEAR(as_um(tsv.pitch), 10.0, 1e-9);

  const auto pad = interconnect_spec(InterconnectLevel::kInterposerToDiePad);
  EXPECT_NEAR(as_um2(pad.cross_section), 100.0, 1e-9);
  EXPECT_NEAR(as_um(pad.height), 10.0, 1e-9);
}

TEST(TableOne, PerViaResistances) {
  // R = rho * h / A. BGA: 1.3e-7 * 300u / 125664u^2 ~ 0.31 mOhm.
  const auto bga = interconnect_spec(InterconnectLevel::kPcbToPackage);
  EXPECT_NEAR(as_mOhm(bga.per_via()), 0.310, 0.01);
  // TSV: 1.7e-8 * 50u / 20u^2 = 42.5 mOhm.
  const auto tsv = interconnect_spec(InterconnectLevel::kThroughInterposer);
  EXPECT_NEAR(as_mOhm(tsv.per_via()), 42.5, 0.1);
  // C4: ~1.16 mOhm; u-bump ~4.6 mOhm; Cu pad 1.7 mOhm.
  EXPECT_NEAR(
      as_mOhm(interconnect_spec(InterconnectLevel::kPackageToInterposer)
                  .per_via()),
      1.16, 0.02);
  EXPECT_NEAR(
      as_mOhm(interconnect_spec(InterconnectLevel::kInterposerToDieBump)
                  .per_via()),
      4.60, 0.05);
  EXPECT_NEAR(
      as_mOhm(interconnect_spec(InterconnectLevel::kInterposerToDiePad)
                  .per_via()),
      1.70, 0.01);
}

TEST(TableOne, AvailableCounts) {
  // BGA: 1800 mm^2 at 800 um pitch -> 2812 sites.
  const auto bga = interconnect_spec(InterconnectLevel::kPcbToPackage);
  EXPECT_EQ(bga.available_count(), 2812u);
  // TSV: 1200 mm^2 at 10 um pitch -> 12M sites.
  const auto tsv = interconnect_spec(InterconnectLevel::kThroughInterposer);
  EXPECT_EQ(tsv.available_count(), 12000000u);
  // u-bumps over the 500 mm^2 die: 500 / (60u)^2 ~ 138,888.
  const auto ub = interconnect_spec(InterconnectLevel::kInterposerToDieBump);
  EXPECT_EQ(ub.available_count(), 138888u);
  // Sub-area counting.
  EXPECT_EQ(tsv.available_count(1.0_mm2), 10000u);
}

TEST(TableOne, ViasForCurrentCeils) {
  const auto bga = interconnect_spec(InterconnectLevel::kPcbToPackage);
  EXPECT_EQ(bga.vias_for_current(20.8_A), 21u);
  EXPECT_EQ(bga.vias_for_current(1.0_A), 1u);
  EXPECT_EQ(bga.vias_for_current(Current{0.0}), 0u);
}

TEST(TableOne, NetPairResistanceIsRoundTrip) {
  const auto bga = interconnect_spec(InterconnectLevel::kPcbToPackage);
  const Resistance r = bga.net_pair_resistance(100);
  EXPECT_NEAR(r.value, 2.0 * bga.per_via().value / 100.0, 1e-15);
  EXPECT_THROW(bga.net_pair_resistance(0), InvalidArgument);
}

TEST(TableOne, PowerAllocationCaps) {
  EXPECT_NEAR(
      interconnect_spec(InterconnectLevel::kPcbToPackage).max_power_fraction,
      0.60, 1e-12);
  EXPECT_NEAR(interconnect_spec(InterconnectLevel::kPackageToInterposer)
                  .max_power_fraction,
              0.85, 1e-12);
}

TEST(TableOne, SolderVsCopperMaterials) {
  for (const auto& s : table_one()) {
    if (s.material == "Cu") {
      EXPECT_NEAR(s.resistivity.value, kCopperResistivity.value, 1e-12)
          << s.type;
    } else {
      EXPECT_NEAR(s.resistivity.value, kSolderResistivity.value, 1e-12)
          << s.type;
    }
  }
}

TEST(TableOne, LevelNames) {
  EXPECT_STREQ(to_string(InterconnectLevel::kPcbToPackage), "PCB/PKG");
  EXPECT_STREQ(to_string(InterconnectLevel::kThroughInterposer),
               "Through-Interposer");
}

}  // namespace
}  // namespace vpd
