#include <gtest/gtest.h>

#include <cmath>

#include "vpd/common/error.hpp"
#include "vpd/devices/power_fet.hpp"
#include "vpd/devices/switching_loss.hpp"
#include "vpd/devices/technology.hpp"

namespace vpd {
namespace {

using namespace vpd::literals;

TEST(Technology, GanBeatsSiliconFigureOfMerit) {
  const TechnologyParams si = silicon_technology();
  const TechnologyParams gan = gan_technology();
  // The paper motivates GaN by its high electron mobility: expect roughly
  // an order of magnitude FOM advantage at 100 V class.
  EXPECT_GT(si.figure_of_merit() / gan.figure_of_merit(), 5.0);
  EXPECT_LT(si.figure_of_merit() / gan.figure_of_merit(), 30.0);
}

TEST(Technology, SpecificRonGrowsWithRating) {
  const TechnologyParams gan = gan_technology();
  const double at48 = gan.specific_on_resistance_at(48.0_V);
  const double at100 = gan.specific_on_resistance_at(100.0_V);
  EXPECT_LT(at48, at100);
  // Scaling exponent: R(100)/R(48) = (100/48)^1.9.
  EXPECT_NEAR(at100 / at48, std::pow(100.0 / 48.0, 1.9), 1e-9);
  EXPECT_THROW(gan.specific_on_resistance_at(Voltage{0.0}), InvalidArgument);
}

TEST(Technology, SiliconScalesFasterWithRating) {
  const double si_ratio = silicon_technology().specific_on_resistance_at(
                              Voltage{200.0}) /
                          silicon_technology().specific_on_resistance;
  const double gan_ratio = gan_technology().specific_on_resistance_at(
                               Voltage{200.0}) /
                           gan_technology().specific_on_resistance;
  EXPECT_GT(si_ratio, gan_ratio);
}

TEST(Technology, LookupByEnum) {
  EXPECT_EQ(technology(DeviceTechnology::kSilicon).technology,
            DeviceTechnology::kSilicon);
  EXPECT_EQ(technology(DeviceTechnology::kGalliumNitride).technology,
            DeviceTechnology::kGalliumNitride);
  EXPECT_STREQ(to_string(DeviceTechnology::kSilicon), "Si");
  EXPECT_STREQ(to_string(DeviceTechnology::kGalliumNitride), "GaN");
}

TEST(PowerFet, OnResistanceScalesInverselyWithArea) {
  const TechnologyParams gan = gan_technology();
  const PowerFet small(gan, 100.0_V, 1.0_mm2);
  const PowerFet large(gan, 100.0_V, 4.0_mm2);
  EXPECT_NEAR(small.on_resistance().value / large.on_resistance().value, 4.0,
              1e-9);
  // 12 mOhm*mm^2 at 1 mm^2 -> 12 mOhm.
  EXPECT_NEAR(as_mOhm(small.on_resistance()), 12.0, 1e-9);
}

TEST(PowerFet, ParasiticsScaleWithArea) {
  const PowerFet fet(gan_technology(), 100.0_V, 2.0_mm2);
  // 2 mm^2 at 3 nC/mm^2 -> 6 nC.
  EXPECT_NEAR(fet.gate_charge().value, 6e-9, 1e-15);
  EXPECT_GT(fet.output_capacitance().value, 0.0);
}

TEST(PowerFet, SizingForTargetOnResistance) {
  const PowerFet fet = PowerFet::for_on_resistance(gan_technology(), 48.0_V,
                                                   1.0_mOhm);
  EXPECT_NEAR(as_mOhm(fet.on_resistance()), 1.0, 1e-9);
  EXPECT_GT(as_mm2(fet.area()), 0.0);
  EXPECT_THROW(PowerFet::for_on_resistance(gan_technology(), 48.0_V,
                                           Resistance{0.0}),
               InvalidArgument);
}

TEST(PowerFet, SizingForConductionBudget) {
  const PowerFet fet = PowerFet::for_conduction_budget(
      gan_technology(), 48.0_V, 10.0_A, 0.5_W);
  EXPECT_NEAR(fet.conduction_loss(10.0_A).value, 0.5, 1e-9);
}

TEST(PowerFet, LossComponents) {
  const PowerFet fet(gan_technology(), 100.0_V, 1.0_mm2);
  // Conduction: I^2 R.
  EXPECT_NEAR(fet.conduction_loss(10.0_A).value, 100.0 * 0.012, 1e-9);
  // Gate: Qg * Vdrive * f = 3nC * 5V * 1MHz = 15 mW.
  EXPECT_NEAR(fet.gate_loss(1.0_MHz).value, 15e-3, 1e-9);
  // Coss: 0.5 * 0.9nF * 48^2 * 1MHz ~ 1.04 W.
  EXPECT_NEAR(fet.coss_loss(48.0_V, 1.0_MHz).value,
              0.5 * 0.9e-9 * 48.0 * 48.0 * 1e6, 1e-9);
  // Overlap at 48 V, 10 A, 1 MHz: 48*10*(0.05ns*48)*1e6 ~ 1.15 W.
  EXPECT_NEAR(fet.overlap_loss(48.0_V, 10.0_A, 1.0_MHz).value,
              48.0 * 10.0 * 0.05e-9 * 48.0 * 1e6, 1e-9);
}

TEST(PowerFet, Validation) {
  EXPECT_THROW(PowerFet(gan_technology(), Voltage{0.0}, 1.0_mm2),
               InvalidArgument);
  EXPECT_THROW(PowerFet(gan_technology(), 48.0_V, Area{0.0}),
               InvalidArgument);
  const PowerFet fet(gan_technology(), 48.0_V, 1.0_mm2);
  EXPECT_THROW(fet.gate_loss(Frequency{-1.0}), InvalidArgument);
}

SwitchingCell make_cell(SwitchingMode mode) {
  SwitchingCell cell{PowerFet(gan_technology(), 48.0_V, 2.0_mm2),
                     48.0_V,
                     10.0_A,
                     10.0_A,
                     0.5,
                     mode};
  return cell;
}

TEST(SwitchingLoss, BreakdownSumsToTotal) {
  const SwitchingLossBreakdown b = cell_loss(make_cell(SwitchingMode::kHard),
                                             1.0_MHz);
  EXPECT_NEAR(b.total().value,
              b.conduction.value + b.overlap.value + b.coss.value +
                  b.gate.value,
              1e-12);
  EXPECT_GT(b.conduction.value, 0.0);
  EXPECT_GT(b.overlap.value, 0.0);
}

TEST(SwitchingLoss, SoftSwitchingRemovesOverlapAndCoss) {
  const SwitchingLossBreakdown hard =
      cell_loss(make_cell(SwitchingMode::kHard), 1.0_MHz);
  const SwitchingLossBreakdown partial =
      cell_loss(make_cell(SwitchingMode::kPartialSoft), 1.0_MHz);
  const SwitchingLossBreakdown soft =
      cell_loss(make_cell(SwitchingMode::kFullSoft), 1.0_MHz);
  EXPECT_NEAR(partial.overlap.value, 0.5 * hard.overlap.value, 1e-12);
  EXPECT_DOUBLE_EQ(soft.overlap.value, 0.0);
  EXPECT_DOUBLE_EQ(soft.coss.value, 0.0);
  // Conduction and gate losses unaffected by switching mode.
  EXPECT_DOUBLE_EQ(soft.conduction.value, hard.conduction.value);
  EXPECT_DOUBLE_EQ(soft.gate.value, hard.gate.value);
}

TEST(SwitchingLoss, FrequencyLinearTerms) {
  const SwitchingCell cell = make_cell(SwitchingMode::kHard);
  const SwitchingLossBreakdown at1 = cell_loss(cell, 1.0_MHz);
  const SwitchingLossBreakdown at2 = cell_loss(cell, 2.0_MHz);
  EXPECT_NEAR(at2.gate.value, 2.0 * at1.gate.value, 1e-12);
  EXPECT_NEAR(at2.overlap.value, 2.0 * at1.overlap.value, 1e-12);
  EXPECT_NEAR(at2.coss.value, 2.0 * at1.coss.value, 1e-12);
  EXPECT_DOUBLE_EQ(at2.conduction.value, at1.conduction.value);
}

TEST(SwitchingLoss, OptimalFrequencyBalancesRippleAgainstSwitching) {
  const SwitchingCell cell = make_cell(SwitchingMode::kHard);
  // Ripple loss ~ k/f^2 with k chosen so the optimum is interior.
  const double k = 1e12;  // 1 W at 1 MHz
  const Frequency f_opt =
      optimal_frequency(cell, 100.0_kHz, 20.0_MHz, k);
  EXPECT_GT(f_opt.value, 1e5);
  EXPECT_LT(f_opt.value, 2e7);
  // Total loss at the optimum is no worse than at the bracket edges.
  const auto total = [&](double f) {
    return cell_loss(cell, Frequency{f}).total().value + k / (f * f);
  };
  EXPECT_LE(total(f_opt.value), total(1e5) + 1e-9);
  EXPECT_LE(total(f_opt.value), total(2e7) + 1e-9);
}

TEST(SwitchingLoss, Validation) {
  SwitchingCell cell = make_cell(SwitchingMode::kHard);
  cell.conduction_duty = 1.5;
  EXPECT_THROW(cell_loss(cell, 1.0_MHz), InvalidArgument);
  EXPECT_THROW(optimal_frequency(make_cell(SwitchingMode::kHard), 1.0_MHz,
                                 1.0_MHz, 0.0),
               InvalidArgument);
}

}  // namespace
}  // namespace vpd
