#include "vpd/package/utilization.hpp"

#include <gtest/gtest.h>

#include "vpd/common/error.hpp"

namespace vpd {
namespace {

using namespace vpd::literals;

// The paper's Section IV utilization claims, reproduced from the Table I
// geometry and the calibrated per-via current limits.

TEST(Utilization, VerticalDeliveryUsesOnePercentOfBgas) {
  // 48 V feed: 1 kW / 48 V ~ 21 A through the BGAs.
  const auto row = utilization_for(
      interconnect_spec(InterconnectLevel::kPcbToPackage), 20.8_A);
  EXPECT_NEAR(row.fraction, 0.01, 0.005);
  EXPECT_TRUE(row.feasible);
}

TEST(Utilization, VerticalDeliveryUsesTwoPercentOfC4s) {
  const auto row = utilization_for(
      interconnect_spec(InterconnectLevel::kPackageToInterposer), 20.8_A);
  EXPECT_NEAR(row.fraction, 0.02, 0.008);
  EXPECT_TRUE(row.feasible);
}

TEST(Utilization, VerticalDeliveryUsesTenPercentOfTsvs) {
  // After on-interposer conversion the full 1 kA crosses the TSVs at 1 V.
  const auto row = utilization_for(
      interconnect_spec(InterconnectLevel::kThroughInterposer),
      Current{1000.0});
  EXPECT_NEAR(row.fraction, 0.10, 0.02);
  EXPECT_TRUE(row.feasible);
}

TEST(Utilization, VerticalDeliveryUsesUnderTwentyPercentOfCuPads) {
  const auto row = utilization_for(
      interconnect_spec(InterconnectLevel::kInterposerToDiePad),
      Current{1000.0});
  EXPECT_LT(row.fraction, 0.20);
  EXPECT_TRUE(row.feasible);
}

TEST(Utilization, MicroBumpsAlsoFeasibleAtFullCurrent) {
  const auto row = utilization_for(
      interconnect_spec(InterconnectLevel::kInterposerToDieBump),
      Current{1000.0});
  EXPECT_LT(row.fraction, 0.20);
  EXPECT_TRUE(row.feasible);
}

TEST(Utilization, ReferenceArchitectureNeedsTwelveHundredMm2) {
  // A0 pushes 1 kA through the C4 field under the die; with the 85% cap
  // the minimum die area is ~1200 mm^2 (paper: "an unreasonably large die
  // of 1,200 mm^2"), limiting power density to ~0.8 A/mm^2.
  const auto c4 = interconnect_spec(InterconnectLevel::kPackageToInterposer);
  const Area min_die = min_area_for_current(c4, Current{1000.0});
  EXPECT_NEAR(as_mm2(min_die), 1200.0, 100.0);
  const double density = 1000.0 / as_mm2(min_die);
  EXPECT_NEAR(density, 0.8, 0.1);
}

TEST(Utilization, ReferenceArchitectureInfeasibleOn500Mm2Die) {
  // Over the 500 mm^2 die shadow, 1 kA exceeds the 85% C4 cap.
  const auto c4 = interconnect_spec(InterconnectLevel::kPackageToInterposer);
  const auto row = utilization_for(c4, Current{1000.0}, 500.0_mm2);
  EXPECT_FALSE(row.feasible);
  EXPECT_GT(row.fraction, 0.85);
}

TEST(Utilization, ReportCoversRequestedLevels) {
  const auto rows = utilization_report(
      {{InterconnectLevel::kPcbToPackage, 20.8_A, std::nullopt},
       {InterconnectLevel::kThroughInterposer, Current{1000.0},
        std::nullopt}});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].type, "BGA");
  EXPECT_EQ(rows[1].type, "TSV");
}

TEST(Utilization, Validation) {
  const auto bga = interconnect_spec(InterconnectLevel::kPcbToPackage);
  EXPECT_THROW(utilization_for(bga, Current{0.0}), InvalidArgument);
  EXPECT_THROW(min_area_for_current(bga, Current{-1.0}), InvalidArgument);
}

}  // namespace
}  // namespace vpd
