#include "vpd/common/units.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace vpd {
namespace {

using namespace vpd::literals;

TEST(Units, OhmsLawProducesVoltage) {
  const Current i{2.0};
  const Resistance r{3.0};
  const Voltage v = i * r;
  EXPECT_DOUBLE_EQ(v.value, 6.0);
}

TEST(Units, PowerFromVoltageTimesCurrent) {
  const Power p = Voltage{1.0} * Current{1000.0};
  EXPECT_DOUBLE_EQ(p.value, 1000.0);
}

TEST(Units, PowerFromCurrentSquaredTimesResistance) {
  const Current i{10.0};
  const Power p = i * i * Resistance{0.5};
  EXPECT_DOUBLE_EQ(p.value, 50.0);
}

TEST(Units, DimensionlessRatioDecaysToDouble) {
  const double ratio = Voltage{48.0} / Voltage{12.0};
  EXPECT_DOUBLE_EQ(ratio, 4.0);
}

TEST(Units, ResistanceFromResistivityGeometry) {
  // R = rho * l / A, copper ~1.68e-8 Ohm*m, 1 m of 1 mm^2 wire.
  const Resistivity rho{1.68e-8};
  const Resistance r = rho * Length{1.0} / Area{1e-6};
  EXPECT_NEAR(r.value, 1.68e-2, 1e-12);
}

TEST(Units, AdditionAndSubtraction) {
  Voltage v{5.0};
  v += 2.0_V;
  v -= 1.0_V;
  EXPECT_DOUBLE_EQ(v.value, 6.0);
  EXPECT_DOUBLE_EQ((Voltage{5.0} + Voltage{1.0}).value, 6.0);
  EXPECT_DOUBLE_EQ((Voltage{5.0} - Voltage{1.0}).value, 4.0);
}

TEST(Units, ScalarScaling) {
  EXPECT_DOUBLE_EQ((2.0 * Current{3.0}).value, 6.0);
  EXPECT_DOUBLE_EQ((Current{3.0} * 2.0).value, 6.0);
  EXPECT_DOUBLE_EQ((Current{3.0} / 2.0).value, 1.5);
  Current i{3.0};
  i *= 2.0;
  EXPECT_DOUBLE_EQ(i.value, 6.0);
  i /= 3.0;
  EXPECT_DOUBLE_EQ(i.value, 2.0);
}

TEST(Units, ScalarOverQuantityInverts) {
  const Conductance g = 1.0 / Resistance{4.0};
  EXPECT_DOUBLE_EQ(g.value, 0.25);
}

TEST(Units, ComparisonOperators) {
  EXPECT_LT(Voltage{1.0}, Voltage{2.0});
  EXPECT_EQ(Voltage{2.0}, Voltage{2.0});
  EXPECT_GT(Voltage{3.0}, Voltage{2.0});
}

TEST(Units, Negation) { EXPECT_DOUBLE_EQ((-Voltage{2.0}).value, -2.0); }

TEST(Units, LiteralsProduceScaledValues) {
  EXPECT_DOUBLE_EQ((48.0_V).value, 48.0);
  EXPECT_DOUBLE_EQ((48_V).value, 48.0);
  EXPECT_DOUBLE_EQ((3.0_mV).value, 3e-3);
  EXPECT_DOUBLE_EQ((1.0_kW).value, 1000.0);
  EXPECT_DOUBLE_EQ((2.5_mOhm).value, 2.5e-3);
  EXPECT_DOUBLE_EQ((400.0_um).value, 400e-6);
  EXPECT_DOUBLE_EQ((500_mm2).value, 500e-6);
  EXPECT_DOUBLE_EQ((1.0_MHz).value, 1e6);
  EXPECT_DOUBLE_EQ((4.0_uH).value, 4e-6);
  EXPECT_DOUBLE_EQ((15.0_uF).value, 15e-6);
  EXPECT_DOUBLE_EQ((10.0_ns).value, 1e-8);
}

TEST(Units, EngineeringAccessors) {
  EXPECT_DOUBLE_EQ(as_mm2(Area{500e-6}), 500.0);
  EXPECT_DOUBLE_EQ(as_um2(Area{707e-12}), 707.0);
  EXPECT_DOUBLE_EQ(as_mm(Length{0.025}), 25.0);
  EXPECT_DOUBLE_EQ(as_um(Length{5e-6}), 5.0);
  EXPECT_DOUBLE_EQ(as_mOhm(Resistance{0.005}), 5.0);
  EXPECT_DOUBLE_EQ(as_MHz(Frequency{2e6}), 2.0);
  EXPECT_DOUBLE_EQ(as_uH(Inductance{4e-6}), 4.0);
  EXPECT_DOUBLE_EQ(as_uF(Capacitance{15e-6}), 15.0);
  EXPECT_DOUBLE_EQ(as_A_per_mm2(CurrentDensity{2e6}), 2.0);
}

TEST(Units, StreamInsertionPrintsValue) {
  std::ostringstream os;
  os << Voltage{1.5};
  EXPECT_EQ(os.str(), "1.5");
}

TEST(Units, ChargeTimesFrequencyIsCurrent) {
  // Gate-charge loss bookkeeping: Q * f = I.
  const Current i = Charge{10e-9} * Frequency{1e6};
  EXPECT_NEAR(i.value, 1e-2, 1e-15);
}

TEST(Units, EnergyIsPowerTimesTime) {
  const Energy e = Power{5.0} * Seconds{2.0};
  EXPECT_DOUBLE_EQ(e.value, 10.0);
}

TEST(Units, CurrentDensityTimesAreaIsCurrent) {
  const Current i = CurrentDensity{2e6} * Area{500e-6};
  EXPECT_DOUBLE_EQ(i.value, 1000.0);
}

}  // namespace
}  // namespace vpd
