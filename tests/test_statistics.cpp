#include "vpd/common/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "vpd/common/error.hpp"
#include "vpd/common/rng.hpp"

namespace vpd {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  // Sample (Bessel-corrected) variance: sum of squared deviations is 32
  // over n - 1 = 7 observations.
  EXPECT_DOUBLE_EQ(rs.variance(), 32.0 / 7.0);
  EXPECT_DOUBLE_EQ(rs.stddev(), std::sqrt(32.0 / 7.0));
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats rs;
  rs.add(3.5);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.5);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 3.5);
  EXPECT_DOUBLE_EQ(rs.max(), 3.5);
}

TEST(RunningStats, EmptyThrows) {
  RunningStats rs;
  EXPECT_THROW(rs.mean(), InvalidArgument);
  EXPECT_THROW(rs.min(), InvalidArgument);
  EXPECT_THROW(rs.max(), InvalidArgument);
}

TEST(RunningStats, NegativeValues) {
  RunningStats rs;
  for (double x : {-1.0, -3.0, -5.0}) rs.add(x);
  EXPECT_DOUBLE_EQ(rs.mean(), -3.0);
  EXPECT_DOUBLE_EQ(rs.min(), -5.0);
  EXPECT_DOUBLE_EQ(rs.max(), -1.0);
}

TEST(Percentile, MedianOfOddSet) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Percentile, InterpolatesBetweenSamples) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.25), 2.5);
}

TEST(Percentile, Extremes) {
  const std::vector<double> v{5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 0.5), InvalidArgument);
  EXPECT_THROW(percentile({1.0}, 1.5), InvalidArgument);
  EXPECT_THROW(percentile({1.0}, -0.1), InvalidArgument);
}

TEST(Summarize, AllFieldsConsistent) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);  // sample variance 10 / 4
  EXPECT_LE(s.p05, s.median);
  EXPECT_LE(s.median, s.p95);
}

TEST(Summarize, EmptyThrows) {
  EXPECT_THROW(summarize({}), InvalidArgument);
}

TEST(Summarize, GaussianSampleMatchesParameters) {
  Rng rng(99);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.normal(10.0, 2.0);
  const Summary s = summarize(std::move(xs));
  EXPECT_NEAR(s.mean, 10.0, 0.1);
  EXPECT_NEAR(s.stddev, 2.0, 0.1);
  EXPECT_NEAR(s.median, 10.0, 0.1);
  // p95 of N(10, 2) is ~13.29
  EXPECT_NEAR(s.p95, 13.29, 0.2);
}

}  // namespace
}  // namespace vpd
