#include "vpd/common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "vpd/common/error.hpp"

namespace vpd {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u32() == b.next_u32()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, DifferentStreamsDiverge) {
  Rng a(1, 10), b(1, 11);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u32() == b.next_u32()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, DoublesInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsRange) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
  EXPECT_THROW(rng.uniform(2.0, 1.0), InvalidArgument);
}

TEST(Rng, UniformMeanApproximatesMidpoint) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(0.0, 10.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, NextBelowBoundsAndCoverage) {
  Rng rng(10);
  std::vector<int> hits(7, 0);
  for (int i = 0; i < 7000; ++i) {
    const auto v = rng.next_below(7);
    ASSERT_LT(v, 7u);
    ++hits[v];
  }
  for (int h : hits) EXPECT_GT(h, 800);  // roughly uniform
  EXPECT_THROW(rng.next_below(0), InvalidArgument);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(11);
  double sum = 0.0, sumsq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(Rng, ScaledNormal) {
  Rng rng(12);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(100.0, 5.0);
  EXPECT_NEAR(sum / n, 100.0, 0.2);
  EXPECT_THROW(rng.normal(0.0, -1.0), InvalidArgument);
}

}  // namespace
}  // namespace vpd
