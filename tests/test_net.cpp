// Scale-out serving layer (ctest -L net): wire-protocol classification
// and the key-affinity hash, the ResponseQueue ordering/completion
// contract, LineSession verbs (shutdown drain, malformed-id recovery),
// the NDJSON socket server under concurrent clients and saturation, and
// the shard router's supervision (key affinity, crash errors, restarts,
// graceful drain).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "vpd/io/json.hpp"
#include "vpd/io/schema.hpp"
#include "vpd/net/protocol.hpp"
#include "vpd/net/router.hpp"
#include "vpd/net/server.hpp"
#include "vpd/net/session.hpp"
#include "vpd/net/socket.hpp"
#include "vpd/obs/registry.hpp"
#include "vpd/serve/service.hpp"

namespace vpd {
namespace {

io::EvaluationRequest make_request(double total_power_watts = 1000.0,
                                   std::size_t mesh_nodes = 31) {
  io::EvaluationRequest request;
  request.architecture = ArchitectureKind::kA1_InterposerPeriphery;
  request.topology = TopologyKind::kDsch;
  request.spec.total_power = Power{total_power_watts};
  request.options.mesh_nodes = mesh_nodes;
  return request;
}

std::string request_line(const io::EvaluationRequest& request,
                         int id) {
  io::Value doc = io::to_json(request);
  doc.set("id", double(id));
  return io::dump(doc);
}

/// A throwaway unix-socket path short enough for sockaddr_un.
std::string scratch_socket_path(const char* tag) {
  return "/tmp/vpd_net_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

/// Thread-safe line collector used as a session/server sink.
struct Collector {
  std::mutex mutex;
  std::vector<std::string> lines;
  net::Sink sink() {
    return [this](const std::string& line) {
      std::lock_guard<std::mutex> lock(mutex);
      lines.push_back(line);
    };
  }
  std::size_t size() {
    std::lock_guard<std::mutex> lock(mutex);
    return lines.size();
  }
  std::string at(std::size_t i) {
    std::lock_guard<std::mutex> lock(mutex);
    return lines.at(i);
  }
};

// --- Protocol vocabulary ---------------------------------------------------

TEST(NetProtocol, Fnv1a64MatchesReferenceVectors) {
  // Canonical FNV-1a 64 test vectors; the hash must never change, or a
  // restarted router would re-route keys to different shards.
  EXPECT_EQ(net::fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(net::fnv1a64("a"), 12638187200555641996ull);
  EXPECT_EQ(net::fnv1a64("foobar"), 9625390261332436968ull);
}

TEST(NetProtocol, ShardForKeyIsStableAndCoversAllShards) {
  const std::string key = io::canonical_request_key(make_request());
  const std::size_t shard = net::shard_for_key(key, 5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(net::shard_for_key(key, 5), shard);
  }
  std::vector<std::size_t> hits(4, 0);
  for (int i = 0; i < 1000; ++i) {
    ++hits[net::shard_for_key("key-" + std::to_string(i), hits.size())];
  }
  for (std::size_t shard_hits : hits) {
    // A fair-ish spread: FNV over distinct keys should not starve any
    // shard (expected 250 each).
    EXPECT_GT(shard_hits, 100u);
  }
}

TEST(NetProtocol, EndpointParseAcceptsUnixAndLoopbackTcp) {
  const net::Endpoint unix_ep = net::Endpoint::parse("unix:/tmp/x.sock");
  EXPECT_EQ(unix_ep.kind, net::Endpoint::Kind::kUnix);
  EXPECT_EQ(unix_ep.path, "/tmp/x.sock");

  const net::Endpoint tcp = net::Endpoint::parse("tcp:127.0.0.1:7070");
  EXPECT_EQ(tcp.kind, net::Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp.host, "127.0.0.1");
  EXPECT_EQ(tcp.port, 7070);
  EXPECT_EQ(net::Endpoint::parse("tcp:127.1.2.3:0").port, 0);
}

TEST(NetProtocol, EndpointParseRejectsGarbageAndNonLoopback) {
  EXPECT_THROW(net::Endpoint::parse(""), Error);
  EXPECT_THROW(net::Endpoint::parse("bogus:/x"), Error);
  EXPECT_THROW(net::Endpoint::parse("unix:"), Error);
  EXPECT_THROW(net::Endpoint::parse("tcp:127.0.0.1"), Error);
  EXPECT_THROW(net::Endpoint::parse("tcp:127.0.0.1:notaport"), Error);
  EXPECT_THROW(net::Endpoint::parse("tcp:127.0.0.1:70000"), Error);
  // vpdd has no authentication, so only loopback TCP is allowed.
  EXPECT_THROW(net::Endpoint::parse("tcp:8.8.8.8:80"), Error);
  EXPECT_THROW(net::Endpoint::parse("tcp:0.0.0.0:80"), Error);
}

TEST(NetProtocol, ClassifyLineRoutesByCanonicalKey) {
  const io::EvaluationRequest request = make_request();
  const net::RouteInfo info = net::classify_line(request_line(request, 7));
  EXPECT_EQ(info.verb, net::Verb::kEvaluate);
  ASSERT_TRUE(info.key_hash.has_value());
  // The routing key is the canonical request key — the same string the
  // service keys coalescing and its result LRU on, which is what makes
  // key affinity line up with per-shard caches.
  EXPECT_EQ(*info.key_hash,
            net::fnv1a64(io::canonical_request_key(request)));
  EXPECT_EQ(info.id.as_number(), 7.0);

  // A semantically identical line with fields in another order (and an
  // extra ignored field) still routes to the same shard.
  io::Value doc = io::to_json(request);
  doc.set("id", double(8));
  doc.set("zz_ignored", "extra");
  const net::RouteInfo twin = net::classify_line(io::dump(doc));
  ASSERT_TRUE(twin.key_hash.has_value());
  EXPECT_EQ(*twin.key_hash, *info.key_hash);
}

TEST(NetProtocol, ClassifyLineRoutesOptimizeByCanonicalKey) {
  const std::string line =
      "{\"id\":4,\"cmd\":\"optimize\",\"space\":{"
      "\"architectures\":[\"A3@12V\"],\"topologies\":[\"DSCH\"]},"
      "\"config\":{\"population\":6,\"generations\":2}}";
  const net::RouteInfo info = net::classify_line(line);
  EXPECT_EQ(info.verb, net::Verb::kOptimize);
  ASSERT_TRUE(info.key_hash.has_value());
  EXPECT_EQ(*info.key_hash,
            net::fnv1a64(io::canonical_optimize_key(
                io::optimize_request_from_json(io::parse(line)))));
  EXPECT_EQ(info.id.as_number(), 4.0);

  // Identical request, different field order and an ignored extra field:
  // the canonical key (and thus the shard) is the same.
  const net::RouteInfo twin = net::classify_line(
      "{\"zz_ignored\":true,\"config\":{\"generations\":2,"
      "\"population\":6},\"space\":{\"topologies\":[\"DSCH\"],"
      "\"architectures\":[\"A3@12V\"]},\"cmd\":\"optimize\",\"id\":5}");
  ASSERT_TRUE(twin.key_hash.has_value());
  EXPECT_EQ(*twin.key_hash, *info.key_hash);

  // An invalid optimize body degrades to kUnroutable (the shard that
  // replays the line produces the authoritative error).
  const net::RouteInfo bad = net::classify_line(
      "{\"cmd\":\"optimize\",\"space\":{\"vr_count\":{\"lo\":0,"
      "\"hi\":4}}}");
  EXPECT_EQ(bad.verb, net::Verb::kUnroutable);
  EXPECT_FALSE(bad.key_hash.has_value());
}

TEST(NetProtocol, ClassifyLineControlVerbsCarryNoKey) {
  EXPECT_EQ(net::classify_line("{\"cmd\":\"metrics\"}").verb,
            net::Verb::kMetrics);
  EXPECT_EQ(net::classify_line("{\"cmd\":\"trace\"}").verb,
            net::Verb::kTrace);
  EXPECT_EQ(net::classify_line("{\"cmd\":\"shutdown\"}").verb,
            net::Verb::kShutdown);
  EXPECT_EQ(net::classify_line("{\"cmd\":\"fleet_metrics\"}").verb,
            net::Verb::kFleetMetrics);
  EXPECT_EQ(net::classify_line("{\"cmd\":\"frobnicate\"}").verb,
            net::Verb::kUnknown);
  EXPECT_FALSE(net::classify_line("{\"cmd\":\"metrics\"}")
                   .key_hash.has_value());
}

TEST(NetProtocol, ClassifyLineRecoversIdFromMalformedLines) {
  const net::RouteInfo truncated =
      net::classify_line("{\"id\":21,\"architecture\":");
  EXPECT_EQ(truncated.verb, net::Verb::kUnroutable);
  EXPECT_EQ(truncated.id.as_number(), 21.0);

  const net::RouteInfo garbage = net::classify_line("not json at all");
  EXPECT_EQ(garbage.verb, net::Verb::kUnroutable);
  EXPECT_TRUE(garbage.id.is_null());

  // A parseable envelope with an invalid body is unroutable too — the
  // shard that replays it produces the authoritative error.
  const net::RouteInfo bad_enum =
      net::classify_line("{\"id\":3,\"architecture\":\"Z9\"}");
  EXPECT_EQ(bad_enum.verb, net::Verb::kUnroutable);
  EXPECT_EQ(bad_enum.id.as_number(), 3.0);
}

// --- ResponseQueue ---------------------------------------------------------

TEST(ResponseQueue, EmitsInPushOrderDespiteOutOfOrderCompletion) {
  Collector out;
  std::promise<void> first_ready;
  std::shared_future<void> gate = first_ready.get_future().share();
  {
    net::ResponseQueue queue(out.sink());
    queue.push([gate] {
      gate.wait();
      return std::string("first");
    });
    queue.push([] { return std::string("second"); });
    // "second" is ready immediately, but "first" holds the FIFO turn.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(out.size(), 0u);
    first_ready.set_value();
    queue.wait_idle();
  }
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.at(0), "first");
  EXPECT_EQ(out.at(1), "second");
}

TEST(ResponseQueue, EmitsOnCompletionWithoutFurtherInput) {
  // The regression behind the whole refactor: a response whose turn has
  // come must reach the sink without another feed() or drain() prompting
  // a flush — persistent clients wait on exactly this.
  Collector out;
  net::ResponseQueue queue(out.sink());
  queue.push([] { return std::string("ready"); });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (out.size() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.at(0), "ready");
}

TEST(ResponseQueue, ResolverExceptionBecomesErrorLine) {
  Collector out;
  {
    net::ResponseQueue queue(out.sink());
    queue.push([]() -> std::string {
      throw std::runtime_error("resolver boom");
    });
    queue.wait_idle();
  }
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out.at(0).find("\"status\":\"error\""), std::string::npos);
  EXPECT_NE(out.at(0).find("resolver boom"), std::string::npos);
}

TEST(ResponseQueue, SinkFailureMutesEmissionButStillConsumesResolvers) {
  std::atomic<int> resolved{0};
  std::atomic<int> delivered{0};
  {
    net::ResponseQueue queue([&delivered](const std::string&) {
      ++delivered;
      throw std::runtime_error("client gone");
    });
    for (int i = 0; i < 3; ++i) {
      queue.push([&resolved] {
        ++resolved;
        return std::string("line");
      });
    }
    queue.wait_idle();  // must not hang on a dead sink
  }
  EXPECT_EQ(resolved.load(), 3);
  EXPECT_EQ(delivered.load(), 1);  // muted after the first throw
}

// --- LineSession verbs -----------------------------------------------------

TEST(LineSession, ShutdownVerbDrainsAndEmitsFinalMetrics) {
  serve::ServiceConfig config;
  config.threads = 2;
  serve::EvaluationService service(config);
  Collector out;
  net::LineSession session(service, out.sink());

  EXPECT_TRUE(session.feed(request_line(make_request(), 1)));
  EXPECT_FALSE(session.feed("{\"id\":9,\"cmd\":\"shutdown\"}"));
  // Once shutdown is accepted the session refuses further lines.
  EXPECT_FALSE(session.feed(request_line(make_request(), 2)));
  session.drain();

  ASSERT_EQ(out.size(), 2u);
  const io::Value ok = io::parse(out.at(0));
  EXPECT_EQ(ok.find("id")->as_number(), 1.0);
  EXPECT_EQ(ok.find("status")->as_string(), "ok");
  const io::Value final_line = io::parse(out.at(1));
  EXPECT_EQ(final_line.find("id")->as_number(), 9.0);
  EXPECT_TRUE(final_line.find("shutdown")->as_bool());
  // The final metrics line accounts for the whole stream.
  const io::Value* metrics = final_line.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->find("counters")->find("serve.requests")->as_number(),
            1.0);
  EXPECT_TRUE(session.shutdown_requested());
}

TEST(LineSession, MalformedLineEchoesRecoveredId) {
  serve::ServiceConfig config;
  config.threads = 1;
  serve::EvaluationService service(config);
  Collector out;
  net::LineSession session(service, out.sink());
  EXPECT_TRUE(session.feed("{\"id\":77,\"architecture\":"));
  session.drain();
  ASSERT_EQ(out.size(), 1u);
  const io::Value reply = io::parse(out.at(0));
  EXPECT_EQ(reply.find("id")->as_number(), 77.0);
  EXPECT_EQ(reply.find("status")->as_string(), "error");
}

// --- Socket server ---------------------------------------------------------

class NetServerTest : public ::testing::Test {
 protected:
  /// Starts a server over a scratch unix socket and returns when it is
  /// accepting. The server thread joins in TearDown.
  void start_server(serve::EvaluationService& service,
                    net::ServerOptions options = {}) {
    path_ = scratch_socket_path(
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    server_ = std::make_unique<net::NdjsonServer>(
        net::Endpoint::parse("unix:" + path_),
        [&service](net::Sink sink) {
          return std::make_unique<net::LineSession>(service,
                                                    std::move(sink));
        },
        service.registry(), options);
    serve_thread_ = std::thread([this] { server_->serve(); });
  }

  net::Connection connect() {
    return net::connect_to(net::Endpoint::parse("unix:" + path_));
  }

  void TearDown() override {
    if (server_) server_->request_shutdown();
    if (serve_thread_.joinable()) serve_thread_.join();
    server_.reset();
    if (!path_.empty()) std::remove(path_.c_str());
  }

  std::string path_;
  std::unique_ptr<net::NdjsonServer> server_;
  std::thread serve_thread_;
};

TEST_F(NetServerTest, ConcurrentClientsShareTheServiceCaches) {
  serve::ServiceConfig config;
  config.threads = 2;
  serve::EvaluationService service(config);
  start_server(service);

  const io::EvaluationRequest shared = make_request();
  auto client = [&](int base_id) {
    net::Connection conn = connect();
    conn.write_line(request_line(shared, base_id));
    conn.write_line("{\"id\":" + std::to_string(base_id + 1) +
                    ",\"cmd\":\"metrics\"}");
    std::string line;
    for (int expected = base_id; expected <= base_id + 1; ++expected) {
      ASSERT_TRUE(conn.read_line(&line));
      const io::Value reply = io::parse(line);
      EXPECT_EQ(reply.find("id")->as_number(), double(expected));
      EXPECT_EQ(reply.find("status")->as_string(), "ok");
    }
    conn.close();
  };
  std::thread a(client, 10);
  std::thread b(client, 20);
  a.join();
  b.join();

  // Both clients asked for the same design point: one evaluation, the
  // twin either coalesced in flight or served from the result LRU.
  const serve::ServiceMetrics metrics = service.metrics();
  EXPECT_EQ(metrics.evaluated, 1u);
  EXPECT_EQ(metrics.coalesced + metrics.result_cache_hits, 1u);
}

TEST_F(NetServerTest, ConnectionsBeyondMaxAreRejectedNotQueued) {
  serve::ServiceConfig config;
  config.threads = 1;
  serve::EvaluationService service(config);
  net::ServerOptions options;
  options.max_connections = 1;
  start_server(service, options);

  net::Connection first = connect();
  // A full round trip proves the first connection is registered before
  // the second one arrives.
  first.write_line("{\"id\":1,\"cmd\":\"metrics\"}");
  std::string line;
  ASSERT_TRUE(first.read_line(&line));

  net::Connection second = connect();
  ASSERT_TRUE(second.read_line(&line));
  const io::Value reply = io::parse(line);
  EXPECT_EQ(reply.find("status")->as_string(), "error");
  EXPECT_NE(reply.find("error")->as_string().find("too many connections"),
            std::string::npos);
  EXPECT_FALSE(second.read_line(&line));  // rejected connections close

  const obs::Snapshot snapshot = service.registry().snapshot();
  ASSERT_NE(snapshot.counter("net.connections_rejected"), nullptr);
  EXPECT_EQ(*snapshot.counter("net.connections_rejected"), 1u);
  first.close();
  second.close();
}

TEST_F(NetServerTest, SaturationRejectsCleanlyAndAnswersEveryLine) {
  // The backpressure acceptance test: a tiny queue, three pipelining
  // clients, far more distinct requests than capacity. Every line must
  // get a well-formed NDJSON response (ok or rejected, never silence),
  // and when the queue actually filled, the queue-depth high water must
  // equal the configured capacity.
  serve::ServiceConfig config;
  config.threads = 2;
  config.queue_capacity = 4;
  config.result_cache_capacity = 0;  // every distinct submit evaluates
  serve::EvaluationService service(config);
  start_server(service);

  constexpr int kClients = 3;
  constexpr int kPerClient = 40;
  std::atomic<int> ok_count{0};
  std::atomic<int> rejected_count{0};
  std::atomic<int> malformed{0};

  auto client = [&](int client_index) {
    net::Connection conn = connect();
    for (int i = 0; i < kPerClient; ++i) {
      const int id = client_index * kPerClient + i;
      // Distinct total power per request: distinct canonical keys (so
      // no coalescing hides the queue), one shared mesh geometry (so
      // each evaluation stays cheap).
      conn.write_line(request_line(make_request(1000.0 + id), id));
    }
    std::string line;
    std::set<double> ids;
    for (int i = 0; i < kPerClient; ++i) {
      if (!conn.read_line(&line)) break;
      try {
        const io::Value reply = io::parse(line);
        ids.insert(reply.find("id")->as_number());
        const std::string status = reply.find("status")->as_string();
        if (status == "ok" || status == "excluded") {
          ++ok_count;
        } else if (status == "rejected") {
          ++rejected_count;
        } else {
          ++malformed;
        }
      } catch (const Error&) {
        ++malformed;
      }
    }
    EXPECT_EQ(ids.size(), std::size_t(kPerClient));
    conn.close();
  };

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) clients.emplace_back(client, c);
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(malformed.load(), 0);
  EXPECT_EQ(ok_count.load() + rejected_count.load(), kClients * kPerClient);
  if (rejected_count.load() > 0) {
    const obs::Snapshot snapshot = service.registry().snapshot();
    const std::pair<double, double>* depth =
        snapshot.gauge("serve.queue_depth");
    ASSERT_NE(depth, nullptr);
    EXPECT_EQ(depth->second, double(config.queue_capacity));
  }
}

TEST_F(NetServerTest, ShutdownVerbDrainsWithZeroLoss) {
  serve::ServiceConfig config;
  config.threads = 2;
  serve::EvaluationService service(config);
  start_server(service);

  constexpr int kRequests = 8;
  net::Connection conn = connect();
  for (int i = 0; i < kRequests; ++i) {
    conn.write_line(request_line(make_request(1000.0 + i), i));
  }
  conn.write_line("{\"id\":99,\"cmd\":\"shutdown\"}");

  std::string line;
  int replies = 0;
  std::set<double> ids;
  while (conn.read_line(&line)) {
    const io::Value reply = io::parse(line);
    ids.insert(reply.find("id")->as_number());
    ++replies;
  }
  // Every accepted line answered — the shutdown ack last — then EOF.
  EXPECT_EQ(replies, kRequests + 1);
  EXPECT_EQ(ids.count(99.0), 1u);
  conn.close();
  // The client-initiated shutdown takes the whole server down.
  serve_thread_.join();
  EXPECT_TRUE(server_->draining());
}

TEST(NetServerTcp, LoopbackRoundTrip) {
  serve::ServiceConfig config;
  config.threads = 1;
  serve::EvaluationService service(config);
  std::unique_ptr<net::NdjsonServer> server;
  try {
    server = std::make_unique<net::NdjsonServer>(
        net::Endpoint::parse("tcp:127.0.0.1:0"),
        [&service](net::Sink sink) {
          return std::make_unique<net::LineSession>(service,
                                                    std::move(sink));
        },
        service.registry());
  } catch (const net::IoError& e) {
    GTEST_SKIP() << "no TCP loopback in this environment: " << e.what();
  }
  ASSERT_NE(server->endpoint().port, 0);  // kernel resolved the port
  std::thread serving([&server] { server->serve(); });
  net::Connection conn = net::connect_to(server->endpoint());
  conn.write_line("{\"id\":1,\"cmd\":\"metrics\"}");
  std::string line;
  ASSERT_TRUE(conn.read_line(&line));
  EXPECT_EQ(io::parse(line).find("status")->as_string(), "ok");
  conn.close();
  server->request_shutdown();
  serving.join();
}

// --- Shard router ----------------------------------------------------------

namespace {

/// A protocol-compliant fake shard: echoes every line back verbatim and
/// honors {"cmd":"shutdown"} by exiting 0, so drain() semantics are
/// testable without spawning real vpdd processes.
net::RouterConfig echo_fleet(std::size_t shards) {
  net::RouterConfig config;
  config.shards = shards;
  config.shard_command = {
      "/bin/sh", "-c",
      "while read -r l; do case \"$l\" in *shutdown*) exit 0;; "
      "*) echo \"$l\";; esac; done"};
  return config;
}

std::string forward_and_wait(net::ShardRouter& router, std::size_t shard,
                             const std::string& line) {
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();
  router.forward(shard, line, io::Value(), [&promise](std::string reply) {
    promise.set_value(std::move(reply));
  });
  return future.get();
}

}  // namespace

TEST(ShardRouter, KeyAffinityPinsEqualKeysAndSpreadsControlVerbs) {
  obs::Registry registry;
  net::ShardRouter router(echo_fleet(3), registry);

  const net::RouteInfo info =
      net::classify_line(request_line(make_request(), 1));
  const std::size_t pinned = router.route(info);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(router.route(info), pinned);
  }
  std::set<std::size_t> covered;
  for (int i = 0; i < 9; ++i) {
    covered.insert(router.route(net::classify_line("{\"cmd\":\"metrics\"}")));
  }
  EXPECT_EQ(covered.size(), 3u);  // round-robin reaches every shard

  // Forwarded lines come back verbatim, FIFO-correlated per shard.
  EXPECT_EQ(forward_and_wait(router, pinned, "{\"probe\":1}"),
            "{\"probe\":1}");
  router.drain();
}

TEST(ShardRouter, DrainIsIdempotentAndRejectsLateForwards) {
  obs::Registry registry;
  net::ShardRouter router(echo_fleet(2), registry);
  EXPECT_EQ(forward_and_wait(router, 0, "{\"x\":1}"), "{\"x\":1}");
  router.drain();
  EXPECT_TRUE(router.draining());
  router.drain();  // second call returns the cached snapshot

  const std::string late =
      forward_and_wait(router, 1, "{\"x\":2}");
  const io::Value reply = io::parse(late);
  EXPECT_EQ(reply.find("status")->as_string(), "error");
  EXPECT_NE(reply.find("error")->as_string().find("draining"),
            std::string::npos);
}

TEST(ShardRouter, CrashedShardFailsInFlightAndRestarts) {
  net::RouterConfig config;
  config.shards = 1;
  // Each incarnation accepts exactly one line, then dies without
  // replying: every forward orphans, and the supervisor must respawn.
  config.shard_command = {"/bin/sh", "-c", "read -r l; exit 3"};
  config.backoff_initial_seconds = 0.01;
  config.backoff_max_seconds = 0.05;
  obs::Registry registry;
  net::ShardRouter router(config, registry);

  const std::string orphaned = forward_and_wait(router, 0, "{\"x\":1}");
  const io::Value reply = io::parse(orphaned);
  EXPECT_EQ(reply.find("status")->as_string(), "error");
  EXPECT_NE(reply.find("error")->as_string().find("exited before replying"),
            std::string::npos);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (router.restarts() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(router.restarts(), 1u);
  router.drain();  // must terminate even with a crash-looping shard
}

}  // namespace
}  // namespace vpd
