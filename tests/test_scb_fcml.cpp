#include <gtest/gtest.h>

#include "vpd/common/error.hpp"
#include "vpd/converters/buck.hpp"
#include "vpd/converters/fcml.hpp"
#include "vpd/converters/series_cap_buck.hpp"

namespace vpd {
namespace {

using namespace vpd::literals;

SeriesCapBuckInputs scb_12to1() {
  SeriesCapBuckInputs in;
  in.device_tech = gan_technology();
  in.inductor_tech = embedded_package_inductor_technology();
  in.capacitor_tech = mlcc_technology();
  in.v_in = 12.0_V;
  in.v_out = 1.0_V;
  in.rated_current = 40.0_A;
  in.f_sw = 2.0_MHz;
  return in;
}

FcmlInputs fcml_48(unsigned levels = 5) {
  FcmlInputs in;
  in.device_tech = gan_technology();
  in.inductor_tech = embedded_package_inductor_technology();
  in.capacitor_tech = mlcc_technology();
  in.v_in = 48.0_V;
  in.v_out = 2.0_V;  // the [7] operating point
  in.levels = levels;
  in.rated_current = 20.0_A;
  in.f_sw = 1.0_MHz;
  return in;
}

TEST(Scb, DoublesEffectiveDuty) {
  const SeriesCapacitorBuck scb(scb_12to1());
  EXPECT_NEAR(scb.effective_duty(), 2.0 / 12.0, 1e-12);
  EXPECT_NEAR(scb.switch_stress().value, 6.0, 1e-12);
  EXPECT_EQ(scb.spec().switch_count, 4u);
  EXPECT_EQ(scb.spec().inductor_count, 2u);
}

TEST(Scb, BeatsPlainBuckAtMatchedDesign) {
  // Same technologies, budget, frequency: the SCB's halved switch stress
  // cuts Coss/overlap losses and improves peak efficiency.
  const SeriesCapacitorBuck scb(scb_12to1());
  BuckDesignInputs b;
  b.device_tech = gan_technology();
  b.inductor_tech = embedded_package_inductor_technology();
  b.capacitor_tech = deep_trench_technology();
  b.v_in = 12.0_V;
  b.v_out = 1.0_V;
  b.rated_current = 40.0_A;
  b.phases = 2;
  b.f_sw = 2.0_MHz;
  const SynchronousBuck buck(b);
  EXPECT_GT(scb.loss_model().peak_efficiency(1.0_V),
            buck.loss_model().peak_efficiency(1.0_V));
}

TEST(Scb, RejectsSubTwoToOneRatios) {
  SeriesCapBuckInputs in = scb_12to1();
  in.v_in = 1.8_V;  // ratio < 2 -> effective duty >= 1
  EXPECT_THROW(SeriesCapacitorBuck{in}, InvalidArgument);
}

TEST(Scb, EfficiencyIsReasonable) {
  const SeriesCapacitorBuck scb(scb_12to1());
  const double peak = scb.loss_model().peak_efficiency(1.0_V);
  EXPECT_GT(peak, 0.90);
  EXPECT_LT(peak, 0.99);
}

TEST(Fcml, StressAndFrequencyScaleWithLevels) {
  const FlyingCapMultilevel f5(fcml_48(5));
  EXPECT_NEAR(f5.switch_stress().value, 12.0, 1e-12);
  EXPECT_NEAR(f5.effective_frequency().value, 4e6, 1e-6);
  EXPECT_EQ(f5.spec().switch_count, 8u);
  EXPECT_EQ(f5.spec().capacitor_count, 3u);
  EXPECT_EQ(f5.spec().inductor_count, 1u);

  const FlyingCapMultilevel f3(fcml_48(3));
  EXPECT_NEAR(f3.switch_stress().value, 24.0, 1e-12);
  EXPECT_EQ(f3.spec().switch_count, 4u);
}

TEST(Fcml, MoreLevelsShrinkTheInductor) {
  const FlyingCapMultilevel f3(fcml_48(3));
  const FlyingCapMultilevel f6(fcml_48(6));
  EXPECT_LT(f6.inductor().inductance().value,
            f3.inductor().inductance().value);
}

TEST(Fcml, ConductionGrowsWithSeriesSwitches) {
  // At a fixed conduction budget the k2 is budget-determined; check the
  // physical statement instead: per-switch resistance shrinks as levels
  // grow (more series devices must share the same budget).
  const FlyingCapMultilevel f3(fcml_48(3));
  const FlyingCapMultilevel f6(fcml_48(6));
  EXPECT_GT(f3.cell_fet().on_resistance().value,
            f6.cell_fet().on_resistance().value);
}

TEST(Fcml, EfficiencyIsReasonable) {
  const FlyingCapMultilevel f(fcml_48(5));
  const double peak = f.loss_model().peak_efficiency(2.0_V);
  EXPECT_GT(peak, 0.90);
  EXPECT_LT(peak, 0.995);
}

TEST(Fcml, Validation) {
  FcmlInputs in = fcml_48();
  in.levels = 2;
  EXPECT_THROW(FlyingCapMultilevel{in}, InvalidArgument);
  in = fcml_48();
  in.rated_current = Current{0.0};
  EXPECT_THROW(FlyingCapMultilevel{in}, InvalidArgument);
}

// Level sweep: structure stays consistent.
class FcmlLevelSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(FcmlLevelSweep, StructuralInvariants) {
  const FlyingCapMultilevel f(fcml_48(GetParam()));
  EXPECT_EQ(f.spec().switch_count, 2 * (GetParam() - 1));
  EXPECT_EQ(f.spec().capacitor_count, GetParam() - 2);
  EXPECT_NEAR(f.switch_stress().value, 48.0 / (GetParam() - 1), 1e-9);
  // Low level counts pay heavy overlap loss at 24 V cell stress; high
  // counts approach the hybrid converters' efficiency.
  EXPECT_GT(f.efficiency(10.0_A), 0.80);
}

INSTANTIATE_TEST_SUITE_P(Levels, FcmlLevelSweep,
                         ::testing::Values(3u, 4u, 5u, 6u, 8u));

}  // namespace
}  // namespace vpd
